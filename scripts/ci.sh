#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

# ---- per-stage wall-clock bookkeeping: stage NAME closes the previous
# stage and opens the next; the summary table prints on any exit
stage_names=()
stage_secs=()
current_stage=""
current_started=0
stage() {
    local now=$SECONDS
    if [ -n "$current_stage" ]; then
        stage_names+=("$current_stage")
        stage_secs+=($((now - current_started)))
    fi
    current_stage="${1:-}"
    current_started=$now
    # plain `if` — a `[ ... ] &&` tail would return 1 for the closing
    # stage "" call and kill the EXIT trap under set -e
    if [ -n "$current_stage" ]; then
        echo "== $current_stage"
    fi
}
stage_summary() {
    stage "" # close the stage in flight
    [ "${#stage_names[@]}" -eq 0 ] && return 0
    echo "stage timing:"
    local i
    for i in "${!stage_names[@]}"; do
        printf '  %4ss  %s\n' "${stage_secs[$i]}" "${stage_names[$i]}"
    done
    printf '  %4ss  total\n' "$SECONDS"
}

smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"; stage_summary' EXIT

stage "cargo fmt --check"
cargo fmt --check

stage "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

stage "cargo test -q --workspace"
cargo test -q --workspace

stage "fault-injection smoke (crash, resume, clean exits)"
cargo build -q --release -p indigo2 --bin indigo-exp
exp=target/release/indigo-exp
journal="$smoke_dir/run.jsonl"

# an injected panic must complete the sweep with a structured crashed row
# and the completed-with-failed-cells exit code (2)
set +e
"$exp" --smoke --inject-fault panic@3 --journal "$journal" --out "$smoke_dir/fault" >/dev/null
code=$?
set -e
[ "$code" -eq 2 ] || { echo "fault run exited $code, want 2"; exit 1; }
grep -q '"outcome":"crashed"' "$journal" || { echo "no crashed row in journal"; exit 1; }

# SIGKILL emulation: truncate the journal mid-line, then --resume must
# replay the prefix and still finish with exit 2 (the crash is journaled)
head -c "$(($(wc -c <"$journal") / 2))" "$journal" >"$journal.cut"
set +e
"$exp" --smoke --inject-fault panic@3 --resume "$journal.cut" --out "$smoke_dir/resume" >/dev/null
code=$?
set -e
[ "$code" -eq 2 ] || { echo "resume run exited $code, want 2"; exit 1; }

# and a fault-free smoke run exits clean
"$exp" --smoke --out "$smoke_dir/clean" >/dev/null ||
    { echo "clean smoke run exited $?, want 0"; exit 1; }

stage "style advisor gate (fit from smoke journal, held-out regret bound)"
# the data-driven style advisor (DESIGN.md §7.11): fitted from the fault
# run's journal above (its crashed cell must be skipped, not learned), then
# validated against deterministic CUDA-sim ground truth on held-out
# generated graphs — so the reported regret is bit-reproducible and gateable
"$exp" advise --journal "$journal" --out "$smoke_dir/advise" >/dev/null ||
    { echo "advise run failed"; exit 1; }
bench_advisor="$smoke_dir/advise/BENCH_advisor.json"
[ -s "$bench_advisor" ] || { echo "advise run wrote no BENCH_advisor.json"; exit 1; }
for key in '"schema": "bench-advisor-v1"' '"training_cells"' '"held_out_cases"' \
           '"mean_regret_top1"' '"mean_regret_top3"' '"method": "nearest-neighbor"'; do
    grep -q "$key" "$bench_advisor" ||
        { echo "BENCH_advisor.json is missing $key"; exit 1; }
done
# top-3 regret on the held-out graphs must stay small: the smoke fit's
# measured value is ~0.0006, so 0.10 catches a broken model, not noise
# (the ground truth is simulated cycles — there is no noise to absorb)
regret=$(sed -n 's/.*"mean_regret_top3": \([0-9.eE+-]*\).*/\1/p' "$bench_advisor" | head -n 1)
[ -n "$regret" ] || { echo "BENCH_advisor.json has no mean_regret_top3"; exit 1; }
awk -v v="$regret" 'BEGIN { exit !(v >= 0 && v <= 0.10) }' ||
    { echo "held-out top-3 regret $regret exceeds the 0.10 bound"; exit 1; }

stage "serve chaos gate (admission, deadlines, retries, breaker, restart)"
# the query server's robustness invariants (DESIGN.md §7.8), offline on an
# ephemeral loopback port: synthetic multi-client traffic with injected
# faults must end with every request answered or shed, the breaker tripping
# and recovering, and a bit-exact journal replay across a restart
"$exp" serve --chaos --journal "$smoke_dir/serve.jsonl" --out "$smoke_dir/serve" >/dev/null ||
    { echo "serve chaos gate failed"; exit 1; }
bench_serve="$smoke_dir/serve/BENCH_serve.json"
[ -s "$bench_serve" ] || { echo "chaos run wrote no BENCH_serve.json"; exit 1; }
for key in '"schema": "bench-serve-v1"' '"requests"' '"shed"' '"retries"' \
           '"breaker_trips"' '"breaker_recoveries"' '"latency_ms"' '"saturation_rps"' \
           '"metrics_series"' '"advised"' '"flight_pushed"' '"flight_dumps"'; do
    grep -q "$key" "$bench_serve" ||
        { echo "BENCH_serve.json is missing $key"; exit 1; }
done
# the chaos run scraped /metrics on the quiet server, validated the
# exposition syntax, and cross-checked shed/cache_hits/breaker_trips
# against /stats in-process (DESIGN.md §7.10); a zero series count would
# mean that phase silently did nothing
! grep -q '"metrics_series": 0,' "$bench_serve" ||
    { echo "chaos run validated an empty /metrics exposition"; exit 1; }
# the chaos run also asserted style=auto bit-identity in-process: /advise
# named a variant and a style=auto /run answered byte-for-byte the same as
# requesting that variant explicitly; a zero count means the phase vanished
! grep -q '"advised": 0,' "$bench_serve" ||
    { echo "chaos run exercised no style-advisor answers"; exit 1; }
# this stage runs with telemetry compiled OUT: request IDs, stage timing,
# /metrics, and the flight recorder must be fully live regardless
grep -q '"telemetry_enabled": false' "$bench_serve" ||
    { echo "chaos gate expected a telemetry-off build"; exit 1; }
# every 5xx during chaos must have produced a flight-recorder dump that
# names the failing request and carries its stage timeline
ls "$smoke_dir"/serve/FLIGHT_*.jsonl >/dev/null 2>&1 ||
    { echo "chaos 5xx responses produced no FLIGHT_*.jsonl dump"; exit 1; }
grep -q '"trigger":true' "$smoke_dir"/serve/FLIGHT_*.jsonl ||
    { echo "flight dumps carry no trigger record"; exit 1; }
grep -q '"stages":{"queue_us":' "$smoke_dir"/serve/FLIGHT_*.jsonl ||
    { echo "flight dumps carry no stage timeline"; exit 1; }
cp "$bench_serve" results/BENCH_serve.json

stage "simulator perf smoke (deterministic: cycles + allocation counts)"
# Wall-clock is deliberately NOT gated (shared runners flake); the probe
# compares simulated cycles, access counts, and steady-state allocation
# counts against the committed baseline — warn at 10%, fail at 30%.
# The probe reads telemetry counter deltas, so it needs the feature on.
cargo build -q --release -p indigo-bench --bin gpusim_perf --features telemetry
target/release/gpusim_perf --check results/BENCH_gpusim_baseline.json

stage "CPU baseline perf smoke (deterministic: frontier counters + allocs)"
# Same contract for the tuned CPU kernels (DESIGN.md §7.7): frontier and
# bucket counters are compared single-threaded (deterministic), and the
# steady-state allocation count is pinned at the committed baseline's 0.
cargo build -q --release -p indigo-bench --bin cpu_perf --features telemetry
target/release/cpu_perf --check results/BENCH_cpu_baseline.json

stage "serving-path perf smoke (loadgen: keep-alive + batching speedup)"
# The batched keep-alive reactor path must beat the connection-per-request
# path by the absolute 1.5x saturation floor, and throughput/p99 must hold
# against the committed baseline (drop > 30% fails, > 10% warns; the p99
# gate carries a 1 ms absolute grace so millisecond tails don't flake).
cargo build -q --release -p indigo-bench --bin serve_perf
target/release/serve_perf --check results/BENCH_serve_baseline.json

stage "telemetry (feature-on tests, trace validation, zero-cost guard)"
# the full suite again with recording compiled in: obs live tests, the
# trace integration test, and the alloc-regression pin all re-run hot
cargo test -q --workspace --features telemetry

# a telemetry smoke run must emit a trace that the checker accepts and
# the chrome exporter converts; profile must render from the same file
cargo build -q --release -p indigo2 --bin indigo-exp --features telemetry
texp=target/release/indigo-exp
"$texp" --smoke --out "$smoke_dir/telemetry" >/dev/null
trace="$smoke_dir/telemetry/TRACE_smoke.jsonl"
[ -s "$trace" ] || { echo "telemetry smoke wrote no trace"; exit 1; }
"$texp" trace --in "$trace" --check
"$texp" trace --in "$trace" --out "$smoke_dir/telemetry/trace.json" >/dev/null
grep -q '"ph": "X"' "$smoke_dir/telemetry/trace.json" ||
    { echo "chrome export has no complete events"; exit 1; }
"$texp" profile --in "$trace" --out "$smoke_dir/telemetry" >/dev/null

stage "sanitize (feature-on tests, smoke verdicts, mutation gate)"
# the style-conformance sanitizer (DESIGN.md §7.6): feature-on test suite,
# then a smoke sweep that must find no label violations...
cargo test -q --workspace --features sanitize
cargo build -q --release -p indigo2 --bin indigo-exp --features sanitize
sexp=target/release/indigo-exp
"$sexp" sanitize --smoke --out "$smoke_dir/sanitize" >/dev/null
# ...while a seeded mutation (atomics dropped at RMW update sites) must be
# flagged and exit with the violations code (2)
set +e
"$sexp" sanitize --smoke --mutate-drop-atomics --out "$smoke_dir/sanitize-mut" >/dev/null
code=$?
set -e
[ "$code" -eq 2 ] || { echo "mutated sanitize run exited $code, want 2"; exit 1; }
grep -q 'VIOLATION' "$smoke_dir/sanitize-mut/sanitize.txt" ||
    { echo "mutated sanitize run reported no violations"; exit 1; }

# zero-cost guard: the default build must stay telemetry- and sanitizer-
# free — the smoke runs above in this script used both, so just pin the
# compile-time switches
cargo build -q --release -p indigo2 --bin indigo-exp
target/release/indigo-exp --smoke --out "$smoke_dir/off" >/dev/null
ls "$smoke_dir"/off/TRACE_*.jsonl >/dev/null 2>&1 &&
    { echo "telemetry-off build wrote a trace file"; exit 1; }
grep -q '"telemetry_enabled": false' "$smoke_dir/off/BENCH_harness.json" ||
    { echo "telemetry-off build reports telemetry_enabled != false"; exit 1; }
grep -q '"sanitize_enabled": false' "$smoke_dir/off/BENCH_harness.json" ||
    { echo "sanitize-off build reports sanitize_enabled != false"; exit 1; }

stage "telemetry overhead gate (<3% smoke CPU time, interleaved min of 4)"
scripts/bench_harness.sh --check

echo "CI green."
