//! 64-bit data-type exemplar (paper §4.1).
//!
//! The paper evaluates only the 32-bit versions of the suite "to keep the
//! running times and the number of code versions manageable", but Indigo2
//! ships 64-bit counterparts. This module is our 64-bit exemplar: the
//! vertex-based, topology-driven, push, RMW, non-deterministic SSSP kernel
//! over `u64` distances — structurally identical to the `u32` engine, with
//! `AtomicU64` in place of `AtomicU32` — plus the agreement test that pins
//! the two widths to each other.

use super::CpuExec;
use indigo_graph::NodeId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// 64-bit "infinity".
pub const INF64: u64 = u64::MAX;

/// 64-bit SSSP (vertex/topology/push/RMW/non-deterministic style).
/// Returns converged distances and the iteration count.
pub fn sssp64(input: &crate::GraphInput, exec: &CpuExec, source: NodeId) -> (Vec<u64>, usize) {
    let csr = &input.csr;
    let n = csr.num_nodes();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF64)).collect();
    if n == 0 {
        return (Vec::new(), 0);
    }
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let changed = AtomicBool::new(false);
        exec.pfor(n, |vi, _| {
            let val = dist[vi].load(Ordering::Relaxed);
            if val == INF64 {
                return;
            }
            let v = vi as NodeId;
            let range = csr.neighbor_range(v);
            for (off, &u) in csr.neighbors(v).iter().enumerate() {
                let w = csr.weights()[range.start + off] as u64;
                let nd = val + w; // no saturation needed in 64 bits
                if dist[u as usize].fetch_min(nd, Ordering::Relaxed) > nd {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    (
        dist.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput, SOURCE};
    use indigo_graph::gen::{self, toy};
    use indigo_graph::INF;
    use indigo_styles::{Algorithm, Model, StyleConfig};

    /// The 64-bit kernel agrees with the 32-bit oracle value-for-value on
    /// every input where 32 bits suffice.
    #[test]
    fn widths_agree() {
        for g in [
            toy::weighted_diamond(),
            gen::gnp(80, 0.06, 4),
            gen::road(20, 12, 3),
        ] {
            let input = GraphInput::new(g);
            let exec = CpuExec::new(&StyleConfig::baseline(Algorithm::Sssp, Model::Cpp), 3);
            let (d64, iters) = sssp64(&input, &exec, SOURCE);
            assert!(iters >= 1);
            let d32 = serial::sssp(&input.csr, SOURCE);
            for (a, b) in d64.iter().zip(&d32) {
                if *b == INF {
                    assert_eq!(*a, INF64);
                } else {
                    assert_eq!(*a, *b as u64);
                }
            }
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let exec = CpuExec::new(&StyleConfig::baseline(Algorithm::Sssp, Model::Omp), 2);
        assert!(sssp64(&input, &exec, 0).0.is_empty());
    }
}
