//! Acceptance gate for request-scoped serving observability (DESIGN.md
//! §7.10): request IDs survive the full admission → coalescing → batch →
//! response path, stage latency attribution is self-consistent, the
//! `/metrics` exposition agrees with `/stats`, and a 5xx leaves a flight
//! recorder dump naming the failing request.

use indigo_serve::client::{self, Client};
use indigo_serve::{Server, ServerConfig};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// First integer after `"key":` in a response body.
fn body_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let i = body
        .find(&pat)
        .unwrap_or_else(|| panic!("{pat} not in {body}"))
        + pat.len();
    let rest = &body[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("{pat} not numeric in {body}"))
}

#[test]
fn every_batched_waiter_gets_its_own_request_id_and_timing() {
    let cfg = ServerConfig {
        batch: 8,
        batch_window: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // overlapping /run + /sweep mix so coalescing and batch merging both
    // happen while every client carries its own ID
    let targets = [
        "/run?algo=tc&graph=2d-grid&scale=tiny",
        "/run?algo=bfs&graph=2d-grid&scale=tiny",
        "/sweep?algo=tc&graph=2d-grid&scale=tiny&limit=3",
        "/run?algo=cc&graph=rmat&scale=tiny",
    ];
    std::thread::scope(|s| {
        for t in 0..4usize {
            s.spawn(move || {
                let mut conn = Client::new(addr, TIMEOUT);
                for i in 0..targets.len() {
                    let target = targets[(i + t) % targets.len()];
                    let id = format!("client-{t}-{i}");
                    let r = conn
                        .get_with_id(target, Some(&id))
                        .expect("request must be answered");
                    assert_eq!(r.status, 200, "{target}: {}", r.body);
                    // the client's ID comes back on the header AND in the body
                    assert_eq!(r.request_id.as_deref(), Some(id.as_str()), "{target}");
                    assert!(
                        r.body.contains(&format!("\"rid\":\"{id}\"")),
                        "{target}: {}",
                        r.body
                    );
                    assert!(r.body.contains("\"served_by\":"), "{}", r.body);
                    // stage attribution must be self-consistent: queue +
                    // execute account for the whole request, minus only the
                    // microseconds between stamping and serialization
                    let queue = body_u64(&r.body, "queue_us");
                    let execute = body_u64(&r.body, "execute_us");
                    let total = body_u64(&r.body, "total_us");
                    let batch_wait = body_u64(&r.body, "batch_wait_us");
                    assert!(
                        queue + execute <= total,
                        "stages exceed total in {}",
                        r.body
                    );
                    assert!(
                        total - (queue + execute) < 5_000,
                        "stages leave >5ms unattributed in {}",
                        r.body
                    );
                    // batch wait happens inside execution, never outside it
                    assert!(
                        batch_wait <= execute + 5_000,
                        "batch wait exceeds execution in {}",
                        r.body
                    );
                }
            });
        }
    });

    // a client that sends no ID still gets a server-assigned one (16 hex)
    let anon = client::get(addr, "/run?algo=tc&graph=2d-grid&scale=tiny", TIMEOUT).unwrap();
    let rid = anon.request_id.expect("server must assign an ID");
    assert_eq!(rid.len(), 16, "server-assigned ID should be 16 hex: {rid}");
    assert!(rid.chars().all(|c| c.is_ascii_hexdigit()), "{rid}");
    assert!(anon.body.contains(&format!("\"rid\":\"{rid}\"")));

    // non-JSON-splice routes still echo the header
    let health = client::get(addr, "/health", TIMEOUT).unwrap();
    assert!(health.request_id.is_some(), "health lost the ID echo");
}

#[test]
fn metrics_exposition_is_valid_and_agrees_with_stats() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();

    // traffic: one miss, two cache hits, one 404
    for _ in 0..3 {
        let r = client::get(addr, "/run?algo=pr&graph=rmat&scale=tiny", TIMEOUT).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let _ = client::get(addr, "/nope", TIMEOUT).unwrap();

    let stats = client::get(addr, "/stats", TIMEOUT).unwrap();
    let metrics = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    let series = indigo_serve::metrics::validate_exposition(&metrics.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", metrics.body));
    assert!(
        series > 20,
        "suspiciously small exposition: {series} series"
    );

    // the serve-family samples are rendered from the same coherent
    // snapshot /stats uses; the two scrapes can only disagree on counters
    // the scrapes themselves bump (requests, ok) — not on these
    for key in ["cache_hits", "shed", "breaker_trips", "coalesced"] {
        let from_stats = body_u64(&stats.body, key);
        let name = format!("indigo_serve_{key}_total");
        let line = metrics
            .body
            .lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from exposition"));
        let from_metrics: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
        assert_eq!(from_metrics, from_stats, "{name} drifted from /stats");
    }
    assert!(metrics.body.contains("indigo_serve_cache_hits_total 2"));

    // gauges and rolling-window summaries are present
    for name in [
        "indigo_serve_queue_depth",
        "indigo_serve_live_flights",
        "indigo_serve_rolling_p99_us",
        "indigo_serve_slo_burn_rate",
    ] {
        assert!(
            metrics.body.contains(name),
            "{name} missing from exposition"
        );
    }
}

#[test]
fn forced_5xx_dumps_a_flight_record_naming_the_request() {
    let dir = std::env::temp_dir().join(format!("indigo-flightrec-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = ServerConfig {
        allow_fault_param: true,
        flightrec_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // a healthy request first, so the dump shows context before the crash
    let ok = client::get(addr, "/run?algo=tc&graph=2d-grid&scale=tiny", TIMEOUT).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body);

    // wrong-answer fault: permanent 500 with a caller-chosen ID
    let mut conn = Client::new(addr, TIMEOUT);
    let doomed = conn
        .get_with_id(
            "/run?algo=tc&graph=soc-net&scale=tiny&fault=corrupt&fault_attempts=9",
            Some("doomed-req-1"),
        )
        .unwrap();
    assert_eq!(doomed.status, 500, "{}", doomed.body);
    assert_eq!(doomed.request_id.as_deref(), Some("doomed-req-1"));

    // the 5xx triggered a dump: find it and check the trigger line carries
    // the failing request's ID and its stage timeline
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name();
            let n = n.to_string_lossy();
            n.starts_with("FLIGHT_") && n.ends_with(".jsonl")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected exactly one dump in {dir:?}");
    let text = std::fs::read_to_string(dumps[0].path()).unwrap();
    let trigger = text
        .lines()
        .find(|l| l.contains("\"trigger\":true"))
        .unwrap_or_else(|| panic!("no trigger line in dump:\n{text}"));
    assert!(trigger.contains("\"id\":\"doomed-req-1\""), "{trigger}");
    assert!(trigger.contains("\"status\":500"), "{trigger}");
    assert!(trigger.contains("\"outcome\":\"quarantined\""), "{trigger}");
    assert!(trigger.contains("\"stages\":{\"queue_us\":"), "{trigger}");
    assert!(trigger.contains("\"execute_us\":"), "{trigger}");
    // the healthy request is in the same dump as context
    assert!(text.contains("\"status\":200"), "{text}");

    // the live ring is inspectable on demand too
    let rec = client::get(addr, "/debug/flightrec", TIMEOUT).unwrap();
    assert_eq!(rec.status, 200);
    assert!(rec.body.contains("\"records\":["), "{}", rec.body);
    assert!(rec.body.contains("doomed-req-1"), "{}", rec.body);
    assert!(rec.body.contains("\"dumps_written\":1"), "{}", rec.body);

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
