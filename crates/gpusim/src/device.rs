//! Device descriptors and the cycle cost model.
//!
//! Two presets mirror the paper's GPUs (§4.3). The constants are *model*
//! parameters, not datasheet values: they are calibrated so that the
//! first-order style ratios published in §5 come out in the right regime
//! (e.g. Fig 1's Atomic/CudaAtomic medians of ≈10× on the RTX 3090 and
//! ≈100× on the TITAN V). Calibration tests live in `launch.rs` and in the
//! harness integration suite.

/// Cycle costs of the simulated machine events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Instruction-issue cost charged for every warp lockstep step.
    pub issue: f64,
    /// Cost per distinct 128-byte global-memory segment in a warp step
    /// (amortized latency/bandwidth of one transaction).
    pub mem_segment: f64,
    /// Fixed cost of a global atomic warp step.
    pub atomic_issue: f64,
    /// Additional cost per *distinct address* a global atomic step touches
    /// (scattered atomics serialize per address at the L2 banks).
    pub atomic_per_addr: f64,
    /// Cost per extra lane hitting an *already counted* address in a global
    /// atomic step — cheap, modeling the hardware's same-address
    /// aggregation of atomic adds.
    pub atomic_aggregate: f64,
    /// Cost per lane for a shared-memory (block-scope) atomic hitting the
    /// same address — shared atomics serialize without aggregation.
    pub shared_serial: f64,
    /// Cost of one `__syncthreads()` block barrier.
    pub barrier: f64,
    /// Warp-shuffle step cost (×log2(32) for a full warp reduction).
    pub shuffle_step: f64,
    /// Fixed kernel-launch overhead, in cycles.
    pub launch: f64,
    /// Per-block scheduling overhead (what persistent threads amortize).
    pub block_sched: f64,
    /// Multiplier applied to *atomic RMW* steps on `cuda::atomic` arrays
    /// with default (seq_cst, system scope) settings.
    pub cuda_atomic_mult: f64,
    /// Multiplier applied to plain `load()`/`store()` on `cuda::atomic`
    /// arrays — these are seq_cst too, which §5.1 identifies as the reason
    /// CC/MIS/BFS/SSSP suffer far more than TC.
    pub cuda_ldst_mult: f64,
}

/// A simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Device {
    /// Display name.
    pub name: &'static str,
    /// Streaming-multiprocessor count.
    pub sm_count: usize,
    /// Core clock in GHz (cycles → seconds conversion).
    pub clock_ghz: f64,
    /// Threads per block used by all launches (the paper's codes use a
    /// fixed block size; 256 is the suite default).
    pub block_dim: usize,
    /// Blocks an SM keeps resident in the persistent style.
    pub resident_blocks_per_sm: usize,
    /// How many warps' cycles an SM can overlap (latency hiding): an SM's
    /// time is `max(total_warp_cycles / warp_parallelism, longest_warp)`.
    pub warp_parallelism: f64,
    /// Event costs.
    pub cost: CostModel,
}

impl Device {
    /// Simulated seconds for a cycle count.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

/// TITAN V–like preset (Volta: older atomics path, dramatic default
/// `cuda::atomic` penalty — Fig 1b shows median ratios around 100).
pub fn titan_v() -> Device {
    Device {
        name: "TitanV-sim",
        sm_count: 80,
        clock_ghz: 1.2,
        block_dim: 256,
        resident_blocks_per_sm: 8,
        warp_parallelism: 8.0,
        cost: CostModel {
            issue: 1.0,
            mem_segment: 8.0,
            atomic_issue: 6.0,
            atomic_per_addr: 12.0,
            atomic_aggregate: 2.0,
            shared_serial: 4.0,
            barrier: 24.0,
            shuffle_step: 2.0,
            launch: 1200.0,
            block_sched: 60.0,
            cuda_atomic_mult: 300.0,
            cuda_ldst_mult: 350.0,
        },
    }
}

/// RTX 3090–like preset (Ampere: faster seq_cst path — Fig 1a shows median
/// ratios around 10).
pub fn rtx3090() -> Device {
    Device {
        name: "RTX3090-sim",
        sm_count: 82,
        clock_ghz: 1.74,
        block_dim: 256,
        resident_blocks_per_sm: 8,
        warp_parallelism: 8.0,
        cost: CostModel {
            issue: 1.0,
            mem_segment: 7.0,
            atomic_issue: 5.0,
            atomic_per_addr: 10.0,
            atomic_aggregate: 2.0,
            shared_serial: 4.0,
            barrier: 20.0,
            shuffle_step: 2.0,
            launch: 1000.0,
            block_sched: 50.0,
            cuda_atomic_mult: 28.0,
            cuda_ldst_mult: 32.0,
        },
    }
}

/// Both simulated GPUs, System 1 (TITAN V) first as in §4.3.
pub fn gpus() -> [Device; 2] {
    [titan_v(), rtx3090()]
}

/// Names of the two presets, for report headers.
pub const GPUS: [&str; 2] = ["TitanV-sim", "RTX3090-sim"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let tv = titan_v();
        let rtx = rtx3090();
        // the Fig 1 asymmetry: TitanV's default cuda::atomic penalty is an
        // order of magnitude worse than the RTX 3090's
        assert!(tv.cost.cuda_atomic_mult > 5.0 * rtx.cost.cuda_atomic_mult);
        assert!(tv.cost.cuda_ldst_mult > 5.0 * rtx.cost.cuda_ldst_mult);
        // newer card clocks higher
        assert!(rtx.clock_ghz > tv.clock_ghz);
    }

    #[test]
    fn cycle_conversion() {
        let d = titan_v();
        let s = d.cycles_to_secs(1.2e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_dim_is_warp_multiple() {
        for d in gpus() {
            assert_eq!(d.block_dim % crate::WARP_SIZE, 0);
        }
    }
}
