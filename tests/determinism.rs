//! Regression gate for the two-level parallel scheduler: a representative
//! suite slice measured at `--jobs 1` must be byte-identical — down to the
//! rendered CSV — to the same slice at `--jobs 4` with multi-threaded
//! deterministic launches.
//!
//! The slice is CUDA-model only: GPU cells report simulated cycles, which
//! the scheduler guarantees are reproducible at any job count. CPU
//! wall-clock cells are excluded because real timings are never
//! reproducible run-to-run (the scheduler keeps them *comparable* by
//! running them exclusively, which is a different property than the bit
//! determinism gated here).

use indigo_graph::gen::{Scale, SuiteGraph};
use indigo_harness::{Measurement, RunOptions, RunPlan};
use indigo_styles::{Algorithm, AtomicKind, Model};

/// Renders measurements the way a results CSV would: f64 Display is
/// shortest-roundtrip in Rust, so two CSVs are byte-equal iff every geps
/// value is bit-equal.
fn render_csv(ms: &[Measurement]) -> String {
    let mut csv = String::from("variant,graph,target,geps,iterations\n");
    for m in ms {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            m.cfg.name(),
            m.graph,
            m.target,
            m.geps,
            m.iterations
        ));
    }
    csv
}

fn suite_slice() -> RunPlan {
    // all three granularities (thread/warp/block epilogues take different
    // merge paths), both det and nondet kernels (the latter gate parallel
    // launches off), on a regular grid plus the skewed-degree R-MAT whose
    // hub vertices concentrate work in a few blocks
    RunPlan::for_algorithms(
        &[Algorithm::Tc, Algorithm::Pr, Algorithm::Bfs],
        &[Model::Cuda],
        Scale::Tiny,
        1,
    )
    .filter(|c| {
        // keep the slice a few hundred cells: one atomic kind still covers
        // every granularity and grid-shape path in the simulator
        c.atomic != Some(AtomicKind::CudaAtomic)
    })
    .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat])
}

#[test]
fn suite_slice_is_bitwise_deterministic_across_jobs() {
    let plan = suite_slice();
    let serial = plan.run_with(&RunOptions::default(), |_| {});
    assert!(!serial.is_empty());
    let parallel = plan.run_with(
        &RunOptions::default().with_jobs(4).with_sim_workers(2),
        |_| {},
    );

    // cycle/iteration totals first (better failure message than a CSV diff)
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.geps.to_bits(),
            b.geps.to_bits(),
            "geps diverged for {} on {} @ {}: {} vs {}",
            a.cfg.name(),
            a.graph,
            a.target,
            a.geps,
            b.geps
        );
        assert_eq!(
            a.iterations,
            b.iterations,
            "iterations diverged for {} on {}",
            a.cfg.name(),
            a.graph
        );
    }

    // and the full rendered artifact, byte for byte
    assert_eq!(render_csv(&serial), render_csv(&parallel));
}
