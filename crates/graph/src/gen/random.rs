//! Minimal deterministic RNG and the G(n, p) generator used by tests.
//!
//! The generators deliberately use a tiny self-contained splitmix64 stream
//! rather than a trait-object RNG: graph generation must be bit-reproducible
//! across platforms and crate versions, because EXPERIMENTS.md records
//! results against named (generator, seed) pairs.

use crate::weights::mix64;
use crate::{Csr, GraphBuilder, NodeId};

/// splitmix64 sequence generator.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: mix64(seed) }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply avoids modulo bias for the bounds we use
        ((self.u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Erdős–Rényi G(n, p) random graph (undirected, no self-loops).
///
/// Used by the property-test battery, not by the paper's evaluation inputs.
/// Sampling is done by geometric edge skipping so sparse graphs cost
/// `O(n + m)` rather than `O(n^2)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Csr {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n >= 2 && p > 0.0 {
        if p >= 1.0 {
            for a in 0..n {
                for c in a + 1..n {
                    b.add_edge(a as NodeId, c as NodeId);
                }
            }
        } else {
            let mut rng = SplitMix::new(seed ^ 0x0067_6e70); // "gnp"
            let ln_q = (1.0 - p).ln();
            // iterate over the upper triangle via skip distances
            let total_pairs = n as u64 * (n as u64 - 1) / 2;
            let mut idx: u64 = 0;
            loop {
                let r = rng.f64().max(f64::MIN_POSITIVE);
                let skip = (r.ln() / ln_q).floor() as u64;
                idx = match idx.checked_add(skip) {
                    Some(i) if i < total_pairs => i,
                    _ => break,
                };
                let (a, c) = pair_from_index(idx, n as u64);
                b.add_edge(a as NodeId, c as NodeId);
                idx += 1;
                if idx >= total_pairs {
                    break;
                }
            }
        }
    }
    b.build(format!("gnp-{n}-{p}"))
}

/// Maps a linear index over the strict upper triangle of an `n × n` matrix to
/// its `(row, col)` pair, `row < col`.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // row r occupies indices [r*n - r*(r+1)/2, ...) ; solve by scan-free math
    let mut r = 0u64;
    let mut base = 0u64;
    // binary search over rows
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let start = mid * n - mid * (mid + 1) / 2;
        if start <= idx {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo > 0 {
        r = lo - 1;
        base = r * n - r * (r + 1) / 2;
    }
    let c = r + 1 + (idx - base);
    (r, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_round_trip() {
        let n = 7u64;
        let mut idx = 0u64;
        for a in 0..n {
            for c in a + 1..n {
                assert_eq!(pair_from_index(idx, n), (a, c), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gnp_p0_empty_p1_complete() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 10 * 9);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 99);
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = (g.num_edges() / 2) as f64;
        assert!(
            (actual - expected).abs() < 0.25 * expected,
            "actual {actual} vs {expected}"
        );
    }

    #[test]
    fn splitmix_below_in_range() {
        let mut r = SplitMix::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut r = SplitMix::new(4);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
