//! Open-loop load generator for the serving path (DESIGN.md §7.9).
//!
//! Measures the server the way real clients experience it: requests are
//! fired on a fixed schedule (`rps`), and each latency is taken from the
//! request's **intended** start time — never from when a backed-up client
//! thread finally got around to sending it. That makes the percentiles
//! immune to coordinated omission: a stalled server inflates the reported
//! tail instead of silently thinning the sample stream.
//!
//! A run drives the same traffic mix through two in-process servers —
//! `unbatched` (connection-per-request, no reactor, batching off: the
//! pre-PR-8 serving path) and `batched` (keep-alive + epoll reactor +
//! single-flight batching) — then reports per-mode percentiles, a
//! closed-loop saturation throughput, and the speedup between them. The
//! JSON report (`bench-loadgen-v1`) is what `scripts/ci.sh`'s `serve_perf`
//! stage gates on.

use crate::client::Client;
use crate::config::ServerConfig;
use crate::json;
use crate::server::Server;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Traffic shape for a load-generator run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMix {
    /// A small set of distinct `/run` cells, repeated — after priming,
    /// pure cache hits (transport + coalescing dominate).
    Cached,
    /// `/sweep` queries with multi-cell bodies — heavier serialization.
    Sweep,
    /// Both of the above interleaved.
    Mixed,
}

impl LoadMix {
    /// Stable lowercase label (CLI + report).
    pub fn label(self) -> &'static str {
        match self {
            LoadMix::Cached => "cached",
            LoadMix::Sweep => "sweep",
            LoadMix::Mixed => "mixed",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Result<LoadMix, String> {
        match s {
            "cached" => Ok(LoadMix::Cached),
            "sweep" => Ok(LoadMix::Sweep),
            "mixed" => Ok(LoadMix::Mixed),
            other => Err(format!("unknown mix `{other}` (cached|sweep|mixed)")),
        }
    }
}

/// Load-generator tuning.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Offered request rate for the paced (open-loop) phase.
    pub rps: f64,
    /// Concurrent client connections (one thread each).
    pub conns: usize,
    /// Paced-phase duration.
    pub duration: Duration,
    /// Closed-loop saturation-phase duration.
    pub saturation: Duration,
    /// Traffic shape.
    pub mix: LoadMix,
    /// Worker threads per server.
    pub workers: usize,
    /// Admission-queue capacity per server.
    pub queue: usize,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            rps: 300.0,
            conns: 4,
            duration: Duration::from_secs(2),
            saturation: Duration::from_secs(1),
            mix: LoadMix::Mixed,
            workers: 2,
            queue: 64,
        }
    }
}

/// p50/p99 of one pipeline stage, microseconds (server-reported).
#[derive(Clone, Copy, Debug, Default)]
pub struct StagePcts {
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
}

/// Server-side stage attribution aggregated over the paced phase, taken
/// from the `"timing"` fragment each `/run`/`/sweep` body carries
/// (DESIGN.md §7.10).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageLatency {
    /// Admission-queue wait (arrival → worker pickup).
    pub queue: StagePcts,
    /// Flight claim → batch execution start (0 for unbatched cells).
    pub batch_wait: StagePcts,
    /// Worker pickup → response assembly.
    pub execute: StagePcts,
}

impl StageLatency {
    fn to_json(self) -> String {
        let stage = |s: StagePcts| format!("{{\"p50\": {}, \"p99\": {}}}", s.p50_us, s.p99_us);
        format!(
            "{{\"queue\": {}, \"batch_wait\": {}, \"execute\": {}}}",
            stage(self.queue),
            stage(self.batch_wait),
            stage(self.execute)
        )
    }
}

/// What one serving mode measured.
#[derive(Clone, Debug, Default)]
pub struct ModeReport {
    /// `unbatched` or `batched`.
    pub label: String,
    /// Offered rate (paced phase).
    pub offered_rps: f64,
    /// Completions per second actually achieved in the paced phase.
    pub achieved_rps: f64,
    /// Intended-start latency percentiles, milliseconds (exact).
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// 99.9th percentile.
    pub p999_ms: f64,
    /// Worst request.
    pub max_ms: f64,
    /// Transport-level failures (must be 0 for a valid run).
    pub transport_errors: u64,
    /// Non-2xx responses (sheds included).
    pub non_2xx: u64,
    /// Server-side sheds.
    pub shed: u64,
    /// Server-side single-flight joins.
    pub coalesced: u64,
    /// Merged plans executed by the batch former.
    pub batches: u64,
    /// Requests served over reused keep-alive connections.
    pub keepalive_reuses: u64,
    /// Closed-loop completions per second.
    pub saturation_rps: f64,
    /// Server-reported per-stage latency attribution (paced phase).
    pub stage_latency_us: StageLatency,
}

impl ModeReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"offered_rps\": {}, \"achieved_rps\": {}, \"latency_ms\": \
             {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, \
             \"transport_errors\": {}, \"non_2xx\": {}, \"shed\": {}, \
             \"coalesced\": {}, \"batches\": {}, \"keepalive_reuses\": {}, \
             \"saturation_rps\": {}, \"stage_latency_us\": {}}}",
            json::num(self.offered_rps),
            json::num(self.achieved_rps),
            json::num(self.p50_ms),
            json::num(self.p90_ms),
            json::num(self.p99_ms),
            json::num(self.p999_ms),
            json::num(self.max_ms),
            self.transport_errors,
            self.non_2xx,
            self.shed,
            self.coalesced,
            self.batches,
            self.keepalive_reuses,
            json::num(self.saturation_rps),
            self.stage_latency_us.to_json(),
        )
    }
}

/// A full loadgen run: both modes plus the headline speedup.
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Pre-PR-8 serving path (connection-per-request, no batching).
    pub unbatched: ModeReport,
    /// Keep-alive + reactor + single-flight batching.
    pub batched: ModeReport,
    /// `batched.saturation_rps / unbatched.saturation_rps`.
    pub speedup: f64,
    /// Echo of the run configuration.
    pub config: String,
}

impl LoadgenReport {
    /// Renders the `results/BENCH_loadgen.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"bench-loadgen-v1\",\n  \"unbatched\": {},\n  \
             \"batched\": {},\n  \"speedup\": {},\n  \"config\": {}\n}}\n",
            self.unbatched.to_json(),
            self.batched.to_json(),
            json::num(self.speedup),
            json::str_lit(&self.config),
        )
    }
}

/// Distinct request targets for a mix (tiny scale keeps runs CI-sized; a
/// generous deadline keeps paced backlogs from turning into 504 noise).
fn targets_for(mix: LoadMix) -> Vec<String> {
    let cached = [
        ("tc", "2d-grid"),
        ("bfs", "copapers"),
        ("cc", "rmat"),
        ("pr", "2d-grid"),
        ("mis", "rmat"),
    ]
    .iter()
    .map(|(a, g)| format!("/run?algo={a}&graph={g}&scale=tiny&deadline_ms=10000"))
    .collect::<Vec<_>>();
    let sweep = [("tc", "2d-grid"), ("bfs", "rmat")]
        .iter()
        .map(|(a, g)| format!("/sweep?algo={a}&graph={g}&scale=tiny&limit=4&deadline_ms=10000"))
        .collect::<Vec<_>>();
    match mix {
        LoadMix::Cached => cached,
        LoadMix::Sweep => sweep,
        LoadMix::Mixed => {
            let mut v = cached;
            v.extend(sweep);
            v
        }
    }
}

/// Exact percentile from a sorted microsecond vector, in milliseconds.
fn pct_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1] as f64 / 1_000.0
}

/// Exact percentile from a sorted microsecond vector, in microseconds.
fn pct_us(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

/// First integer after `"key":` in a response body's timing fragment.
fn timing_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = body.find(&pat)? + pat.len();
    let rest = &body[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs one serving mode end to end: prime, paced open-loop, closed-loop
/// saturation.
fn run_mode(opts: &LoadgenOptions, label: &str, cfg: ServerConfig) -> Result<ModeReport, String> {
    let timeout = Duration::from_secs(30);
    let mut server = Server::start(cfg).map_err(|e| format!("{label}: server start: {e}"))?;
    let addr = server.addr();
    let targets = targets_for(opts.mix);

    // prime: execute every distinct cell once so the measured phases hit
    // the cache (the generator measures the serving path, not gpusim)
    let mut primer = Client::new(addr, timeout);
    for t in &targets {
        let r = primer
            .get(t)
            .map_err(|e| format!("{label}: priming `{t}`: {e}"))?;
        if r.status != 200 {
            return Err(format!(
                "{label}: priming `{t}` returned {} ({})",
                r.status, r.body
            ));
        }
    }
    drop(primer);

    // paced open-loop phase: a global schedule hands out intended start
    // times; latency is measured from the intended start (CO-safe)
    let next = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    // per-stage samples parsed from the server's "timing" body fragment:
    // [queue_us, batch_wait_us, execute_us]
    let stage_samples: Mutex<[Vec<u64>; 3]> = Mutex::new([Vec::new(), Vec::new(), Vec::new()]);
    let transport_errors = AtomicU64::new(0);
    let non_2xx = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..opts.conns.max(1) {
            s.spawn(|| {
                let mut conn = Client::new(addr, timeout);
                let mut local = Vec::new();
                let mut local_stages: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let offset = Duration::from_secs_f64(i as f64 / opts.rps.max(1.0));
                    if offset >= opts.duration {
                        break;
                    }
                    let intended = t0 + offset;
                    let now = Instant::now();
                    if now < intended {
                        std::thread::sleep(intended - now);
                    }
                    match conn.get(&targets[i % targets.len()]) {
                        Ok(resp) => {
                            local.push(intended.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            completed.fetch_add(1, Ordering::Relaxed);
                            if (200..300).contains(&resp.status) {
                                for (slot, key) in ["queue_us", "batch_wait_us", "execute_us"]
                                    .iter()
                                    .enumerate()
                                {
                                    if let Some(v) = timing_u64(&resp.body, key) {
                                        local_stages[slot].push(v);
                                    }
                                }
                            } else {
                                non_2xx.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                latencies
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
                let mut shared = stage_samples.lock().unwrap_or_else(|e| e.into_inner());
                for (slot, v) in local_stages.into_iter().enumerate() {
                    shared[slot].extend(v);
                }
            });
        }
    });
    let paced_secs = t0.elapsed().as_secs_f64().max(1e-9);
    let achieved_rps = completed.load(Ordering::Relaxed) as f64 / paced_secs;

    // closed-loop saturation phase: every connection sends back-to-back
    let stop = AtomicBool::new(false);
    let sat_completed = AtomicU64::new(0);
    let sat_idx = AtomicUsize::new(0);
    let sat_t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..opts.conns.max(1) {
            s.spawn(|| {
                let mut conn = Client::new(addr, timeout);
                while !stop.load(Ordering::Relaxed) {
                    let i = sat_idx.fetch_add(1, Ordering::Relaxed);
                    match conn.get(&targets[i % targets.len()]) {
                        Ok(_) => {
                            sat_completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            transport_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        std::thread::sleep(opts.saturation);
        stop.store(true, Ordering::Relaxed);
    });
    let sat_secs = sat_t0.elapsed().as_secs_f64().max(1e-9);
    let saturation_rps = sat_completed.load(Ordering::Relaxed) as f64 / sat_secs;

    let snap = server.stats();
    server.shutdown();

    let mut lat = latencies.lock().unwrap_or_else(|e| e.into_inner()).clone();
    lat.sort_unstable();
    let stage_latency_us = {
        let mut stages = stage_samples.lock().unwrap_or_else(|e| e.into_inner());
        let mut pcts = [StagePcts::default(); 3];
        for (slot, v) in stages.iter_mut().enumerate() {
            v.sort_unstable();
            pcts[slot] = StagePcts {
                p50_us: pct_us(v, 50.0),
                p99_us: pct_us(v, 99.0),
            };
        }
        StageLatency {
            queue: pcts[0],
            batch_wait: pcts[1],
            execute: pcts[2],
        }
    };
    Ok(ModeReport {
        label: label.into(),
        offered_rps: opts.rps,
        achieved_rps,
        p50_ms: pct_ms(&lat, 50.0),
        p90_ms: pct_ms(&lat, 90.0),
        p99_ms: pct_ms(&lat, 99.0),
        p999_ms: pct_ms(&lat, 99.9),
        max_ms: lat.last().copied().unwrap_or(0) as f64 / 1_000.0,
        transport_errors: transport_errors.load(Ordering::Relaxed),
        non_2xx: non_2xx.load(Ordering::Relaxed),
        shed: snap.shed,
        coalesced: snap.coalesced,
        batches: snap.batches,
        keepalive_reuses: snap.keepalive_reuses,
        saturation_rps,
        stage_latency_us,
    })
}

/// Runs the full comparison: `unbatched` (the pre-PR-8 path) vs `batched`.
/// `Err` means the run itself was invalid (start failure, priming failure,
/// transport errors) — not that the server was slow.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let base_cfg = |batched: bool| ServerConfig {
        workers: opts.workers,
        queue: opts.queue,
        default_deadline: Duration::from_secs(10),
        keep_alive: batched,
        reactor: batched,
        batch: if batched { 8 } else { 0 },
        ..ServerConfig::default()
    };
    let unbatched = run_mode(opts, "unbatched", base_cfg(false))?;
    let batched = run_mode(opts, "batched", base_cfg(true))?;
    for m in [&unbatched, &batched] {
        if m.transport_errors != 0 {
            return Err(format!(
                "{}: {} transport error(s) — every request must be answered",
                m.label, m.transport_errors
            ));
        }
    }
    let speedup = if unbatched.saturation_rps > 0.0 {
        batched.saturation_rps / unbatched.saturation_rps
    } else {
        0.0
    };
    let config = format!(
        "rps={} conns={} duration_ms={} saturation_ms={} mix={} workers={} queue={}",
        opts.rps,
        opts.conns,
        opts.duration.as_millis(),
        opts.saturation.as_millis(),
        opts.mix.label(),
        opts.workers,
        opts.queue
    );
    Ok(LoadgenReport {
        unbatched,
        batched,
        speedup,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_over_the_sorted_sample() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(pct_ms(&us, 50.0), 50.0);
        assert_eq!(pct_ms(&us, 99.0), 99.0);
        assert_eq!(pct_ms(&us, 99.9), 100.0);
        assert_eq!(pct_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn mix_labels_round_trip() {
        for m in [LoadMix::Cached, LoadMix::Sweep, LoadMix::Mixed] {
            assert_eq!(LoadMix::parse(m.label()).unwrap(), m);
        }
        assert!(LoadMix::parse("nope").is_err());
    }

    #[test]
    fn report_json_carries_schema_and_modes() {
        let r = LoadgenReport::default();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"bench-loadgen-v1\""));
        assert!(j.contains("\"unbatched\""));
        assert!(j.contains("\"batched\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"stage_latency_us\""));
        assert!(j.contains("\"batch_wait\""));
    }

    #[test]
    fn timing_extractor_reads_the_body_fragment() {
        let body = r#"{"status":"ok","rid":"ab","timing":{"queue_us":12,"batch_wait_us":0,"execute_us":340,"total_us":352}}"#;
        assert_eq!(timing_u64(body, "queue_us"), Some(12));
        assert_eq!(timing_u64(body, "batch_wait_us"), Some(0));
        assert_eq!(timing_u64(body, "execute_us"), Some(340));
        assert_eq!(timing_u64("{}", "queue_us"), None);
    }
}
