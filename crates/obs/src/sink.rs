//! Output sinks: the global trace writer and the single-writer console.
//!
//! The trace sink is an append-only JSONL file with the same torn-tail
//! discipline as the checkpoint journal: on open we add a newline guard if
//! the file doesn't end in one, and every event is written as a single
//! `write_all` of `line + "\n"`, so a killed run can tear at most the final
//! line — which [`crate::event::load_trace`] skips.
//!
//! [`console_line`] exists because the harness runs cells on several job
//! threads: `eprintln!` from two threads can interleave mid-line. Routing
//! every progress line through one mutex-guarded `write_all` makes each
//! line atomic.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::event::TraceEvent;

/// The installed trace writer. `OnceLock` so installation races are benign;
/// the `Mutex<File>` serializes appends (events are rare — per phase/cell/
/// launch-batch, not per memory access — so this lock is cold).
static TRACE: OnceLock<Mutex<File>> = OnceLock::new();

/// Opens `path` for appending trace events and installs it as the global
/// sink. Returns `Ok(false)` without touching the filesystem when the
/// `telemetry` feature is off, or when a sink is already installed.
pub fn install_trace(path: &Path) -> std::io::Result<bool> {
    if !crate::enabled() {
        return Ok(false);
    }
    if TRACE.get().is_some() {
        return Ok(false);
    }
    // read(true) matters: the newline guard below reads the last byte, and
    // an append-only handle would fail that read with EBADF
    let mut file = OpenOptions::new()
        .create(true)
        .read(true)
        .append(true)
        .open(path)?;
    // Newline guard: if a previous run tore mid-line, start ours on a
    // fresh line so only the torn line is lost, not ours too.
    let len = file.seek(SeekFrom::End(0))?;
    if len > 0 {
        let mut last = [0u8; 1];
        file.seek(SeekFrom::End(-1))?;
        file.read_exact(&mut last)?;
        file.seek(SeekFrom::End(0))?;
        if last[0] != b'\n' {
            file.write_all(b"\n")?;
        }
    }
    Ok(TRACE.set(Mutex::new(file)).is_ok())
}

/// Whether a trace sink is installed.
#[must_use]
pub fn trace_installed() -> bool {
    TRACE.get().is_some()
}

/// Appends one event to the installed trace sink. No-op (inlined away via
/// [`crate::enabled`] at call sites, and cheap regardless) when telemetry
/// is off or no sink is installed. Write errors are deliberately swallowed:
/// telemetry must never fail a measurement run.
pub fn emit(ev: &TraceEvent) {
    if !crate::enabled() {
        return;
    }
    if let Some(sink) = TRACE.get() {
        let mut line = ev.to_json_line();
        line.push('\n');
        if let Ok(mut f) = sink.lock() {
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
        }
    }
}

/// Console lock. Taking our own mutex (rather than `io::stderr().lock()`)
/// keeps the line-atomicity guarantee even if some code path still writes
/// to stderr directly: our lines are single `write_all` calls either way.
static CONSOLE: Mutex<()> = Mutex::new(());

/// Writes one complete line to stderr atomically. The single writer for
/// all progress/status output; callers format the full line first.
pub fn console_line(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let guard = CONSOLE.lock();
    let _ = std::io::stderr().write_all(buf.as_bytes());
    drop(guard);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn console_line_is_usable_from_many_threads() {
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..8 {
                        console_line(&format!("[obs test] t{t} line {i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn install_is_a_no_op_when_disabled() {
        let path =
            std::env::temp_dir().join(format!("indigo-obs-off-{}.jsonl", std::process::id()));
        assert!(!install_trace(&path).unwrap());
        assert!(!trace_installed());
        emit(&TraceEvent::instant("run-start", "x", 0));
        assert!(!path.exists(), "disabled build must not create trace files");
    }

    // The live install/emit path is exercised end-to-end by
    // tests/trace_telemetry.rs in the workspace root: the sink is
    // process-global, so a unit test here would conflict with any other
    // in-process user. The disabled-path test above is safe because it
    // never installs anything.
}
