//! Shared worklists for the data-driven styles (§2.2, §2.3).
//!
//! [`Worklist`] is the paper's Listing 3a: a fixed-capacity array plus an
//! atomic size counter; `push` is an `atomicAdd` on the counter followed by
//! a store. [`Stamps`] adds the Listing 3b no-duplicates check: an
//! iteration-stamp array updated with `atomicMax`, admitting each vertex at
//! most once per iteration. [`DoubleWorklist`] pairs two lists for the usual
//! read-current/populate-next iteration structure.

use crate::pool_cache::{Lease, PoolRegistry};
use crate::sync::{fetch_max, omp_critical};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// A fixed-capacity concurrent push-only list of vertex ids.
pub struct Worklist {
    items: Vec<AtomicU32>,
    len: AtomicUsize,
}

impl Worklist {
    /// Allocates a list that can hold up to `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        Worklist {
            items: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Concurrent push (Listing 3a). Panics if capacity is exceeded — the
    /// kernels size their lists at the per-iteration push bound, so overflow
    /// is a bug, not a runtime condition.
    #[inline]
    pub fn push(&self, v: u32) {
        let idx = self.len.fetch_add(1, Ordering::Relaxed);
        assert!(
            idx < self.items.len(),
            "worklist overflow at capacity {}",
            self.items.len()
        );
        self.items[idx].store(v, Ordering::Relaxed);
        if indigo_obs::enabled() {
            indigo_obs::Counter::ExecWorklistPushes.incr();
        }
    }

    /// Concurrent push that reports failure instead of panicking when the
    /// capacity is exhausted. The duplicates-allowed styles use this: their
    /// worklists have no tight size bound (§2.3 — capping the size is listed
    /// as a benefit of the no-duplicates style), so the kernels fall back to
    /// a full sweep when a push is dropped.
    #[inline]
    pub fn try_push(&self, v: u32) -> bool {
        let idx = self.len.fetch_add(1, Ordering::Relaxed);
        if idx < self.items.len() {
            self.items[idx].store(v, Ordering::Relaxed);
            if indigo_obs::enabled() {
                indigo_obs::Counter::ExecWorklistPushes.incr();
            }
            true
        } else {
            if indigo_obs::enabled() {
                indigo_obs::Counter::ExecWorklistDrops.incr();
            }
            false
        }
    }

    /// Number of items currently on the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).min(self.items.len())
    }

    /// True when the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item at `idx < len()` (Listing 2b's `worklist[idx]`).
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        if indigo_obs::enabled() {
            indigo_obs::Counter::ExecWorklistPops.incr();
        }
        self.items[idx].load(Ordering::Relaxed)
    }

    /// Resets the list to empty (sequential phase between iterations).
    pub fn clear(&self) {
        self.len.store(0, Ordering::Relaxed);
    }

    /// Copies the current contents out (for tests and debugging).
    pub fn to_vec(&self) -> Vec<u32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Grows the backing array to at least `capacity` slots and empties the
    /// list (exclusive access; between-kernel reuse path).
    pub fn reset(&mut self, capacity: usize) {
        if self.items.len() < capacity {
            self.items.resize_with(capacity, || AtomicU32::new(0));
        }
        *self.len.get_mut() = 0;
    }
}

/// Iteration-stamp array implementing the no-duplicates check (Listing 3b).
pub struct Stamps {
    cells: Vec<AtomicU32>,
}

impl Stamps {
    /// One stamp per vertex, all initially 0 (iterations are numbered
    /// starting at 1).
    pub fn new(num_nodes: usize) -> Self {
        Stamps {
            cells: (0..num_nodes).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Returns `true` iff the caller is the first to claim vertex `v` in
    /// iteration `iter` — `atomicMax(&stat[v], itr) != itr` from Listing 3b.
    ///
    /// `critical` selects the OpenMP-model path where the `atomicMax` must
    /// be a critical section (GCC OpenMP has no atomic max, §5.3.1).
    /// Grows to at least `num_nodes` stamps and zeroes them all (exclusive
    /// access; between-kernel reuse path).
    pub fn reset(&mut self, num_nodes: usize) {
        if self.cells.len() < num_nodes {
            self.cells.resize_with(num_nodes, || AtomicU32::new(0));
        }
        for cell in &mut self.cells {
            *cell.get_mut() = 0;
        }
    }

    #[inline]
    pub fn try_claim(&self, v: u32, iter: u32, critical: bool) -> bool {
        let cell = &self.cells[v as usize];
        let prev = if critical {
            omp_critical(|| {
                let old = cell.load(Ordering::Relaxed);
                if iter > old {
                    cell.store(iter, Ordering::Relaxed);
                }
                old
            })
        } else {
            fetch_max(cell, iter)
        };
        prev != iter
    }
}

/// A current/next worklist pair with swap, the standard data-driven
/// iteration structure.
pub struct DoubleWorklist {
    lists: [Worklist; 2],
    current: AtomicUsize,
}

impl DoubleWorklist {
    /// Two lists of the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        DoubleWorklist {
            lists: [
                Worklist::with_capacity(capacity),
                Worklist::with_capacity(capacity),
            ],
            current: AtomicUsize::new(0),
        }
    }

    /// The list being drained this iteration.
    pub fn current(&self) -> &Worklist {
        &self.lists[self.current.load(Ordering::Relaxed)]
    }

    /// The list being populated for the next iteration.
    pub fn next(&self) -> &Worklist {
        &self.lists[1 - self.current.load(Ordering::Relaxed)]
    }

    /// Makes `next` current and clears the old current (sequential phase
    /// between iterations only — not safe concurrently with pushes).
    pub fn swap(&self) {
        let cur = self.current.load(Ordering::Relaxed);
        self.current.store(1 - cur, Ordering::Relaxed);
        self.next().clear();
    }

    /// Grows both lists to at least `capacity` and empties them (exclusive
    /// access; between-kernel reuse path).
    pub fn reset(&mut self, capacity: usize) {
        for list in &mut self.lists {
            list.reset(capacity);
        }
        *self.current.get_mut() = 0;
    }
}

static DOUBLE_WORKLISTS: PoolRegistry<DoubleWorklist> = PoolRegistry::new();
static STAMPS: PoolRegistry<Stamps> = PoolRegistry::new();

/// Leases a reset [`DoubleWorklist`] of at least `capacity` from a
/// process-wide cache. The style-variant CPU kernels run hundreds of
/// thousands of measurement cells; leasing instead of allocating removes an
/// `O(capacity)` atomic-array build (and its page faults) from every cell.
/// All leases share one registry key, so a lease sized for a big graph is
/// happily reused (and regrown as needed) by later cells of any size.
pub fn lease_double_worklist(capacity: usize) -> Lease<DoubleWorklist> {
    let mut wl = DOUBLE_WORKLISTS.lease_guard(0, || DoubleWorklist::with_capacity(capacity));
    wl.reset(capacity);
    wl
}

/// Leases a zeroed [`Stamps`] array of at least `num_nodes`; see
/// [`lease_double_worklist`] for the reuse rationale.
pub fn lease_stamps(num_nodes: usize) -> Lease<Stamps> {
    let mut st = STAMPS.lease_guard(0, || Stamps::new(num_nodes));
    st.reset(num_nodes);
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let wl = Worklist::with_capacity(8);
        wl.push(5);
        wl.push(9);
        assert_eq!(wl.len(), 2);
        let mut v = wl.to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![5, 9]);
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let wl = Worklist::with_capacity(4000);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let wl = &wl;
                s.spawn(move || {
                    for k in 0..1000 {
                        wl.push(t * 1000 + k);
                    }
                });
            }
        });
        assert_eq!(wl.len(), 4000);
        let mut v = wl.to_vec();
        v.sort_unstable();
        assert_eq!(v, (0..4000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worklist overflow")]
    fn overflow_panics() {
        let wl = Worklist::with_capacity(1);
        wl.push(1);
        wl.push(2);
    }

    #[test]
    fn clear_resets() {
        let wl = Worklist::with_capacity(4);
        wl.push(1);
        wl.clear();
        assert!(wl.is_empty());
    }

    #[test]
    fn stamps_admit_once_per_iteration() {
        let st = Stamps::new(4);
        for critical in [false, true] {
            let iter = if critical { 2 } else { 1 };
            assert!(st.try_claim(3, iter, critical), "first claim wins");
            assert!(!st.try_claim(3, iter, critical), "second claim loses");
            assert!(!st.try_claim(3, iter, critical));
        }
        // a later iteration re-admits the vertex
        assert!(st.try_claim(3, 7, false));
    }

    #[test]
    fn stamps_concurrent_single_winner() {
        let st = Stamps::new(1);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let st = &st;
                let winners = &winners;
                s.spawn(move || {
                    if st.try_claim(0, 1, false) {
                        winners.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn leases_reset_and_regrow() {
        {
            let wl = lease_double_worklist(8);
            wl.current().push(3);
            let st = lease_stamps(4);
            assert!(st.try_claim(3, 1, false));
        } // both return to their registries here
        let wl = lease_double_worklist(16); // bigger: must regrow + be empty
        assert!(wl.current().is_empty());
        for v in 0..16 {
            wl.current().push(v);
        }
        let st = lease_stamps(4);
        assert!(st.try_claim(3, 1, false), "stamps must be re-zeroed");
    }

    #[test]
    fn double_worklist_swap_cycle() {
        let dw = DoubleWorklist::with_capacity(4);
        dw.current().push(1);
        dw.next().push(2);
        assert_eq!(dw.current().to_vec(), vec![1]);
        dw.swap();
        assert_eq!(dw.current().to_vec(), vec![2]);
        assert!(dw.next().is_empty(), "old current must be cleared");
    }
}
