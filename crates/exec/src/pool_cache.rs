//! Process-wide reuse of OpenMP-analog worker pools.
//!
//! The measurement harness runs hundreds of thousands of (variant, input,
//! target) cells; spawning a fresh [`OmpPool`] team per cell costs a few
//! hundred microseconds of thread creation each — pure overhead that is not
//! part of the kernel time being measured. This cache hands out one shared
//! pool per thread count instead. Sharing is safe because `OmpPool`
//! serializes whole regions internally (see `omp::Control::region`); callers
//! that want unskewed wall-clock timings must still avoid running two CPU
//! cells concurrently, which the harness scheduler guarantees by running
//! wall-clock cells exclusively.

use crate::OmpPool;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

static POOLS: OnceLock<Mutex<HashMap<usize, Arc<OmpPool>>>> = OnceLock::new();

/// Returns the shared pool with `threads` workers, spawning it on first use.
pub fn shared_omp_pool(threads: usize) -> Arc<OmpPool> {
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().unwrap();
    Arc::clone(
        map.entry(threads)
            .or_insert_with(|| Arc::new(OmpPool::new(threads))),
    )
}

/// Number of distinct pools currently cached (for tests/diagnostics).
pub fn cached_pool_count() -> usize {
    POOLS.get().map_or(0, |p| p.lock().unwrap().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_thread_count_returns_same_pool() {
        let a = shared_omp_pool(2);
        let b = shared_omp_pool(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.num_threads(), 2);
    }

    #[test]
    fn distinct_thread_counts_get_distinct_pools() {
        let a = shared_omp_pool(2);
        let b = shared_omp_pool(3);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(cached_pool_count() >= 2);
    }

    #[test]
    fn shared_pool_survives_concurrent_regions() {
        // two threads hammer the same cached pool; the region lock must
        // serialize them without losing iterations
        let pool = shared_omp_pool(2);
        let count = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                let count = &count;
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.parallel_for(10, crate::Schedule::Default, |_, _| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }
}
