//! The server proper: event-driven acceptor, bounded admission queue,
//! worker pool, routing, and crash-only shutdown (DESIGN.md §7.8, §7.9).
//!
//! Topology since PR 8: on Linux a single **reactor** thread owns the
//! listener and every connection that is not mid-request — it accepts,
//! reads request heads with readiness-driven non-blocking I/O
//! ([`crate::reactor::Poller`]), and pushes *parsed* requests onto the
//! bounded [`Admission`] queue. Idle keep-alive connections cost an epoll
//! slot, not a parked thread. When the queue is full the reactor queues the
//! `429` bytes on the connection's write buffer and flushes them as the
//! socket drains — overload never blocks the acceptor. Workers pop
//! requests, execute them through the engine (single-flight + batching,
//! `crate::batch`), write the response with blocking I/O, and hand the
//! still-alive connection back to the reactor. On non-Linux targets (or
//! with `reactor: false`) the server falls back to the original blocking
//! accept path, now with per-connection keep-alive loops.
//!
//! Every worker turn is wrapped in `catch_unwind`: a panicking request
//! burns one connection, never a worker, never the process.

use crate::admission::{Admission, PushError};
use crate::batch::{BatchConfig, Batcher, Flights};
use crate::cache::ResultCache;
use crate::config::ServerConfig;
use crate::engine::{self, EngineCtx, Shard};
use crate::flightrec::{FlightRecorder, Outcome, ReqRecord, RequestScope};
use crate::http::{head_end, Request, Response, MAX_HEAD_BYTES};
use crate::json;
use crate::stats::{ServeCounter, Stats};
use indigo_graph::gen::{Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_graph::stats::FEATURE_NAMES;
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
#[cfg(target_os = "linux")]
use std::sync::{atomic::AtomicUsize, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection stream deadlines once a worker owns the socket: a client
/// that stops reading or writing cannot pin a worker forever.
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the blocking fallback waits for the *next* request on an idle
/// keep-alive connection before closing it (the reactor path has no such
/// limit — idle connections there cost an epoll slot, not a thread).
const FALLBACK_KEEPALIVE_IDLE: Duration = Duration::from_millis(500);

/// One unit of work for the worker pool.
enum Job {
    /// Reactor mode: the head is already read and parsed; `leftover` holds
    /// pipelined bytes past it.
    Ready {
        stream: TcpStream,
        req: Result<Request, String>,
        arrived: Instant,
        leftover: Vec<u8>,
        reused: bool,
    },
    /// Blocking fallback: a raw accepted connection the worker reads
    /// itself.
    Raw { stream: TcpStream, arrived: Instant },
}

/// A keep-alive connection a worker handed back for more requests.
#[cfg(target_os = "linux")]
struct Parked {
    stream: TcpStream,
    leftover: Vec<u8>,
    reused: bool,
}

/// The worker-facing half of the reactor: a wake pipe plus the parking lot.
#[cfg(target_os = "linux")]
struct ReactorShared {
    wake_tx: Mutex<std::os::unix::net::UnixStream>,
    parked: Mutex<Vec<Parked>>,
    /// Connections the reactor is currently watching (the `/metrics`
    /// `parked_connections` gauge; updated once per reactor turn).
    watched: AtomicUsize,
}

#[cfg(target_os = "linux")]
impl ReactorShared {
    /// Nudges the reactor out of `wait`. A full pipe means wakes are
    /// already pending, so `WouldBlock` is success.
    fn wake(&self) {
        let mut tx = self.wake_tx.lock().unwrap_or_else(|e| e.into_inner());
        let _ = tx.write(&[1u8]);
    }
}

struct Inner {
    cfg: ServerConfig,
    cache: Arc<ResultCache>,
    shards: HashMap<&'static str, Shard>,
    queue: Admission<Job>,
    stats: Arc<Stats>,
    flights: Arc<Flights>,
    batcher: Option<Batcher>,
    advisors: crate::advise::AdvisorHub,
    shutdown: AtomicBool,
    /// Request sequence counter; `next_seq` starts at 1 so `served_by == 0`
    /// always means "executed its own cells".
    req_seq: AtomicU64,
    recorder: FlightRecorder,
    #[cfg(target_os = "linux")]
    reactor: Option<Arc<ReactorShared>>,
}

/// The next request sequence number (1-based).
fn next_seq(inner: &Inner) -> u64 {
    inner.req_seq.fetch_add(1, Ordering::Relaxed) + 1
}

/// A running server; dropping it shuts down and joins every thread.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the journal, and spawns the reactor (or blocking
    /// acceptor) + worker pool.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(ResultCache::open(cfg.journal.as_deref())?);
        let stats = Arc::new(Stats::new());
        let mut shards = HashMap::new();
        for g in SUITE_GRAPHS {
            shards.insert(g.label(), Shard::new(g, cfg.breaker));
        }
        let queue = Admission::new(cfg.queue);
        let workers_n = cfg.workers.max(1);
        let batcher = if cfg.batch > 0 {
            Some(Batcher::spawn(
                BatchConfig {
                    max_batch: cfg.batch,
                    window: cfg.batch_window,
                },
                Arc::clone(&cache),
                Arc::clone(&stats),
                cfg.jobs,
            )?)
        } else {
            None
        };

        #[cfg(target_os = "linux")]
        let (reactor_shared, reactor_parts) = if cfg.reactor {
            match crate::reactor::Poller::new() {
                Ok(poller) => {
                    let (wake_tx, wake_rx) = std::os::unix::net::UnixStream::pair()?;
                    wake_tx.set_nonblocking(true)?;
                    let shared = Arc::new(ReactorShared {
                        wake_tx: Mutex::new(wake_tx),
                        parked: Mutex::new(Vec::new()),
                        watched: AtomicUsize::new(0),
                    });
                    (Some(Arc::clone(&shared)), Some((poller, wake_rx, shared)))
                }
                Err(_) => (None, None),
            }
        } else {
            (None, None)
        };

        let inner = Arc::new(Inner {
            cfg,
            cache,
            shards,
            queue,
            stats,
            flights: Arc::new(Flights::new()),
            batcher,
            advisors: crate::advise::AdvisorHub::new(),
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
            recorder: FlightRecorder::new(),
            #[cfg(target_os = "linux")]
            reactor: reactor_shared,
        });

        #[cfg(target_os = "linux")]
        let acceptor = match reactor_parts {
            Some((poller, wake_rx, shared)) => {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("serve-reactor".into())
                    .spawn(move || reactor_loop(&inner, &listener, &poller, &wake_rx, &shared))?
            }
            None => {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&inner, &listener))?
            }
        };
        #[cfg(not(target_os = "linux"))]
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&inner, &listener))?
        };

        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Cells recovered from the journal at startup.
    pub fn recovered_cells(&self) -> usize {
        self.inner.cache.recovered
    }

    /// Stops accepting, drains in-flight work, joins every thread.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // the reactor wakes on its pipe; the fallback acceptor polls the
        // flag — neither needs a throwaway connection anymore
        #[cfg(target_os = "linux")]
        if let Some(r) = &self.inner.reactor {
            r.wake();
        }
        self.inner.queue.close();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(b) = &self.inner.batcher {
            b.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---- reactor path (Linux) -------------------------------------------------

#[cfg(target_os = "linux")]
mod reactor_impl {
    use super::*;
    use crate::reactor::{Interest, Poller};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKE: u64 = 1;

    /// A connection the reactor is watching: accumulating a request head,
    /// flushing a queued response (sheds, 400s), or idle between keep-alive
    /// requests.
    struct ConnBuf {
        stream: TcpStream,
        buf: Vec<u8>,
        write_buf: Vec<u8>,
        wpos: usize,
        arrived: Instant,
        reused: bool,
        close_after_write: bool,
    }

    enum Verdict {
        Keep,
        Drop,
        /// A complete head landed: dispatch to the worker pool.
        Dispatch(usize),
    }

    pub(super) fn reactor_loop(
        inner: &Inner,
        listener: &TcpListener,
        poller: &Poller,
        wake_rx: &UnixStream,
        shared: &ReactorShared,
    ) {
        if listener.set_nonblocking(true).is_err() || wake_rx.set_nonblocking(true).is_err() {
            return;
        }
        if poller
            .add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
            || poller
                .add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)
                .is_err()
        {
            return;
        }
        let mut conns: HashMap<u64, ConnBuf> = HashMap::new();
        let mut next_token: u64 = 2;
        let mut events = Vec::with_capacity(64);
        loop {
            events.clear();
            let _ = poller.wait(&mut events, Some(Duration::from_millis(250)));
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.clone() {
                match ev.token {
                    TOKEN_LISTENER => {
                        accept_ready(inner, listener, poller, &mut conns, &mut next_token)
                    }
                    TOKEN_WAKE => {
                        let mut scratch = [0u8; 64];
                        let mut rx = wake_rx;
                        while matches!(rx.read(&mut scratch), Ok(n) if n > 0) {}
                        let parked: Vec<Parked> = std::mem::take(
                            &mut *shared.parked.lock().unwrap_or_else(|e| e.into_inner()),
                        );
                        for p in parked {
                            register(inner, poller, &mut conns, &mut next_token, p);
                        }
                    }
                    token => {
                        let Some(mut cb) = conns.remove(&token) else {
                            continue;
                        };
                        let verdict = on_event(inner, &mut cb, ev.writable, ev.readable);
                        settle(inner, poller, &mut conns, token, cb, verdict);
                    }
                }
            }
            shared.watched.store(conns.len(), Ordering::Relaxed);
            indigo_obs::Gauge::ServeParkedConns.set(conns.len() as i64);
            // reap connections dribbling a head (slow-loris) or wedged on a
            // pending write
            let deadline = inner.cfg.header_timeout;
            let dead: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    (!c.buf.is_empty() || c.wpos < c.write_buf.len())
                        && c.arrived.elapsed() > deadline
                })
                .map(|(t, _)| *t)
                .collect();
            for t in dead {
                if let Some(cb) = conns.remove(&t) {
                    let _ = poller.remove(cb.stream.as_raw_fd());
                }
            }
        }
        // shutdown: tear everything down
        for (_, cb) in conns.drain() {
            let _ = poller.remove(cb.stream.as_raw_fd());
        }
        let _ = poller.remove(listener.as_raw_fd());
        let _ = poller.remove(wake_rx.as_raw_fd());
    }

    fn accept_ready(
        inner: &Inner,
        listener: &TcpListener,
        poller: &Poller,
        conns: &mut HashMap<u64, ConnBuf>,
        next_token: &mut u64,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    register(
                        inner,
                        poller,
                        conns,
                        next_token,
                        Parked {
                            stream,
                            leftover: Vec::new(),
                            reused: false,
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Starts watching a fresh or parked connection. A parked connection
    /// whose leftover already holds a full pipelined head dispatches
    /// immediately.
    fn register(
        inner: &Inner,
        poller: &Poller,
        conns: &mut HashMap<u64, ConnBuf>,
        next_token: &mut u64,
        p: Parked,
    ) {
        if p.stream.set_nonblocking(true).is_err() {
            return;
        }
        let token = *next_token;
        *next_token += 1;
        let mut cb = ConnBuf {
            stream: p.stream,
            buf: p.leftover,
            write_buf: Vec::new(),
            wpos: 0,
            arrived: Instant::now(),
            reused: p.reused,
            close_after_write: false,
        };
        if poller
            .add(cb.stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        if let Some(end) = head_end(&cb.buf) {
            let verdict = Verdict::Dispatch(end);
            settle(inner, poller, conns, token, cb, verdict);
            return;
        }
        // drain whatever is already readable so a request that raced the
        // registration isn't stuck waiting for the *next* byte
        let verdict = on_event(inner, &mut cb, false, true);
        settle(inner, poller, conns, token, cb, verdict);
    }

    /// Applies readiness to one connection.
    fn on_event(inner: &Inner, cb: &mut ConnBuf, writable: bool, readable: bool) -> Verdict {
        if writable || (cb.wpos < cb.write_buf.len()) {
            match flush_pending(cb) {
                Ok(true) if cb.close_after_write => return Verdict::Drop,
                Ok(_) => {}
                Err(_) => return Verdict::Drop,
            }
        }
        if !readable {
            return Verdict::Keep;
        }
        let mut chunk = [0u8; 1024];
        loop {
            match cb.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: half-closed or done. If a write is still
                    // pending, keep flushing; otherwise reap
                    return if cb.wpos < cb.write_buf.len() {
                        Verdict::Keep
                    } else {
                        Verdict::Drop
                    };
                }
                Ok(n) => {
                    if cb.buf.is_empty() {
                        cb.arrived = Instant::now(); // new request head starts
                    }
                    cb.buf.extend_from_slice(&chunk[..n]);
                    if let Some(end) = head_end(&cb.buf) {
                        return Verdict::Dispatch(end);
                    }
                    if cb.buf.len() > MAX_HEAD_BYTES {
                        inner.stats.bump(ServeCounter::Requests);
                        inner.stats.bump(ServeCounter::BadRequests);
                        let seq = next_seq(inner);
                        let resp = Response::json(
                            400,
                            format!(
                                "{{\"status\":\"bad-request\",\"error\":\"request head exceeds {MAX_HEAD_BYTES} bytes\"}}"
                            ),
                        )
                        .with_close()
                        .with_request_id(format!("{seq:016x}"));
                        cb.buf.clear();
                        cb.write_buf = resp.to_bytes();
                        cb.wpos = 0;
                        cb.close_after_write = true;
                        return match flush_pending(cb) {
                            Ok(true) => Verdict::Drop,
                            Ok(false) => Verdict::Keep,
                            Err(_) => Verdict::Drop,
                        };
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Verdict::Keep,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Drop,
            }
        }
    }

    /// Flushes as much of the queued response as the socket takes.
    /// `Ok(true)` = fully flushed.
    fn flush_pending(cb: &mut ConnBuf) -> std::io::Result<bool> {
        while cb.wpos < cb.write_buf.len() {
            match cb.stream.write(&cb.write_buf[cb.wpos..]) {
                Ok(0) => return Err(std::io::Error::from(std::io::ErrorKind::WriteZero)),
                Ok(n) => cb.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Carries out a verdict: re-watch, tear down, or hand to the workers.
    fn settle(
        inner: &Inner,
        poller: &Poller,
        conns: &mut HashMap<u64, ConnBuf>,
        token: u64,
        mut cb: ConnBuf,
        verdict: Verdict,
    ) {
        match verdict {
            Verdict::Keep => {
                let interest = if cb.wpos < cb.write_buf.len() {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                let _ = poller.modify(cb.stream.as_raw_fd(), token, interest);
                conns.insert(token, cb);
            }
            Verdict::Drop => {
                let _ = poller.remove(cb.stream.as_raw_fd());
            }
            Verdict::Dispatch(end) => {
                inner.stats.bump(ServeCounter::Requests);
                if cb.reused {
                    inner.stats.bump(ServeCounter::KeepAliveReuses);
                }
                let head = String::from_utf8_lossy(&cb.buf[..end]).into_owned();
                let req = Request::parse(&head);
                let leftover = cb.buf[end..].to_vec();
                let fd = cb.stream.as_raw_fd();
                let job = Job::Ready {
                    stream: cb.stream,
                    req,
                    arrived: cb.arrived,
                    leftover,
                    reused: cb.reused,
                };
                match inner.queue.try_push(job) {
                    Ok(()) => {
                        let _ = poller.remove(fd);
                    }
                    Err(PushError::Full(job)) => {
                        // shed without blocking: queue the 429 on the
                        // connection and let readiness flush it
                        let Job::Ready {
                            stream,
                            req,
                            arrived,
                            ..
                        } = job
                        else {
                            return;
                        };
                        inner.stats.bump(ServeCounter::Shed);
                        let mut scope = RequestScope::new(
                            next_seq(inner),
                            req.as_ref().ok().and_then(|r| r.request_id.clone()),
                            arrived,
                        );
                        scope.queue_us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        scope.outcome = Outcome::Shed;
                        let target = req
                            .as_ref()
                            .map(req_target)
                            .unwrap_or_else(|_| "<unparsed>".into());
                        inner
                            .recorder
                            .push(ReqRecord::from_scope(&scope, &target, 429, 0));
                        let secs = inner.stats.retry_after_secs(inner.queue.depth());
                        let resp = Response::json(
                            429,
                            format!(
                                "{{\"status\":\"shed\",\"error\":\"admission queue full\",\"retry_after_s\":{secs}}}"
                            ),
                        )
                        .with_retry_after(secs)
                        .with_close()
                        .with_request_id(scope.echo);
                        cb = ConnBuf {
                            stream,
                            buf: Vec::new(),
                            write_buf: resp.to_bytes(),
                            wpos: 0,
                            arrived: Instant::now(),
                            reused: cb.reused,
                            close_after_write: true,
                        };
                        match flush_pending(&mut cb) {
                            Ok(true) | Err(_) => {
                                let _ = poller.remove(cb.stream.as_raw_fd());
                            }
                            Ok(false) => {
                                let _ = poller.modify(
                                    cb.stream.as_raw_fd(),
                                    token,
                                    Interest::READ_WRITE,
                                );
                                conns.insert(token, cb);
                            }
                        }
                    }
                    Err(PushError::Closed(_)) => {
                        let _ = poller.remove(fd);
                    }
                }
            }
        }
    }

    /// Parks a keep-alive connection back with the reactor after a worker
    /// finishes a request on it.
    pub(super) fn park(inner: &Inner, stream: TcpStream, leftover: Vec<u8>) {
        let Some(shared) = &inner.reactor else {
            return;
        };
        {
            let mut parked = shared.parked.lock().unwrap_or_else(|e| e.into_inner());
            parked.push(Parked {
                stream,
                leftover,
                reused: true,
            });
        }
        shared.wake();
    }
}

#[cfg(target_os = "linux")]
use reactor_impl::reactor_loop;

// ---- blocking fallback path ----------------------------------------------

/// Blocking accept loop: used off-Linux or with `reactor: false`. Polls the
/// shutdown flag between accepts, so no throwaway-connection unblock hack
/// is needed.
fn accept_loop(inner: &Inner, listener: &TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let job = Job::Raw {
                    stream,
                    arrived: Instant::now(),
                };
                match inner.queue.try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(Job::Raw { stream, .. })) => shed(inner, stream),
                    Err(PushError::Full(_)) => {}
                    Err(PushError::Closed(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Load shedding on the fallback path: answered by the *acceptor* so a
/// saturated worker pool can't delay the 429 itself.
fn shed(inner: &Inner, mut stream: TcpStream) {
    inner.stats.bump(ServeCounter::Requests);
    inner.stats.bump(ServeCounter::Shed);
    let mut scope = RequestScope::new(next_seq(inner), None, Instant::now());
    scope.outcome = Outcome::Shed;
    inner
        .recorder
        .push(ReqRecord::from_scope(&scope, "<shed>", 429, 0));
    let secs = inner.stats.retry_after_secs(inner.queue.depth());
    let resp = Response::json(
        429,
        format!(
            "{{\"status\":\"shed\",\"error\":\"admission queue full\",\"retry_after_s\":{secs}}}"
        ),
    )
    .with_retry_after(secs)
    .with_close()
    .with_request_id(scope.echo);
    // drain the request first: closing a socket with unread bytes makes the
    // kernel send RST, which destroys the 429 before the client reads it.
    // The timeout is short — a client too slow to finish its request head
    // forfeits the body of the shed response, not the acceptor's time
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(n) if n > 0 => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    let _ = stream.write_all(&resp.to_bytes());
}

// ---- worker pool ----------------------------------------------------------

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        // a panic anywhere in request handling burns this connection only
        let _ = catch_unwind(AssertUnwindSafe(|| match job {
            Job::Ready {
                stream,
                req,
                arrived,
                leftover,
                reused,
            } => handle_ready(inner, stream, req, arrived, leftover, reused),
            Job::Raw { stream, arrived } => handle_raw(inner, stream, arrived),
        }));
    }
}

/// The original request target, path + query, for flight-recorder records.
fn req_target(req: &Request) -> String {
    if req.params.is_empty() {
        return req.path.clone();
    }
    let qs: Vec<String> = req
        .params
        .iter()
        .map(|(k, v)| {
            if v.is_empty() {
                k.clone()
            } else {
                format!("{k}={v}")
            }
        })
        .collect();
    format!("{}?{}", req.path, qs.join("&"))
}

/// Stamps the execute stage, splices the `rid`/`served_by`/`timing`
/// fragment into engine-route JSON bodies, and sets the `X-Request-Id`
/// echo header (DESIGN.md §7.10). `total_us` is stamped here, at body
/// assembly, so `queue_us + execute_us ≈ total_us` holds in the body.
fn finalize(mut resp: Response, path: &str, scope: &mut RequestScope) -> Response {
    scope.execute_us = scope.total_us().saturating_sub(scope.queue_us);
    if matches!(path, "/run" | "/sweep" | "/cell") && resp.body.ends_with('}') {
        resp.body.pop();
        resp.body.push_str(&scope.body_fragment());
        resp.body.push('}');
    }
    resp.with_request_id(scope.echo.clone())
}

/// Folds a finished request into the stage histograms and the flight
/// recorder; any 5xx dumps the ring to `cfg.flightrec_dir` (best-effort,
/// budget-capped — see [`FlightRecorder::dump`]).
fn observe_done(inner: &Inner, scope: &RequestScope, target: &str, status: u16, write_us: u64) {
    indigo_obs::Hist::ServeQueueWaitMicros.record(scope.queue_us);
    indigo_obs::Hist::ServeExecuteMicros.record(scope.execute_us);
    indigo_obs::Hist::ServeWriteMicros.record(write_us);
    if indigo_obs::enabled() {
        let total = scope.total_us();
        let start = indigo_obs::now_micros().saturating_sub(total);
        indigo_obs::emit(
            &indigo_obs::TraceEvent::span("request", target, start, total)
                .with_arg("rid", scope.echo.clone())
                .with_arg("status", status.to_string()),
        );
    }
    inner
        .recorder
        .push(ReqRecord::from_scope(scope, target, status, write_us));
    if status >= 500 {
        if let Some(dir) = &inner.cfg.flightrec_dir {
            let _ = inner.recorder.dump(dir, scope.seq, &scope.echo);
        }
    }
}

/// Serves one reactor-parsed request, then parks the connection back with
/// the reactor when it stays alive.
fn handle_ready(
    inner: &Inner,
    mut stream: TcpStream,
    req: Result<Request, String>,
    arrived: Instant,
    leftover: Vec<u8>,
    _reused: bool,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let mut scope = RequestScope::new(
        next_seq(inner),
        req.as_ref().ok().and_then(|r| r.request_id.clone()),
        arrived,
    );
    scope.queue_us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let (resp, req_close, target) = match &req {
        Ok(r) => {
            let resp = route(inner, r, arrived, &mut scope);
            (finalize(resp, &r.path, &mut scope), r.close, req_target(r))
        }
        Err(e) => {
            inner.stats.bump(ServeCounter::BadRequests);
            scope.outcome = Outcome::BadRequest;
            let resp = Response::json(
                400,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(e)
                ),
            )
            .with_close();
            (finalize(resp, "", &mut scope), true, "<unparsed>".into())
        }
    };
    let resp = finish_response(inner, resp, req_close);
    let write_start = Instant::now();
    let wrote = resp.write_to(&mut stream).is_ok();
    let write_us = write_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let micros = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
    inner.stats.record_latency(micros);
    observe_done(inner, &scope, &target, resp.status, write_us);
    let keep = wrote && !resp.close && !inner.shutdown.load(Ordering::SeqCst);
    if keep {
        #[cfg(target_os = "linux")]
        reactor_impl::park(inner, stream, leftover);
        #[cfg(not(target_os = "linux"))]
        let _ = (stream, leftover);
    }
}

/// Fallback connection loop: reads requests off one blocking connection,
/// keep-alive until the client (or a response) closes it.
fn handle_raw(inner: &Inner, mut stream: TcpStream, arrived: Instant) {
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let mut carry: Vec<u8> = Vec::new();
    let mut served = 0usize;
    loop {
        let idle = if served == 0 {
            STREAM_TIMEOUT
        } else {
            FALLBACK_KEEPALIVE_IDLE
        };
        let _ = stream.set_read_timeout(Some(idle));
        match read_head_blocking(&mut stream, &mut carry) {
            Ok(None) => break, // clean close / idle keep-alive expiry
            Ok(Some(req)) => {
                let arrived = if served == 0 { arrived } else { Instant::now() };
                inner.stats.bump(ServeCounter::Requests);
                if served > 0 {
                    inner.stats.bump(ServeCounter::KeepAliveReuses);
                }
                let mut scope = RequestScope::new(next_seq(inner), req.request_id.clone(), arrived);
                scope.queue_us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
                let routed = route(inner, &req, arrived, &mut scope);
                let resp =
                    finish_response(inner, finalize(routed, &req.path, &mut scope), req.close);
                let write_start = Instant::now();
                let wrote = resp.write_to(&mut stream).is_ok();
                let write_us = write_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
                let micros = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
                inner.stats.record_latency(micros);
                observe_done(inner, &scope, &req_target(&req), resp.status, write_us);
                served += 1;
                if !wrote || resp.close || inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) => {
                if served == 0 {
                    inner.stats.bump(ServeCounter::Requests);
                    inner.stats.bump(ServeCounter::BadRequests);
                    let mut scope = RequestScope::new(next_seq(inner), None, arrived);
                    scope.outcome = Outcome::BadRequest;
                    let resp = Response::json(
                        400,
                        format!(
                            "{{\"status\":\"bad-request\",\"error\":{}}}",
                            json::str_lit(&e)
                        ),
                    )
                    .with_close()
                    .with_request_id(scope.echo.clone());
                    let _ = resp.write_to(&mut stream);
                    inner
                        .recorder
                        .push(ReqRecord::from_scope(&scope, "<unparsed>", 400, 0));
                }
                break;
            }
        }
    }
}

/// Reads the next request head off a blocking stream, consuming from (and
/// leaving pipelined bytes in) `carry`. `Ok(None)` = clean end of the
/// connection (EOF or idle timeout with no partial request).
fn read_head_blocking(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> Result<Option<Request>, String> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = head_end(carry) {
            let head = String::from_utf8_lossy(&carry[..end]).into_owned();
            carry.drain(..end);
            return Request::parse(&head).map(Some);
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                if carry.is_empty() {
                    return Ok(None);
                }
                return Err("connection closed before request was complete".into());
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if carry.is_empty()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(None);
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

/// Applies connection policy to a routed response: the connection closes
/// when the client asked to, when keep-alive is off, or when shutting down.
fn finish_response(inner: &Inner, mut resp: Response, req_close: bool) -> Response {
    if (200..300).contains(&resp.status) {
        inner.stats.bump(ServeCounter::Ok);
    }
    if req_close || !inner.cfg.keep_alive || inner.shutdown.load(Ordering::SeqCst) {
        resp = resp.with_close();
    }
    resp
}

// ---- routing ---------------------------------------------------------------

fn route(inner: &Inner, req: &Request, arrived: Instant, scope: &mut RequestScope) -> Response {
    if req.method != "GET" {
        inner.stats.bump(ServeCounter::BadRequests);
        scope.outcome = Outcome::BadRequest;
        return Response::json(
            405,
            "{\"status\":\"bad-request\",\"error\":\"only GET is supported\"}",
        );
    }
    let path = req.path.as_str();
    match path {
        "/health" => health(inner),
        "/stats" => Response::json(200, inner.stats.snapshot().to_json()),
        "/metrics" => metrics_page(inner),
        "/debug/flightrec" => Response::json(200, inner.recorder.to_json()),
        "/cell" => cell(inner, req, scope),
        "/advise" => advise(inner, req, scope),
        "/run" | "/sweep" => run(inner, req, arrived, path == "/sweep", scope),
        _ => {
            inner.stats.bump(ServeCounter::BadRequests);
            scope.outcome = Outcome::BadRequest;
            Response::json(
                404,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&format!(
                        "no route `{path}` (/health /stats /metrics /cell /advise /run /sweep /debug/flightrec)"
                    ))
                ),
            )
        }
    }
}

/// `/metrics`: the whole observability surface in Prometheus text
/// exposition. The `indigo_serve_*` family renders from the same coherent
/// [`Stats::snapshot`] sweep `/stats` reports, so the two endpoints agree
/// by construction (the CI chaos stage cross-checks them).
fn metrics_page(inner: &Inner) -> Response {
    indigo_obs::Counter::ServeMetricsScrapes.incr();
    let stats = inner.stats.snapshot();
    let open_breakers = inner
        .shards
        .values()
        .filter(|s| s.breaker.state_label() != "closed")
        .count();
    #[cfg(target_os = "linux")]
    let parked_conns = inner
        .reactor
        .as_ref()
        .map(|r| r.watched.load(Ordering::Relaxed))
        .unwrap_or(0);
    #[cfg(not(target_os = "linux"))]
    let parked_conns = 0usize;
    let view = crate::metrics::MetricsView {
        stats: &stats,
        rolling: inner.stats.rolling_snapshot(),
        queue_depth: inner.queue.depth(),
        live_flights: inner.flights.in_flight(),
        parked_conns,
        open_breakers,
        recorder_pushed: inner.recorder.pushed(),
        recorder_dumps: inner.recorder.dumps_written(),
        slo_micros: inner.cfg.slo_micros,
    };
    Response::text(200, crate::metrics::render(&view))
}

fn health(inner: &Inner) -> Response {
    let mut breakers: Vec<String> = inner
        .shards
        .iter()
        .map(|(label, s)| {
            format!(
                "{}:{}",
                json::str_lit(label),
                json::str_lit(s.breaker.state_label())
            )
        })
        .collect();
    breakers.sort(); // deterministic body
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"queue_depth\":{},\"cached_cells\":{},\
             \"recovered_cells\":{},\"skipped_journal_lines\":{},\"breakers\":{{{}}}}}",
            inner.queue.depth(),
            inner.cache.len(),
            inner.cache.recovered,
            inner.cache.skipped,
            breakers.join(",")
        ),
    )
}

fn cell(inner: &Inner, req: &Request, scope: &mut RequestScope) -> Response {
    let Some(fp_hex) = req.param("fp") else {
        inner.stats.bump(ServeCounter::BadRequests);
        scope.outcome = Outcome::BadRequest;
        return Response::json(
            400,
            "{\"status\":\"bad-request\",\"error\":\"missing `fp` parameter (hex fingerprint)\"}",
        );
    };
    let Ok(fp) = u64::from_str_radix(fp_hex.trim_start_matches("0x"), 16) else {
        inner.stats.bump(ServeCounter::BadRequests);
        scope.outcome = Outcome::BadRequest;
        return Response::json(
            400,
            format!(
                "{{\"status\":\"bad-request\",\"error\":{}}}",
                json::str_lit(&format!("`fp` is not hex: `{fp_hex}`"))
            ),
        );
    };
    match inner.cache.get(fp) {
        Some(c) => {
            inner.stats.bump(ServeCounter::CacheHits);
            scope.outcome = Outcome::Cached;
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"cached\":true,\"fp\":\"{fp:016x}\",\
                     \"variant\":{},\"graph\":{},\"target\":{},\"geps\":{},\
                     \"geps_bits\":\"{:016x}\",\"iterations\":{}}}",
                    json::str_lit(&c.variant),
                    json::str_lit(&c.graph),
                    json::str_lit(&c.target),
                    json::num(c.geps()),
                    c.geps_bits,
                    c.iterations
                ),
            )
        }
        None => Response::json(404, format!("{{\"status\":\"miss\",\"fp\":\"{fp:016x}\"}}")),
    }
}

/// `/advise`: read-only style prediction for one (algo, model, graph,
/// scale) — nothing executes, nothing is cached. The returned `style` is
/// exactly what `style=auto` on `/run` would resolve to against the same
/// cache generation (DESIGN.md §7.11).
fn advise(inner: &Inner, req: &Request, scope: &mut RequestScope) -> Response {
    let parsed = (|| -> Result<(Algorithm, Model, SuiteGraph, Scale), String> {
        let algo = engine::parse_algo(req.param("algo").ok_or("missing `algo` parameter")?)?;
        let model = engine::parse_model(req.param("model"))?;
        let graph = engine::parse_graph(req.param("graph").ok_or("missing `graph` parameter")?)?;
        let scale = match req.param("scale") {
            None => inner.cfg.default_scale,
            Some(s) => crate::config::parse_scale(s)?,
        };
        Ok((algo, model, graph, scale))
    })();
    let (algo, model, graph, scale) = match parsed {
        Ok(p) => p,
        Err(e) => {
            inner.stats.bump(ServeCounter::BadRequests);
            scope.outcome = Outcome::BadRequest;
            return Response::json(
                400,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&e)
                ),
            );
        }
    };
    let shard = &inner.shards[graph.label()];
    let a = crate::advise::advise(
        &inner.advisors,
        &inner.cache,
        &inner.shards,
        shard,
        scale,
        algo,
        model,
    );
    inner.stats.bump(ServeCounter::Advised);
    let features: Vec<String> = FEATURE_NAMES
        .iter()
        .map(|n| {
            format!(
                "{}:{}",
                json::str_lit(n),
                json::num(a.features.get(n).unwrap_or(0.0))
            )
        })
        .collect();
    let ranked: Vec<String> = a
        .advice
        .ranked
        .iter()
        .take(5)
        .map(|v| json::str_lit(v))
        .collect();
    let neighbor = match &a.advice.neighbor {
        Some((label, d)) => format!(
            "{{\"graph\":{},\"distance\":{}}}",
            json::str_lit(label),
            json::num(*d)
        ),
        None => "null".into(),
    };
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"algo\":{},\"model\":{},\"graph\":{},\"scale\":{},\
             \"style\":{},\"method\":{},\"neighbor\":{neighbor},\"ranked\":[{}],\
             \"features\":{{{}}},\"training_cells\":{},\"training_graphs\":{}}}",
            json::str_lit(algo.label()),
            json::str_lit(model.label()),
            json::str_lit(graph.label()),
            json::str_lit(crate::config::scale_label(scale)),
            json::str_lit(a.advice.best()),
            json::str_lit(a.advice.method.label()),
            ranked.join(","),
            features.join(","),
            a.training_cells,
            a.training_graphs,
        ),
    )
}

fn run(
    inner: &Inner,
    req: &Request,
    arrived: Instant,
    sweep: bool,
    scope: &mut RequestScope,
) -> Response {
    let mut q = match engine::parse_query(req, &inner.cfg, sweep) {
        Ok(q) => q,
        Err(e) => {
            inner.stats.bump(ServeCounter::BadRequests);
            scope.outcome = Outcome::BadRequest;
            return Response::json(
                400,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&e)
                ),
            );
        }
    };
    if q.auto {
        // `style=auto`: resolve to the advisor's predicted-best variant
        // before execution. From here on the request is indistinguishable
        // from one that asked for that variant explicitly — same cells,
        // same fingerprints, same (bit-identical) body; the chosen style is
        // echoed in the body's `cells[].variant` (DESIGN.md §7.11).
        let shard = &inner.shards[q.graph.label()];
        let advised = crate::advise::advise(
            &inner.advisors,
            &inner.cache,
            &inner.shards,
            shard,
            q.scale,
            q.algo,
            q.model,
        );
        let all = enumerate::variants(q.algo, q.model);
        let chosen = advised
            .advice
            .ranked
            .iter()
            .find_map(|name| all.iter().find(|c| &c.name() == name).cloned())
            .unwrap_or_else(|| StyleConfig::baseline(q.algo, q.model));
        q.variants = vec![chosen];
        inner.stats.bump(ServeCounter::Advised);
    }
    // the deadline started at accept: queue wait already spent part of it
    let deadline_at = arrived + q.deadline;
    if deadline_at.saturating_duration_since(Instant::now()) < Duration::from_millis(5) {
        inner.stats.bump(ServeCounter::Timeouts);
        scope.outcome = Outcome::Timeout;
        return Response::json(
            504,
            format!(
                "{{\"status\":\"timeout\",\"error\":{}}}",
                json::str_lit(&format!(
                    "deadline of {} ms expired while queued",
                    q.deadline.as_millis()
                ))
            ),
        );
    }
    let shard = &inner.shards[q.graph.label()];
    let ctx = EngineCtx {
        cfg: &inner.cfg,
        cache: &inner.cache,
        stats: &inner.stats,
        flights: &inner.flights,
        batcher: inner.batcher.as_ref(),
    };
    engine::execute(&ctx, shard, &q, deadline_at, scope)
}
