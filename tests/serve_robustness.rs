//! Acceptance gate for the query server (DESIGN.md §7.8): every leg of the
//! admission → deadline → retry → breaker → degrade pipeline, exercised
//! over real loopback TCP against a real `Server`.
//!
//! The chaos harness (`indigo-exp serve --chaos`) stresses the same
//! pipeline under concurrency and randomized interleavings; these tests
//! pin each behavior down deterministically, one at a time.

use indigo_serve::client::{self, ClientResponse};
use indigo_serve::{Server, ServerConfig};
use std::net::SocketAddr;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn get(addr: SocketAddr, target: &str) -> ClientResponse {
    client::get(addr, target, TIMEOUT).expect("request must be answered")
}

fn chaos_cfg() -> ServerConfig {
    ServerConfig {
        allow_fault_param: true,
        ..ServerConfig::default()
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("indigo-serve-it-{}-{name}", std::process::id()))
}

#[test]
fn health_stats_and_unknown_routes_answer_structured_json() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();

    let health = get(addr, "/health");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"queue_depth\""), "{}", health.body);
    assert!(health.body.contains("\"breakers\""), "{}", health.body);

    let stats = get(addr, "/stats");
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"requests\""), "{}", stats.body);

    let missing = get(addr, "/nope");
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("\"status\""), "{}", missing.body);

    let bad = get(addr, "/run?algo=quantum&graph=2d-grid");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("unknown algo"), "{}", bad.body);

    // fault injection must be rejected outside chaos mode
    let fault = get(addr, "/run?algo=tc&graph=2d-grid&fault=panic");
    assert_eq!(fault.status, 400);
    assert!(fault.body.contains("chaos mode only"), "{}", fault.body);
}

#[test]
fn clean_queries_answer_and_repeat_queries_hit_the_cache() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.addr();

    let first = get(addr, "/run?algo=tc&graph=2d-grid&scale=tiny");
    assert_eq!(first.status, 200, "{}", first.body);
    assert!(first.body.contains("\"cached\":false"), "{}", first.body);
    assert!(first.body.contains("\"geps_bits\""), "{}", first.body);

    let again = get(addr, "/run?algo=tc&graph=2d-grid&scale=tiny");
    assert_eq!(again.status, 200);
    assert!(again.body.contains("\"cached\":true"), "{}", again.body);

    let snap = server.stats();
    assert_eq!(snap.cache_hits, 1);

    // a sweep over the same (algo, graph) reuses the baseline's cells and
    // reports a best variant
    let sweep = get(addr, "/sweep?algo=tc&graph=2d-grid&scale=tiny&limit=3");
    assert_eq!(sweep.status, 200, "{}", sweep.body);
    assert!(sweep.body.contains("\"best_variant\""), "{}", sweep.body);
}

#[test]
fn transient_fault_is_retried_within_the_deadline() {
    let server = Server::start(chaos_cfg()).unwrap();
    let addr = server.addr();

    // the first attempt panics, the retry runs clean
    let r = get(
        addr,
        "/run?algo=cc&graph=rmat&scale=tiny&fault=panic&fault_attempts=1",
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"attempts\":2"), "{}", r.body);
    assert!(server.stats().retries >= 1);
}

#[test]
fn persistent_stall_exhausts_the_deadline_as_a_structured_504() {
    let server = Server::start(chaos_cfg()).unwrap();
    let addr = server.addr();

    let r = get(
        addr,
        "/run?algo=bfs&graph=copapers&scale=tiny&deadline_ms=400&fault=stall&fault_attempts=9",
    );
    assert_eq!(r.status, 504, "{}", r.body);
    assert!(r.body.contains("\"status\":\"timeout\""), "{}", r.body);
    assert!(server.stats().timeouts >= 1);
}

#[test]
fn wrong_answers_are_permanent_failures_not_retried() {
    let server = Server::start(chaos_cfg()).unwrap();
    let addr = server.addr();

    // fault_attempts high enough that a retry *would* fault again: the 500
    // must come from quarantine after attempt 1, not retry exhaustion
    let r = get(
        addr,
        "/run?algo=tc&graph=soc-net&scale=tiny&fault=corrupt&fault_attempts=9",
    );
    assert_eq!(r.status, 500, "{}", r.body);
    assert!(r.body.contains("wrong answer"), "{}", r.body);
    assert!(r.body.contains("\"attempts\":1"), "{}", r.body);
    assert_eq!(server.stats().retries, 0);
}

#[test]
fn breaker_trips_to_degraded_answers_and_recovers_after_cooldown() {
    let mut cfg = chaos_cfg();
    cfg.breaker.threshold = 2;
    cfg.breaker.cooldown = Duration::from_millis(200);
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // two consecutive permanently-failing requests trip the road shard
    for _ in 0..2 {
        let r = get(
            addr,
            "/run?algo=bfs&graph=road&scale=tiny&fault=panic&fault_attempts=9",
        );
        assert_eq!(r.status, 500, "{}", r.body);
    }
    assert_eq!(server.stats().breaker_trips, 1);

    // open breaker: a clean query gets a degraded serial-oracle answer
    // immediately — not an error, and with Retry-After advice
    let d = get(addr, "/run?algo=bfs&graph=road&scale=tiny");
    assert_eq!(d.status, 200, "{}", d.body);
    assert!(d.body.contains("\"degraded\":true"), "{}", d.body);
    assert!(d.body.contains("\"serial-bfs\""), "{}", d.body);
    assert!(d.retry_after.is_some());

    // other shards are unaffected
    let ok = get(addr, "/run?algo=tc&graph=2d-grid&scale=tiny");
    assert_eq!(ok.status, 200, "{}", ok.body);
    assert!(ok.body.contains("\"degraded\":false"), "{}", ok.body);

    // after the cooldown a half-open probe runs for real and recovers
    std::thread::sleep(Duration::from_millis(250));
    let mut recovered = false;
    for _ in 0..20 {
        let r = get(addr, "/run?algo=bfs&graph=road&scale=tiny");
        if r.status == 200 && r.body.contains("\"degraded\":false") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(recovered, "breaker never recovered");
    assert_eq!(server.stats().breaker_recoveries, 1);
}

#[test]
fn overload_is_shed_with_429_and_retry_after() {
    let mut cfg = chaos_cfg();
    cfg.workers = 1;
    cfg.queue = 1;
    let server = Server::start(cfg).unwrap();
    let addr = server.addr();

    // pin the only worker with a stalled request, then burst
    let pinner = std::thread::spawn(move || {
        client::get(
            addr,
            "/run?algo=cc&graph=soc-net&scale=tiny&deadline_ms=800&fault=stall&fault_attempts=9",
            TIMEOUT,
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    // the burst must be concurrent: a sequential client would just park in
    // the queue slot and wait the pinner out instead of overflowing it
    let responses: Vec<ClientResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| s.spawn(move || get(addr, "/health")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut sheds = 0;
    for r in &responses {
        if r.status == 429 {
            assert!(r.retry_after.is_some(), "{}", r.body);
            assert!(r.body.contains("\"status\":\"shed\""), "{}", r.body);
            sheds += 1;
        }
    }
    assert!(sheds >= 1, "burst of 6 against a full queue shed nothing");
    assert_eq!(server.stats().shed, sheds);
    let pinned = pinner
        .join()
        .unwrap()
        .expect("pinned request still answered");
    assert_eq!(pinned.status, 504, "{}", pinned.body);
}

#[test]
fn restart_replays_the_journal_bit_exact() {
    let journal = tmp("restart.jsonl");
    let _ = std::fs::remove_file(&journal);
    let cfg = ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    };

    let (fp, bits) = {
        let server = Server::start(cfg.clone()).unwrap();
        let r = get(server.addr(), "/run?algo=mis&graph=rmat&scale=tiny");
        assert_eq!(r.status, 200, "{}", r.body);
        (
            extract(&r.body, "\"fp\":\""),
            extract(&r.body, "\"geps_bits\":\""),
        )
        // server drops here: crash-only — no flush step, no shutdown protocol
    };

    let server = Server::start(cfg).unwrap();
    assert!(server.recovered_cells() >= 1);
    let r = get(server.addr(), &format!("/cell?fp={fp}"));
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(
        r.body.contains(&format!("\"geps_bits\":\"{bits}\"")),
        "bits changed across restart: {}",
        r.body
    );

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn second_server_on_the_same_journal_fails_fast() {
    let journal = tmp("locked.jsonl");
    let _ = std::fs::remove_file(&journal);
    let cfg = ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    };
    let _holder = Server::start(cfg.clone()).unwrap();
    let err = match Server::start(cfg) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("two servers must not share a journal"),
    };
    assert!(err.contains("locked"), "{err}");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn batched_answers_are_bit_identical_to_unbatched() {
    use std::collections::HashMap;

    // batched server: a wide window so concurrent submissions actually
    // merge; unbatched server: batching off entirely
    let mut bat_cfg = chaos_cfg();
    bat_cfg.batch = 8;
    bat_cfg.batch_window = Duration::from_millis(5);
    let mut un_cfg = chaos_cfg();
    un_cfg.batch = 0;
    let bat = Server::start(bat_cfg).unwrap();
    let un = Server::start(un_cfg).unwrap();

    // overlapping /run + /sweep mix: same cells appear in multiple queries,
    // so coalescing and cross-query merging both get exercised
    let targets = [
        "/run?algo=tc&graph=2d-grid&scale=tiny",
        "/run?algo=bfs&graph=2d-grid&scale=tiny",
        "/run?algo=cc&graph=rmat&scale=tiny",
        "/sweep?algo=tc&graph=2d-grid&scale=tiny&limit=3",
        "/sweep?algo=bfs&graph=rmat&scale=tiny&limit=3",
        "/run?algo=pr&graph=copapers&scale=tiny",
    ];
    let collect = |addr: SocketAddr| -> HashMap<String, String> {
        let merged = std::sync::Mutex::new(HashMap::new());
        std::thread::scope(|s| {
            for offset in 0..4 {
                let merged = &merged;
                s.spawn(move || {
                    let mut conn = client::Client::new(addr, TIMEOUT);
                    for i in 0..targets.len() {
                        let t = targets[(i + offset) % targets.len()];
                        let r = conn.get(t).expect("request must be answered");
                        assert_eq!(r.status, 200, "{t}: {}", r.body);
                        let mut m = merged.lock().unwrap();
                        for (fp, bits) in cells_of(&r.body) {
                            if let Some(prev) = m.insert(fp.clone(), bits.clone()) {
                                assert_eq!(prev, bits, "fp {fp} answered two ways");
                            }
                        }
                    }
                });
            }
        });
        merged.into_inner().unwrap()
    };
    let batched = collect(bat.addr());
    let unbatched = collect(un.addr());
    assert!(!batched.is_empty());
    assert_eq!(batched.len(), unbatched.len(), "cell sets diverged");
    for (fp, bits) in &batched {
        assert_eq!(
            Some(bits),
            unbatched.get(fp),
            "fp {fp}: batched and unbatched bits differ"
        );
    }

    // fault leg: a stalled claimer holds the flight while a clean
    // short-deadline waiter coalesces onto it and expires mid-batch —
    // the waiter's 504 must not cancel the shared run, and a later clean
    // request must still produce the unbatched bits
    let addr = bat.addr();
    let stall = std::thread::spawn(move || {
        client::get(
            addr,
            "/run?algo=mis&graph=soc-net&scale=tiny&deadline_ms=1500\
             &fault=stall&fault_attempts=9",
            TIMEOUT,
        )
    });
    std::thread::sleep(Duration::from_millis(150));
    let waiter = get(
        addr,
        "/run?algo=mis&graph=soc-net&scale=tiny&deadline_ms=300",
    );
    assert_eq!(waiter.status, 504, "{}", waiter.body);
    let stalled = stall.join().unwrap().expect("stalled request answered");
    assert_eq!(stalled.status, 504, "{}", stalled.body);
    assert!(bat.stats().coalesced >= 1, "waiter never coalesced");
    let clean = get(
        addr,
        "/run?algo=mis&graph=soc-net&scale=tiny&deadline_ms=8000",
    );
    assert_eq!(clean.status, 200, "{}", clean.body);
    let reference = get(un.addr(), "/run?algo=mis&graph=soc-net&scale=tiny");
    assert_eq!(
        extract(&clean.body, "\"geps_bits\":\""),
        extract(&reference.body, "\"geps_bits\":\""),
        "post-fault bits diverged from the unbatched server"
    );
}

#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    use std::io::{Read, Write};

    let server = Server::start(ServerConfig::default()).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    // two requests in one write, no Connection header: both must come back
    // on this connection, in order
    stream
        .write_all(
            b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /stats HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = std::time::Instant::now() + TIMEOUT;
    while raw.windows(4).filter(|w| w == b"\r\n\r\n").count() < 2
        && std::time::Instant::now() < deadline
    {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        2,
        "expected two 200s on one connection: {text}"
    );
    let first = text.find("\"queue_depth\"").expect("health body first");
    let second = text.find("\"requests\"").expect("stats body second");
    assert!(first < second, "responses out of order: {text}");
    assert!(
        server.stats().keepalive_reuses >= 1,
        "second request was not counted as a keep-alive reuse"
    );
}

// The reactor reaps connections that dribble their request head; the
// blocking fallback path bounds them with its stream timeout instead, so
// the fast reap is Linux-only behavior.
#[cfg(target_os = "linux")]
#[test]
fn slow_header_connections_are_reaped() {
    use std::io::{Read, Write};

    let cfg = ServerConfig {
        header_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start(cfg).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /heal").unwrap(); // never finishes the head
    let started = std::time::Instant::now();
    let mut buf = [0u8; 64];
    // the server must close us without an answer, and promptly
    let n = loop {
        match stream.read(&mut buf) {
            Ok(n) => break n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => panic!("expected EOF from the reaped connection, got {e}"),
        }
    };
    assert_eq!(n, 0, "reaped connection should EOF without a response");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "slow-header reap took {:?}",
        started.elapsed()
    );
}

/// Every `(fp, geps_bits)` pair in a success body.
fn cells_of(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(i) = rest.find("\"fp\":\"") {
        let fp_start = &rest[i + 6..];
        let Some(fp_end) = fp_start.find('"') else {
            break;
        };
        let fp = fp_start[..fp_end].to_string();
        rest = &fp_start[fp_end..];
        let Some(j) = rest.find("\"geps_bits\":\"") else {
            continue;
        };
        let gb_start = &rest[j + 13..];
        let Some(gb_end) = gb_start.find('"') else {
            break;
        };
        out.push((fp, gb_start[..gb_end].to_string()));
        rest = &gb_start[gb_end..];
    }
    out
}

/// First occurrence of `"key":"<value>"` in a body.
fn extract(body: &str, prefix: &str) -> String {
    let start = body
        .find(prefix)
        .unwrap_or_else(|| panic!("{prefix} not in {body}"))
        + prefix.len();
    body[start..].split('"').next().unwrap().to_string()
}
