//! Solution verification against the serial references (paper §4.1).

use crate::{serial, GraphInput, Output};
use indigo_styles::{Algorithm, StyleConfig};

/// Absolute per-vertex tolerance for PageRank (floating-point accumulation
/// order differs across styles/models).
pub const PR_TOLERANCE: f32 = 2e-3;

/// Checks `output` against the serial reference for `cfg.algorithm`.
/// `Err` carries a description of the first mismatch.
///
/// References are memoized per [`GraphInput`] (they depend only on the
/// graph and process-wide constants), so verifying hundreds of matrix cells
/// on one graph pays for each serial solve exactly once.
pub fn check(cfg: &StyleConfig, input: &GraphInput, output: &Output) -> Result<(), String> {
    let refs = &input.refs;
    match (cfg.algorithm, output) {
        (Algorithm::Bfs, Output::Levels(got)) => exact(
            got,
            refs.bfs
                .get_or_init(|| serial::bfs(&input.csr, crate::SOURCE)),
            "level",
        ),
        (Algorithm::Sssp, Output::Distances(got)) => exact(
            got,
            refs.sssp
                .get_or_init(|| serial::sssp(&input.csr, crate::SOURCE)),
            "distance",
        ),
        (Algorithm::Cc, Output::Labels(got)) => {
            exact(got, refs.cc.get_or_init(|| serial::cc(&input.csr)), "label")
        }
        (Algorithm::Mis, Output::MisSet(got)) => {
            let expect = refs
                .mis
                .get_or_init(|| serial::mis(&input.csr, crate::MIS_SEED));
            if got == expect {
                Ok(())
            } else {
                let v = got.iter().zip(expect).position(|(a, b)| a != b).unwrap();
                Err(format!("MIS membership differs at vertex {v}"))
            }
        }
        (Algorithm::Pr, Output::Ranks(got)) => {
            let expect = refs.pr.get_or_init(|| {
                serial::pagerank(
                    &input.csr,
                    crate::PR_DAMPING,
                    crate::PR_EPSILON,
                    crate::PR_MAX_ITERS,
                )
            });
            if got.len() != expect.len() {
                return Err(format!("rank length {} != {}", got.len(), expect.len()));
            }
            for (v, (a, b)) in got.iter().zip(expect).enumerate() {
                if (a - b).abs() > PR_TOLERANCE {
                    return Err(format!("rank of vertex {v}: {a} vs {b}"));
                }
            }
            Ok(())
        }
        (Algorithm::Tc, Output::Triangles(got)) => {
            let expect = *refs.tc.get_or_init(|| serial::triangles(&input.csr));
            if *got == expect {
                Ok(())
            } else {
                Err(format!("triangle count {got} != {expect}"))
            }
        }
        (algo, out) => Err(format!("output kind {} does not fit {algo:?}", out.kind())),
    }
}

fn exact(got: &[u32], expect: &[u32], what: &str) -> Result<(), String> {
    if got.len() != expect.len() {
        return Err(format!("{what} length {} != {}", got.len(), expect.len()));
    }
    match got.iter().zip(expect).position(|(a, b)| a != b) {
        None => Ok(()),
        Some(v) => Err(format!("{what} of vertex {v}: {} vs {}", got[v], expect[v])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_graph::gen::toy;
    use indigo_styles::Model;

    #[test]
    fn accepts_correct_output() {
        let input = GraphInput::new(toy::path(5));
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        let good = Output::Levels(serial::bfs(&input.csr, crate::SOURCE));
        assert!(check(&cfg, &input, &good).is_ok());
    }

    #[test]
    fn rejects_wrong_values() {
        let input = GraphInput::new(toy::path(5));
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        let mut levels = serial::bfs(&input.csr, crate::SOURCE);
        levels[3] += 1;
        let err = check(&cfg, &input, &Output::Levels(levels)).unwrap_err();
        assert!(err.contains("vertex 3"), "{err}");
    }

    #[test]
    fn rejects_mismatched_kind() {
        let input = GraphInput::new(toy::path(5));
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        assert!(check(&cfg, &input, &Output::Triangles(0)).is_err());
    }

    #[test]
    fn pr_tolerance_accepts_small_drift() {
        let input = GraphInput::new(toy::cycle(6));
        let cfg = StyleConfig::baseline(Algorithm::Pr, Model::Cpp);
        let mut ranks = serial::pagerank(
            &input.csr,
            crate::PR_DAMPING,
            crate::PR_EPSILON,
            crate::PR_MAX_ITERS,
        );
        ranks[0] += PR_TOLERANCE / 2.0;
        assert!(check(&cfg, &input, &Output::Ranks(ranks.clone())).is_ok());
        ranks[0] += PR_TOLERANCE * 2.0;
        assert!(check(&cfg, &input, &Output::Ranks(ranks)).is_err());
    }
}
