//! Figure 15: style-combination matrix for the CUDA codes.
//!
//! Every cell (x, y) is the ratio of the median throughput of the variants
//! carrying *both* styles x and y over the median of those with x but not
//! y. The matrix is asymmetric because the baseline differs per cell
//! (paper §5.15).

use super::Dataset;
use crate::ratios::median_geps;
use crate::report::Report;
use indigo_styles::Model;

/// Style options of the combination matrix: (dimension, option) pairs.
pub const STYLES: &[(&str, &str)] = &[
    ("direction", "vertex"),
    ("direction", "edge"),
    ("drive", "topo"),
    ("drive", "data-dup"),
    ("drive", "data-nodup"),
    ("flow", "push"),
    ("flow", "pull"),
    ("update", "rw"),
    ("update", "rmw"),
    ("determinism", "det"),
    ("determinism", "nondet"),
    ("persistence", "persist"),
    ("persistence", "nonpersist"),
    ("granularity", "thread"),
    ("granularity", "warp"),
    ("granularity", "block"),
];

/// Builds the Fig 15 report (CudaAtomic variants excluded, as in §5.1).
pub fn fig15(ds: &Dataset) -> Report {
    let mut r = Report::new(
        "fig15",
        "Median-throughput ratio of style_x with style_y over style_x without style_y (CUDA, §5.15)",
    );
    let ms: Vec<_> = ds
        .measurements
        .iter()
        .filter(|m| {
            m.cfg.model == Model::Cuda
                && m.cfg.atomic != Some(indigo_styles::AtomicKind::CudaAtomic)
        })
        .cloned()
        .collect();

    let has = |m: &crate::matrix::Measurement, (dim, opt): (&str, &str)| {
        m.cfg.dimension_label(dim) == Some(opt)
    };

    let mut header = format!("{:<12}", "x \\ y");
    for &(_, opt) in STYLES {
        header.push_str(&format!(" {opt:>11}"));
    }
    r.line(&header);
    r.csv_row("style_x,style_y,ratio");
    for &x in STYLES {
        let mut row = format!("{:<12}", x.1);
        for &y in STYLES {
            if x.0 == y.0 {
                row.push_str(&format!(" {:>11}", "-"));
                continue;
            }
            let with_y = median_geps(&ms, |m| has(m, x) && has(m, y));
            let without_y = median_geps(&ms, |m| {
                has(m, x) && m.cfg.dimension_label(y.0).is_some() && !has(m, y)
            });
            let ratio = with_y / without_y;
            if ratio.is_finite() {
                row.push_str(&format!(" {ratio:>11.2}"));
                r.csv_row(format!("{},{},{ratio:.4}", x.1, y.1));
            } else {
                row.push_str(&format!(" {:>11}", "n/a"));
            }
        }
        r.line(&row);
    }
    r
}
