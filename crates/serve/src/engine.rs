//! Query parsing and the execution pipeline: deadline → cache → breaker →
//! retry → degrade (DESIGN.md §7.8).
//!
//! A query names an algorithm, a graph, a scale, and one or more style
//! variants; the engine multiplexes it onto [`RunPlan::run_cells`]. The
//! robustness contract:
//!
//! * **Deadlines.** The remaining request budget is split across the
//!   remaining attempts and handed to the PR 2 cooperative watchdog as the
//!   per-cell timeout, so a wedged cell costs one attempt, not the request.
//! * **Retries.** Crashed and timed-out cells are transient: the engine
//!   re-plans only the still-missing cells (idempotent via fingerprints —
//!   completed cells are cached and never re-run) with capped exponential
//!   backoff + deterministic jitter. Wrong answers are permanent failures.
//! * **Breaker + degrade.** Request outcomes feed the shard's circuit
//!   breaker; while it is open the engine answers from the cache when it
//!   can, and otherwise falls back to the serial oracle with a
//!   `degraded: true` marker rather than going dark.

use crate::batch::{Batcher, CellClaim, Flight, FlightResult, Flights, Submission};
use crate::breaker::{Admit, Breaker, BreakerConfig, Transition};
use crate::cache::ResultCache;
use crate::config::{parse_scale, scale_label, ServerConfig};
use crate::flightrec::{Outcome, RequestScope};
use crate::http::{Request, Response};
use crate::json;
use crate::stats::{ServeCounter, Stats};
use indigo_core::serial;
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_graph::{Csr, INF};
use indigo_harness::journal::fingerprint;
use indigo_harness::{CellFaultKind, FaultSpec, RunPlan, TargetSpec};
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Smallest per-attempt watchdog budget worth arming.
const MIN_ATTEMPT_BUDGET: Duration = Duration::from_millis(10);

/// One graph shard: its breaker plus lazily generated resident instances.
pub struct Shard {
    /// Which suite graph this shard owns.
    pub which: SuiteGraph,
    /// The shard's circuit breaker.
    pub breaker: Breaker,
    graphs: Mutex<HashMap<Scale, Arc<Csr>>>,
}

impl Shard {
    /// A fresh shard with a closed breaker.
    pub fn new(which: SuiteGraph, breaker: BreakerConfig) -> Shard {
        Shard {
            which,
            breaker: Breaker::new(breaker),
            graphs: Mutex::new(HashMap::new()),
        }
    }

    /// The resident graph instance at `scale` (generated on first use).
    pub fn graph(&self, scale: Scale) -> Arc<Csr> {
        let mut graphs = self.graphs.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            graphs
                .entry(scale)
                .or_insert_with(|| Arc::new(suite_graph(self.which, scale))),
        )
    }
}

/// A client-requested fault (chaos mode only): `kind` strikes the first
/// cell of every attempt numbered `<= attempts`.
#[derive(Clone, Copy, Debug)]
pub struct RequestFault {
    /// What the fault does.
    pub kind: CellFaultKind,
    /// Highest 1-based attempt number that still faults (`1` = transient:
    /// only the first try fails; large = the request keeps failing).
    pub attempts: u32,
}

/// A parsed, validated query.
#[derive(Clone, Debug)]
pub struct Query {
    /// Algorithm to run.
    pub algo: Algorithm,
    /// Programming model (decides the target set).
    pub model: Model,
    /// Input graph.
    pub graph: SuiteGraph,
    /// Instance scale.
    pub scale: Scale,
    /// Repetitions per cell.
    pub reps: usize,
    /// Style variants to measure.
    pub variants: Vec<StyleConfig>,
    /// Sweep (style-slice) query, vs single-variant run.
    pub sweep: bool,
    /// `style=auto`: the server resolves `variants` to the advisor's
    /// predicted-best style before execution (DESIGN.md §7.11). Until that
    /// resolution happens `variants` holds the baseline placeholder.
    pub auto: bool,
    /// Request deadline.
    pub deadline: Duration,
    /// Injected fault (chaos mode).
    pub fault: Option<RequestFault>,
}

/// Parses the `algo` query value (shared by `/run`, `/sweep`, `/advise`).
pub fn parse_algo(label: &str) -> Result<Algorithm, String> {
    Algorithm::ALL
        .iter()
        .find(|a| a.label() == label)
        .copied()
        .ok_or_else(|| format!("unknown algo `{label}` (bfs|sssp|cc|mis|pr|tc)"))
}

/// Parses the optional `model` query value (default CUDA).
pub fn parse_model(label: Option<&str>) -> Result<Model, String> {
    match label {
        None => Ok(Model::Cuda),
        Some(m) => Model::ALL
            .iter()
            .find(|x| x.label() == m)
            .copied()
            .ok_or_else(|| format!("unknown model `{m}` (cuda|omp|cpp)")),
    }
}

/// Parses the `graph` query value into a suite graph.
pub fn parse_graph(label: &str) -> Result<SuiteGraph, String> {
    SUITE_GRAPHS
        .iter()
        .find(|g| g.label() == label)
        .copied()
        .ok_or_else(|| format!("unknown graph `{label}` (2d-grid|copapers|rmat|soc-net|road)"))
}

/// Parses `/run` (`sweep = false`) or `/sweep` (`sweep = true`) params.
pub fn parse_query(req: &Request, cfg: &ServerConfig, sweep: bool) -> Result<Query, String> {
    let algo_label = req.param("algo").ok_or("missing `algo` parameter")?;
    let algo = parse_algo(algo_label)?;
    let model = parse_model(req.param("model"))?;
    let graph_label = req.param("graph").ok_or("missing `graph` parameter")?;
    let graph = parse_graph(graph_label)?;
    let scale = match req.param("scale") {
        None => cfg.default_scale,
        Some(s) => parse_scale(s)?,
    };
    let auto = match req.param("style") {
        None => false,
        Some("auto") => {
            if sweep {
                return Err(
                    "`style=auto` applies to /run only (a sweep measures every style)".into(),
                );
            }
            if req.param("variant").is_some() {
                return Err("`style=auto` conflicts with an explicit `variant`".into());
            }
            true
        }
        Some(other) => {
            return Err(format!(
                "unknown `style` value `{other}` (only `auto`; name an explicit style \
                 with `variant=`)"
            ))
        }
    };
    let reps = match req.param("reps") {
        None => cfg.reps,
        Some(r) => match r.parse::<usize>() {
            Ok(n) if (1..=9).contains(&n) => n,
            _ => return Err(format!("`reps` must be 1..=9, got `{r}`")),
        },
    };
    let deadline = match req.param("deadline_ms") {
        None => cfg.default_deadline,
        Some(d) => {
            let ms: u64 = d
                .parse()
                .map_err(|_| format!("`deadline_ms` is not a number: `{d}`"))?;
            if ms == 0 {
                // the serving-layer face of the zero-duration deadline fix:
                // a 0 ms deadline would expire before the first checkpoint
                return Err("`deadline_ms` of 0 would expire immediately; \
                            omit it to use the server default"
                    .into());
            }
            Duration::from_millis(ms).min(cfg.max_deadline)
        }
    };
    let all = enumerate::variants(algo, model);
    let variants = if sweep {
        let limit = match req.param("limit") {
            None => 0,
            Some(l) => l
                .parse::<usize>()
                .map_err(|_| format!("`limit` is not a number: `{l}`"))?,
        };
        let mut v = all;
        if limit > 0 {
            v.truncate(limit);
        }
        v
    } else if auto {
        // placeholder until the server resolves the advised style; keeps
        // the Query invariant (`variants` never empty) for every consumer
        vec![StyleConfig::baseline(algo, model)]
    } else {
        let name = req.param("variant").unwrap_or("baseline");
        if name == "baseline" {
            vec![StyleConfig::baseline(algo, model)]
        } else {
            vec![all.into_iter().find(|c| c.name() == name).ok_or_else(|| {
                format!(
                    "unknown variant `{name}` for {algo_label}/{}; \
                                        use `baseline` or a name from /sweep",
                    model.label()
                )
            })?]
        }
    };
    let fault = match req.param("fault") {
        None => None,
        Some(_) if !cfg.allow_fault_param => {
            return Err("fault injection is disabled on this server (chaos mode only)".into())
        }
        Some(kind) => {
            let kind = match kind {
                "panic" => CellFaultKind::Panic,
                "stall" => CellFaultKind::Stall,
                "corrupt" => CellFaultKind::Corrupt,
                other => return Err(format!("unknown fault `{other}` (panic|stall|corrupt)")),
            };
            let attempts = match req.param("fault_attempts") {
                None => 1,
                Some(a) => a
                    .parse::<u32>()
                    .map_err(|_| format!("`fault_attempts` is not a number: `{a}`"))?,
            };
            Some(RequestFault { kind, attempts })
        }
    };
    Ok(Query {
        algo,
        model,
        graph,
        scale,
        reps,
        variants,
        sweep,
        auto,
        deadline,
        fault,
    })
}

/// One expected cell of a query.
struct CellKey {
    fp: u64,
    variant: String,
    target: String,
}

fn cells_for(q: &Query) -> Vec<CellKey> {
    let targets = TargetSpec::defaults_for(q.model);
    let mut cells = Vec::with_capacity(q.variants.len() * targets.len());
    for v in &q.variants {
        let name = v.name();
        for t in &targets {
            let target = t.label();
            cells.push(CellKey {
                fp: fingerprint(q.scale, q.reps, true, &name, q.graph.label(), &target),
                variant: name.clone(),
                target,
            });
        }
    }
    cells
}

/// Borrowed server state the engine runs against.
pub struct EngineCtx<'a> {
    /// Server configuration.
    pub cfg: &'a ServerConfig,
    /// Result cache (+ journal).
    pub cache: &'a Arc<ResultCache>,
    /// Always-on stats.
    pub stats: &'a Arc<Stats>,
    /// Single-flight registry keyed by cell fingerprint.
    pub flights: &'a Arc<Flights>,
    /// Batch former, when batching is on (`cfg.batch > 0`).
    pub batcher: Option<&'a Batcher>,
}

/// Executes a parsed query against its shard. `deadline_at` is absolute
/// (stamped at accept, so queue wait counts against the budget).
///
/// Since PR 8 execution goes through the single-flight registry: each
/// round, the request *claims* the missing cells nobody else is computing
/// and *joins* the flights already in the air. A round with claims runs
/// them (through the batch former when batching is on, inline otherwise);
/// a round with only joins just waits. Either way the request then settles
/// its own verdict — its 504 clock, retry budget, and breaker report are
/// never delegated to whoever happens to execute the cells.
///
/// `scope` is the request's observability scope (DESIGN.md §7.10): the
/// engine fills in attempts, batch-wait attribution, the serving flight's
/// owner for coalesced waiters, and the refined outcome.
pub fn execute(
    ctx: &EngineCtx<'_>,
    shard: &Shard,
    q: &Query,
    deadline_at: Instant,
    scope: &mut RequestScope,
) -> Response {
    let cells = cells_for(q);

    // ---- cache: a fully answered query never touches the breaker
    if cells.iter().all(|c| ctx.cache.get(c.fp).is_some()) {
        ctx.stats.bump(ServeCounter::CacheHits);
        scope.outcome = Outcome::Cached;
        return Response::json(200, result_body(ctx, q, &cells, true, false, 0));
    }

    // ---- breaker: open shard → degraded answer, never an error page
    let probe = match shard.breaker.admit() {
        Admit::Run => false,
        Admit::Probe => true,
        Admit::Degraded { retry_after } => return degraded(ctx, shard, q, retry_after, scope),
    };

    // ---- claim/join/wait loop over the still-missing cells
    let mut attempt = 0u32; // executions *this request* paid for
    let mut failures: Vec<(String, String, &'static str, String)> = Vec::new();
    let mut timed_out_only = true;
    loop {
        let now = Instant::now();
        let remaining = deadline_at.saturating_duration_since(now);
        if remaining < MIN_ATTEMPT_BUDGET {
            // the request's own deadline expired — any shared flights keep
            // running for their other waiters and land in the cache
            ctx.stats.bump(ServeCounter::Timeouts);
            scope.attempts = u64::from(attempt);
            scope.outcome = Outcome::Timeout;
            report_breaker(ctx, shard, false, probe);
            let body = format!(
                "{{\"status\":\"timeout\",\"error\":{},\"attempts\":{attempt}}}",
                json::str_lit(&format!(
                    "deadline of {} ms exhausted after {attempt} attempt(s)",
                    q.deadline.as_millis(),
                )),
            );
            return Response::json(504, body);
        }

        let missing: Vec<&CellKey> = cells
            .iter()
            .filter(|c| ctx.cache.get(c.fp).is_none())
            .collect();
        if missing.is_empty() {
            break; // every cell is cached — assemble the answer
        }

        let attempts_left = ctx.cfg.retry.max_attempts.saturating_sub(attempt);
        let (claimed, joined) = if attempts_left > 0 {
            let wanted: Vec<CellClaim<'_>> = missing
                .iter()
                .map(|c| CellClaim {
                    fp: c.fp,
                    variant: &c.variant,
                    target: &c.target,
                })
                .collect();
            Flights::claim_or_join(ctx.flights, &wanted, scope.seq)
        } else {
            // out of execution attempts: free-ride on flights others run
            let fps: Vec<u64> = missing.iter().map(|c| c.fp).collect();
            (Vec::new(), ctx.flights.join_only(&fps))
        };

        if claimed.is_empty() {
            if joined.is_empty() {
                // nothing left to wait on and no attempts left to execute
                report_breaker(ctx, shard, false, probe);
                scope.attempts = u64::from(attempt);
                return if timed_out_only {
                    ctx.stats.bump(ServeCounter::Timeouts);
                    scope.outcome = Outcome::Timeout;
                    Response::json(
                        504,
                        failure_body("timeout", "timed out on every attempt", attempt, &failures),
                    )
                } else {
                    ctx.stats.bump(ServeCounter::Failed);
                    scope.outcome = Outcome::Error;
                    Response::json(
                        500,
                        failure_body("error", "retries exhausted", attempt, &failures),
                    )
                };
            }
            // pure waiter: every missing cell is already in the air —
            // record whose flight is doing our work (first joined flight's
            // claimer; a multi-cell join credits the first)
            ctx.stats.bump(ServeCounter::Coalesced);
            if scope.served_by == 0 {
                scope.served_by = joined.first().map(|f| f.owner()).unwrap_or(0);
            }
            if let Some(resp) =
                wait_flights(ctx, shard, probe, &joined, deadline_at, attempt, scope)
            {
                return resp;
            }
            continue; // re-check cache / deadline, re-claim what failed
        }

        // claimer: this request executes (or batches) the unclaimed cells
        attempt += 1;
        let budget = (remaining / attempts_left.max(1))
            .max(MIN_ATTEMPT_BUDGET)
            .min(remaining);
        let fault = q.fault.and_then(|f| {
            (attempt <= f.attempts).then_some(FaultSpec {
                kind: f.kind,
                cell: 0,
            })
        });
        let run_variants: Vec<StyleConfig> = q
            .variants
            .iter()
            .filter(|v| {
                let name = v.name();
                claimed
                    .iter()
                    .any(|g| cells.iter().any(|c| c.fp == g.fp() && c.variant == name))
            })
            .cloned()
            .collect();
        let my_flights: Vec<Arc<Flight>> = claimed.iter().map(|g| g.flight()).collect();
        let sub = Submission {
            graph: q.graph,
            scale: q.scale,
            reps: q.reps,
            variants: run_variants,
            budget,
            fault,
            claims: claimed,
        };
        // faulted submissions run inline so an injected stall wedges this
        // request's attempt, never the shared batch former
        let inline = match (ctx.batcher, fault) {
            (Some(b), None) => b.submit(sub).err(),
            (_, _) => Some(sub),
        };
        if let Some(sub) = inline {
            let plan = RunPlan {
                variants: sub.variants,
                graphs: vec![sub.graph],
                scale: sub.scale,
                reps: sub.reps,
                verify: true,
            };
            crate::batch::run_claims(
                ctx.cache,
                ctx.stats,
                ctx.cfg.jobs,
                plan,
                sub.budget,
                sub.fault,
                sub.claims,
            );
        }

        failures.clear();
        let all: Vec<Arc<Flight>> = my_flights.into_iter().chain(joined).collect();
        let mut wrong_answer = false;
        for flight in &all {
            // batch-wait attribution: how long our claims sat in the former
            // before a merged plan actually started running them
            if flight.owner() == scope.seq {
                scope.batch_wait_us = scope.batch_wait_us.max(flight.batch_wait_us());
            }
            match flight.wait_until(deadline_at) {
                // still running past our deadline: the shared run keeps
                // going for its other waiters; our top-of-loop check 504s
                None => {}
                Some(FlightResult::Done) => {}
                Some(FlightResult::Transient {
                    variant,
                    target,
                    outcome,
                    detail,
                }) => {
                    if outcome == "crashed" {
                        timed_out_only = false;
                    }
                    failures.push((variant, target, outcome, detail));
                }
                Some(FlightResult::Poisoned {
                    variant,
                    target,
                    detail,
                }) => {
                    timed_out_only = false;
                    wrong_answer = true;
                    failures.push((variant, target, "wrong-answer", detail));
                }
            }
        }
        if wrong_answer {
            // a verification failure is not transient: retrying would burn
            // the deadline re-computing the same wrong bits
            ctx.stats.bump(ServeCounter::Failed);
            scope.attempts = u64::from(attempt);
            scope.outcome = Outcome::Quarantined;
            report_breaker(ctx, shard, false, probe);
            return Response::json(
                500,
                failure_body("error", "wrong answer (quarantined)", attempt, &failures),
            );
        }
        if failures.is_empty() {
            continue; // all Done: the top of the loop finds them cached
        }
        if attempt >= ctx.cfg.retry.max_attempts {
            report_breaker(ctx, shard, false, probe);
            scope.attempts = u64::from(attempt);
            return if timed_out_only {
                ctx.stats.bump(ServeCounter::Timeouts);
                scope.outcome = Outcome::Timeout;
                Response::json(
                    504,
                    failure_body("timeout", "timed out on every attempt", attempt, &failures),
                )
            } else {
                ctx.stats.bump(ServeCounter::Failed);
                scope.outcome = Outcome::Error;
                Response::json(
                    500,
                    failure_body("error", "retries exhausted", attempt, &failures),
                )
            };
        }

        // transient: back off (within the deadline) and go again
        ctx.stats.add(ServeCounter::Retries, failures.len() as u64);
        let fp0 = cells.first().map(|c| c.fp).unwrap_or(0);
        let backoff = ctx.cfg.retry.backoff(fp0, attempt);
        let remaining = deadline_at.saturating_duration_since(Instant::now());
        std::thread::sleep(backoff.min(remaining));
    }

    // loop only breaks when every cell is cached; `attempt == 0` means this
    // request never executed anything (pure cache/coalescing win)
    report_breaker(ctx, shard, true, probe);
    scope.attempts = u64::from(attempt);
    scope.outcome = if attempt == 0 && scope.served_by == 0 {
        Outcome::Cached
    } else {
        Outcome::Ok
    };
    Response::json(
        200,
        result_body(ctx, q, &cells, attempt == 0, false, attempt),
    )
}

/// Waits out a pure-waiter round. Returns the final response when a joined
/// flight was poisoned (the only verdict a waiter settles mid-round);
/// otherwise `None`, and the caller loops to re-check the cache.
#[allow(clippy::too_many_arguments)]
fn wait_flights(
    ctx: &EngineCtx<'_>,
    shard: &Shard,
    probe: bool,
    joined: &[Arc<Flight>],
    deadline_at: Instant,
    attempt: u32,
    scope: &mut RequestScope,
) -> Option<Response> {
    let mut poisoned: Vec<(String, String, &'static str, String)> = Vec::new();
    for flight in joined {
        // Done/Transient/still-running need nothing here: the top of the
        // loop re-checks the cache, the deadline, and what's left to
        // (re-)claim. Poisoned is the only verdict a waiter settles on.
        if let Some(FlightResult::Poisoned {
            variant,
            target,
            detail,
        }) = flight.wait_until(deadline_at)
        {
            poisoned.push((variant, target, "wrong-answer", detail));
        }
    }
    if poisoned.is_empty() {
        return None;
    }
    ctx.stats.bump(ServeCounter::Failed);
    scope.attempts = u64::from(attempt);
    scope.outcome = Outcome::Quarantined;
    report_breaker(ctx, shard, false, probe);
    Some(Response::json(
        500,
        failure_body("error", "wrong answer (quarantined)", attempt, &poisoned),
    ))
}

fn report_breaker(ctx: &EngineCtx<'_>, shard: &Shard, ok: bool, probe: bool) {
    match shard.breaker.report(ok, probe) {
        Some(Transition::Tripped) => {
            ctx.stats.bump(ServeCounter::BreakerTrips);
            indigo_obs::Gauge::ServeOpenBreakers.add(1);
        }
        Some(Transition::Recovered) => {
            ctx.stats.bump(ServeCounter::BreakerRecoveries);
            indigo_obs::Gauge::ServeOpenBreakers.add(-1);
        }
        None => {}
    }
}

/// Success body: every cell from the cache, exact bits included.
fn result_body(
    ctx: &EngineCtx<'_>,
    q: &Query,
    cells: &[CellKey],
    cached: bool,
    degraded: bool,
    attempts: u32,
) -> String {
    let mut cell_objs = Vec::with_capacity(cells.len());
    let mut best: Option<(f64, &CellKey)> = None;
    for c in cells {
        let Some(entry) = ctx.cache.get(c.fp) else {
            continue;
        };
        let geps = entry.geps();
        if best.as_ref().is_none_or(|(b, _)| geps > *b) {
            best = Some((geps, c));
        }
        cell_objs.push(format!(
            "{{\"fp\":\"{:016x}\",\"variant\":{},\"target\":{},\"geps\":{},\"geps_bits\":\"{:016x}\",\"iterations\":{}}}",
            c.fp,
            json::str_lit(&c.variant),
            json::str_lit(&c.target),
            json::num(geps),
            entry.geps_bits,
            entry.iterations
        ));
    }
    let mut body = format!(
        "{{\"status\":\"ok\",\"cached\":{cached},\"degraded\":{degraded},\"attempts\":{attempts},\
         \"algo\":{},\"model\":{},\"graph\":{},\"scale\":{},\"cells\":[{}]",
        json::str_lit(q.algo.label()),
        json::str_lit(q.model.label()),
        json::str_lit(q.graph.label()),
        json::str_lit(scale_label(q.scale)),
        cell_objs.join(",")
    );
    if q.sweep {
        if let Some((geps, c)) = best {
            body.push_str(&format!(
                ",\"summary\":{{\"cells\":{},\"best_geps\":{},\"best_variant\":{},\"best_target\":{}}}",
                cell_objs.len(),
                json::num(geps),
                json::str_lit(&c.variant),
                json::str_lit(&c.target)
            ));
        }
    }
    body.push('}');
    body
}

fn failure_body(
    status: &str,
    error: &str,
    attempts: u32,
    failures: &[(String, String, &'static str, String)],
) -> String {
    let items: Vec<String> = failures
        .iter()
        .map(|(variant, target, outcome, detail)| {
            format!(
                "{{\"variant\":{},\"target\":{},\"outcome\":{},\"detail\":{}}}",
                json::str_lit(variant),
                json::str_lit(target),
                json::str_lit(outcome),
                json::str_lit(detail)
            )
        })
        .collect();
    format!(
        "{{\"status\":{},\"error\":{},\"attempts\":{attempts},\"failures\":[{}]}}",
        json::str_lit(status),
        json::str_lit(error),
        items.join(",")
    )
}

/// Degraded path: journal-cached cells when the query is fully covered,
/// otherwise a serial-oracle summary — either way `degraded: true` and a
/// `Retry-After` pointing at the breaker's half-open horizon.
fn degraded(
    ctx: &EngineCtx<'_>,
    shard: &Shard,
    q: &Query,
    retry_after: Duration,
    scope: &mut RequestScope,
) -> Response {
    ctx.stats.bump(ServeCounter::Degraded);
    scope.outcome = Outcome::Degraded;
    let retry_secs = retry_after.as_secs().max(1);

    let g = shard.graph(q.scale);
    let oracle = catch_unwind(AssertUnwindSafe(|| oracle_summary(q.algo, &g)));
    match oracle {
        Ok(summary) => {
            let body = format!(
                "{{\"status\":\"degraded\",\"degraded\":true,\"breaker\":\"open\",\
                 \"algo\":{},\"graph\":{},\"scale\":{},\"oracle\":{summary},\
                 \"retry_after_ms\":{}}}",
                json::str_lit(q.algo.label()),
                json::str_lit(q.graph.label()),
                json::str_lit(scale_label(q.scale)),
                retry_after.as_millis()
            );
            Response::json(200, body).with_retry_after(retry_secs)
        }
        Err(_) => {
            ctx.stats.bump(ServeCounter::Failed);
            scope.outcome = Outcome::Error;
            Response::json(
                503,
                "{\"status\":\"unavailable\",\"error\":\"breaker open and the serial fallback failed\"}",
            )
            .with_retry_after(retry_secs)
        }
    }
}

/// Serial-oracle answer summary: not a measurement, but the actual analytic
/// result a degraded client can still act on.
fn oracle_summary(algo: Algorithm, g: &Csr) -> String {
    match algo {
        Algorithm::Bfs => {
            let levels = serial::bfs(g, indigo_core::SOURCE);
            let reached = levels.iter().filter(|&&l| l != INF).count();
            let max = levels
                .iter()
                .filter(|&&l| l != INF)
                .max()
                .copied()
                .unwrap_or(0);
            format!("{{\"kind\":\"serial-bfs\",\"reached\":{reached},\"max_level\":{max}}}")
        }
        Algorithm::Sssp => {
            // suite graphs are unweighted until a weighted algorithm asks
            let weighted;
            let g = if g.is_weighted() {
                g
            } else {
                weighted = g.with_synthetic_weights();
                &weighted
            };
            let dist = serial::sssp(g, indigo_core::SOURCE);
            let reached = dist.iter().filter(|&&d| d != INF).count();
            let max = dist
                .iter()
                .filter(|&&d| d != INF)
                .max()
                .copied()
                .unwrap_or(0);
            format!("{{\"kind\":\"serial-sssp\",\"reached\":{reached},\"max_dist\":{max}}}")
        }
        Algorithm::Cc => {
            let labels = serial::cc(g);
            let mut distinct: Vec<u32> = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            format!(
                "{{\"kind\":\"serial-cc\",\"components\":{},\"vertices\":{}}}",
                distinct.len(),
                labels.len()
            )
        }
        Algorithm::Mis => {
            let in_set = serial::mis(g, indigo_core::MIS_SEED);
            let size = in_set.iter().filter(|&&b| b).count();
            format!("{{\"kind\":\"serial-mis\",\"set_size\":{size}}}")
        }
        Algorithm::Pr => {
            let ranks = serial::pagerank(
                g,
                indigo_core::PR_DAMPING,
                indigo_core::PR_EPSILON,
                indigo_core::PR_MAX_ITERS,
            );
            let max = ranks.iter().cloned().fold(0.0f32, f32::max);
            format!(
                "{{\"kind\":\"serial-pagerank\",\"vertices\":{},\"max_rank\":{}}}",
                ranks.len(),
                json::num(max as f64)
            )
        }
        Algorithm::Tc => {
            let n = serial::triangles(g);
            format!("{{\"kind\":\"serial-triangles\",\"triangles\":{n}}}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(target: &str) -> Request {
        Request::parse(&format!("GET {target} HTTP/1.1\r\n\r\n")).unwrap()
    }

    fn cfg() -> ServerConfig {
        ServerConfig::default()
    }

    #[test]
    fn parses_a_minimal_run_query() {
        let q = parse_query(&req("/run?algo=tc&graph=2d-grid"), &cfg(), false).unwrap();
        assert_eq!(q.algo, Algorithm::Tc);
        assert_eq!(q.model, Model::Cuda);
        assert_eq!(q.graph, SuiteGraph::Grid2d);
        assert_eq!(q.variants.len(), 1);
        assert_eq!(q.deadline, cfg().default_deadline);
        assert!(q.fault.is_none());
        assert!(!q.sweep);
    }

    #[test]
    fn rejects_bad_params_with_clear_messages() {
        let cases = [
            ("/run?graph=2d-grid", "missing `algo`"),
            ("/run?algo=nope&graph=2d-grid", "unknown algo"),
            ("/run?algo=tc", "missing `graph`"),
            ("/run?algo=tc&graph=petersen", "unknown graph"),
            ("/run?algo=tc&graph=2d-grid&scale=huge", "unknown scale"),
            (
                "/run?algo=tc&graph=2d-grid&deadline_ms=0",
                "expire immediately",
            ),
            ("/run?algo=tc&graph=2d-grid&variant=zzz", "unknown variant"),
            ("/run?algo=tc&graph=2d-grid&fault=panic", "chaos mode only"),
            (
                "/run?algo=tc&graph=2d-grid&style=fastest",
                "unknown `style`",
            ),
            (
                "/run?algo=tc&graph=2d-grid&style=auto&variant=baseline",
                "conflicts",
            ),
        ];
        for (target, want) in cases {
            let err = parse_query(&req(target), &cfg(), false).unwrap_err();
            assert!(err.contains(want), "{target}: {err}");
        }
    }

    #[test]
    fn style_auto_parses_on_run_and_rejects_on_sweep() {
        let q = parse_query(&req("/run?algo=bfs&graph=rmat&style=auto"), &cfg(), false).unwrap();
        assert!(q.auto);
        // placeholder until the server resolves the advised style
        assert_eq!(q.variants.len(), 1);
        let plain = parse_query(&req("/run?algo=bfs&graph=rmat"), &cfg(), false).unwrap();
        assert!(!plain.auto);
        let err =
            parse_query(&req("/sweep?algo=bfs&graph=rmat&style=auto"), &cfg(), true).unwrap_err();
        assert!(err.contains("/run only"), "{err}");
    }

    #[test]
    fn fault_params_parse_in_chaos_mode() {
        let mut c = cfg();
        c.allow_fault_param = true;
        let q = parse_query(
            &req("/run?algo=tc&graph=rmat&fault=stall&fault_attempts=2"),
            &c,
            false,
        )
        .unwrap();
        let f = q.fault.unwrap();
        assert_eq!(f.kind, CellFaultKind::Stall);
        assert_eq!(f.attempts, 2);
    }

    #[test]
    fn deadline_is_clamped_to_the_configured_max() {
        let q = parse_query(
            &req("/run?algo=tc&graph=2d-grid&deadline_ms=999999999"),
            &cfg(),
            false,
        )
        .unwrap();
        assert_eq!(q.deadline, cfg().max_deadline);
    }

    #[test]
    fn sweep_limit_truncates_the_variant_list() {
        let all = parse_query(&req("/sweep?algo=tc&graph=rmat"), &cfg(), true).unwrap();
        let capped = parse_query(&req("/sweep?algo=tc&graph=rmat&limit=2"), &cfg(), true).unwrap();
        assert!(all.variants.len() > 2);
        assert_eq!(capped.variants.len(), 2);
        assert!(capped.sweep);
    }

    #[test]
    fn oracle_summaries_cover_every_algorithm() {
        let g = suite_graph(SuiteGraph::Grid2d, Scale::Tiny);
        for algo in Algorithm::ALL {
            let s = oracle_summary(algo, &g);
            assert!(s.starts_with("{\"kind\":\"serial-"), "{algo:?}: {s}");
        }
    }
}
