//! Tiny JSON emission helpers for response bodies (the workspace is
//! dependency-free; the journal has its own copy for its flat line format).

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, quotes included.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite `f64` (JSON has no NaN/inf — those become `null`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_cover_the_dangerous_cases() {
        assert_eq!(str_lit("plain"), "\"plain\"");
        assert_eq!(str_lit("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(str_lit("\u{1}"), "\"\\u0001\"");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
    }
}
