//! `indigo-exp` — regenerates the paper's tables and figures.
//!
//! ```text
//! indigo-exp all                        # every table and figure
//! indigo-exp fig05 fig16               # a subset
//! indigo-exp tables                    # Tables 1-5 only (no measuring)
//! options:
//!   --scale tiny|small|default|large   # input instance size (default: small)
//!   --reps N                           # CPU wall-clock repetitions (default: 3)
//!   --out DIR                          # report directory (default: results)
//! ```

use indigo_graph::gen::Scale;
use indigo_harness::experiments::{self, correlation, fig14, fig15, fig16, tables, throughput};
use indigo_harness::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut reps = 3usize;
    let mut out_dir = "results".to_string();
    let mut selected: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("default") => Scale::Default,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"))
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| die("--out needs a directory")),
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        println!("{}", HELP);
        return;
    }

    let wants = |id: &str| {
        selected.iter().any(|s| s == id)
            || selected.iter().any(|s| s == "all")
            || (id.starts_with("table") && selected.iter().any(|s| s == "tables"))
    };

    let mut reports: Vec<Report> = Vec::new();
    // tables need no measurements
    if wants("table1") {
        reports.push(tables::table1());
    }
    if wants("table2") {
        reports.push(tables::table2());
    }
    if wants("table3") {
        reports.push(tables::table3());
    }
    if wants("table45") {
        reports.push(tables::tables45(scale));
    }

    let needs_dataset = experiments::PAIR_SPECS.iter().any(|s| wants(s.id))
        || ["fig09", "fig10", "fig11", "fig14", "fig15", "fig16", "corr513"]
            .iter()
            .any(|id| wants(id));
    if needs_dataset {
        eprintln!(
            "measuring full suite at {scale:?} scale ({} CPU reps); this runs all 1098 programs \
             on 5 inputs...",
            reps
        );
        let started = std::time::Instant::now();
        let ds = experiments::Dataset::collect(scale, reps, |done, total| {
            eprintln!("  input {done}/{total} done ({:.0?})", started.elapsed());
        });
        eprintln!("matrix complete: {} measurements", ds.measurements.len());

        for spec in experiments::PAIR_SPECS {
            if wants(spec.id) {
                reports.push(experiments::pair_report(spec, &ds));
            }
        }
        if wants("fig09") {
            reports.push(throughput::fig09(&ds));
        }
        if wants("fig10") {
            reports.push(throughput::fig10(&ds));
        }
        if wants("fig11") {
            reports.push(throughput::fig11(&ds));
        }
        if wants("fig14") {
            reports.push(fig14::fig14(&ds));
        }
        if wants("fig15") {
            reports.push(fig15::fig15(&ds));
        }
        if wants("corr513") {
            reports.push(correlation::correlation(&ds));
        }
        if wants("fig16") {
            eprintln!("running baselines for fig16...");
            reports.push(fig16::fig16(&ds));
        }
    }

    for r in &reports {
        println!("{}", r.render());
        if let Err(e) = r.write_to(&out_dir) {
            eprintln!("failed to write {}: {e}", r.id);
        }
    }
    eprintln!("wrote {} reports to {out_dir}/", reports.len());
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

const HELP: &str = "indigo-exp — regenerate the Indigo2 paper's tables and figures

usage: indigo-exp <ids...> [--scale tiny|small|default|large] [--reps N] [--out DIR]

ids: all, tables, table1 table2 table3 table45,
     fig01 fig02 fig02c fig03 fig04 fig05 fig06 fig07 fig08,
     fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16, corr513";
