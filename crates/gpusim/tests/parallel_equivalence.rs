//! Equivalence gate for the multi-threaded simulator: every `_det` launch
//! must report bit-identical cycles, reduction totals, and buffer state for
//! any host worker count. This is the contract that lets the measurement
//! harness fan GPU cells across threads without perturbing results.

use indigo_gpusim::{rtx3090, titan_v, Assign, BufKind, GpuBuf, GpuBufF32, ReduceStyle, Sim};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const ASSIGNS: [Assign; 3] = [
    Assign::ThreadPerItem,
    Assign::WarpPerItem,
    Assign::BlockPerItem,
];

/// A deliberately skewed per-item workload: item 0 is ~4000× heavier than
/// the tail, like the hub vertex of a power-law graph. Blocks then have
/// very different costs, which is exactly when dynamic block-stealing
/// reorders completion the most.
fn skewed_work(i: usize) -> usize {
    if i == 0 {
        8192
    } else if i % 97 == 0 {
        256
    } else {
        2
    }
}

fn exact_bits(c: f64) -> u64 {
    c.to_bits()
}

#[test]
fn plain_launch_identical_across_workers() {
    for assign in ASSIGNS {
        for persistent in [false, true] {
            let run = |workers: usize| {
                let data = GpuBuf::new(32_768, 1);
                let out = GpuBuf::new(2048, 0);
                let mut sim = Sim::new(titan_v());
                sim.set_workers(workers);
                sim.launch_det(2048, assign, persistent, |ctx, i| {
                    let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                    let mut acc = 0u32;
                    let mut k = lane;
                    while k < skewed_work(i) {
                        acc = acc.wrapping_add(ctx.ld(&data, (i * 31 + k) % data.len()));
                        k += lanes;
                    }
                    ctx.atomic_add(&out, i, acc);
                });
                (exact_bits(sim.elapsed_cycles()), out.to_vec())
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} persistent={persistent} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn u64_reduction_identical_across_workers() {
    for assign in ASSIGNS {
        for style in [
            ReduceStyle::GlobalAdd,
            ReduceStyle::BlockAdd,
            ReduceStyle::ReductionAdd,
        ] {
            let run = |workers: usize| {
                let mut sim = Sim::new(rtx3090());
                sim.set_workers(workers);
                let total = sim.launch_reduce_u64_det(
                    3000,
                    assign,
                    false,
                    style,
                    BufKind::CudaAtomic,
                    |ctx, i| {
                        if ctx.lane() == 0 {
                            ctx.reduce_add_u64((i as u64).wrapping_mul(2654435761) % 1013);
                        }
                    },
                );
                (exact_bits(sim.elapsed_cycles()), total)
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} {style:?} workers={workers}"
                );
            }
        }
    }
}

/// `f32` addition does not commute, so this only holds because the merge
/// accumulates per-block partials in block index order.
#[test]
fn f32_reduction_bit_identical_across_workers() {
    let run = |workers: usize| {
        let mut sim = Sim::new(titan_v());
        sim.set_workers(workers);
        let total = sim.launch_reduce_f32_det(
            5000,
            Assign::ThreadPerItem,
            false,
            ReduceStyle::ReductionAdd,
            BufKind::Atomic,
            |ctx, i| {
                // values with wildly different magnitudes make f32 sum
                // order-sensitive — any reordering would change the bits
                ctx.reduce_add_f32(if i % 3 == 0 { 1e-6 } else { 1.0 + i as f32 });
            },
        );
        (exact_bits(sim.elapsed_cycles()), total.to_bits())
    };
    let baseline = run(1);
    for workers in WORKER_COUNTS {
        assert_eq!(run(workers), baseline, "workers={workers}");
    }
}

#[test]
fn coop_launch_identical_across_workers() {
    for assign in ASSIGNS {
        for persistent in [false, true] {
            let run = |workers: usize| {
                let out = GpuBufF32::new(600, 0.0);
                let mut sim = Sim::new(rtx3090());
                sim.set_workers(workers);
                let (ru, rf) = sim.launch_coop_det(
                    600,
                    assign,
                    persistent,
                    Some((ReduceStyle::BlockAdd, BufKind::Atomic)),
                    |ctx, i| {
                        let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                        let mut k = lane;
                        while k < skewed_work(i) {
                            ctx.scratch_add_f32(1.0 / (1.0 + (i + k) as f32));
                            k += lanes;
                        }
                    },
                    |ctx, i| {
                        let total = ctx.group_f32();
                        ctx.st_f32(&out, i, total);
                        ctx.reduce_add_u64(1);
                    },
                );
                let bits: Vec<u32> = (0..600).map(|i| out.host_read(i).to_bits()).collect();
                (exact_bits(sim.elapsed_cycles()), ru, rf.to_bits(), bits)
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} persistent={persistent} workers={workers}"
                );
            }
        }
    }
}

/// Serial entry points must ignore the worker setting entirely: a kernel
/// without the `deterministic_parallel` capability always simulates
/// single-threaded.
#[test]
fn non_det_launch_stays_serial_and_stable() {
    let run = |workers: usize| {
        let buf = GpuBuf::new(1000, u32::MAX).with_kind(BufKind::Atomic);
        let mut sim = Sim::new(titan_v());
        sim.set_workers(workers);
        sim.launch(1000, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld(&buf, (i + 1) % 1000);
            ctx.atomic_min(&buf, i, v.min(i as u32));
        });
        (exact_bits(sim.elapsed_cycles()), buf.to_vec())
    };
    let baseline = run(1);
    for workers in WORKER_COUNTS {
        assert_eq!(run(workers), baseline, "workers={workers}");
    }
}

#[test]
fn worker_setting_round_trips() {
    let mut sim = Sim::new(titan_v());
    assert_eq!(sim.workers(), 1);
    sim.set_workers(8);
    assert_eq!(sim.workers(), 8);
    sim.set_workers(0); // clamped
    assert_eq!(sim.workers(), 1);
}

/// A kernel panic inside a pooled launch must drain every other block,
/// re-raise the earliest block's payload, and leave the `Sim` (and its
/// leased pool) fully usable for the next launch.
#[test]
fn pooled_panic_drains_and_sim_stays_usable() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    const N: usize = 4096;
    let executed = AtomicUsize::new(0);
    let dst = GpuBuf::new(N, 0);
    let mut sim = Sim::new(titan_v());
    sim.set_workers(4);

    let err = catch_unwind(AssertUnwindSafe(|| {
        sim.launch_det(N, Assign::ThreadPerItem, false, |ctx, i| {
            // two faulting items in different blocks: the earliest block's
            // payload must be the one re-raised
            if i == 1 || i == N - 1 {
                std::panic::panic_any(format!("boom item {i}"));
            }
            executed.fetch_add(1, Ordering::Relaxed);
            ctx.st(&dst, i, i as u32);
        });
    }))
    .unwrap_err();
    assert_eq!(err.downcast_ref::<String>().unwrap(), "boom item 1");

    // every block outside the two faulting ones drained to completion (a
    // panic skips only the remainder of its own block)
    let done = executed.load(Ordering::Relaxed);
    assert!(
        done >= N - 2048 && done < N,
        "drained {done} of {N} items; other blocks should have completed"
    );

    // the panicked launch never reached the merge, so the sim's clock is
    // untouched — the follow-up launch must be bit-identical to the same
    // launch on a fresh serial sim
    let run_clean = |sim: &mut Sim| {
        let out = GpuBuf::new(N, 0);
        sim.launch_det(N, Assign::ThreadPerItem, false, |ctx, i| {
            let w = skewed_work(i) as u32;
            ctx.atomic_add(&out, i, w);
        });
        (exact_bits(sim.elapsed_cycles()), out.to_vec())
    };
    let after_panic = run_clean(&mut sim);
    let fresh = run_clean(&mut Sim::new(titan_v()));
    assert_eq!(after_panic, fresh, "sim unusable after pooled panic");
}

/// `workers.min(grid_blocks)`: a launch with a single grid block must run
/// entirely on the calling thread, even when the worker setting is large —
/// no pool threads engage (and no lease is needed at all).
#[test]
fn single_block_launch_runs_on_caller_despite_workers() {
    let caller = std::thread::current().id();
    let out = GpuBuf::new(64, 0);
    let mut sim = Sim::new(titan_v());
    sim.set_workers(8);
    for _ in 0..4 {
        // 64 items at thread granularity fit one block on every device
        sim.launch_det(64, Assign::ThreadPerItem, false, |ctx, i| {
            assert_eq!(std::thread::current().id(), caller);
            ctx.atomic_add(&out, i, 1);
        });
    }
    assert!(out.to_vec().iter().all(|&v| v == 4));
}

/// `workers.min(grid_blocks)` with a pool engaged: an 8-worker sim given a
/// two-block grid must touch at most two distinct threads per launch.
#[test]
fn pooled_engagement_capped_by_grid_blocks() {
    use std::collections::HashSet;
    use std::sync::Mutex;

    let mut sim = Sim::new(rtx3090());
    sim.set_workers(8);
    // BlockPerItem: items == grid blocks, so two items is a two-block grid
    let out = GpuBuf::new(2, 0);
    for _ in 0..8 {
        let threads = Mutex::new(HashSet::new());
        sim.launch_det(2, Assign::BlockPerItem, false, |ctx, i| {
            if ctx.lane() == 0 {
                threads.lock().unwrap().insert(std::thread::current().id());
            }
            ctx.atomic_add(&out, i, 1);
        });
        let engaged = threads.lock().unwrap().len();
        assert!(
            engaged <= 2,
            "two-block launch engaged {engaged} threads (want <= grid_blocks)"
        );
    }
}
