//! Simple serial reference implementations (paper §4.1).
//!
//! Deliberately written in the most obviously-correct way — these are the
//! oracles every one of the thousand-plus parallel variants is checked
//! against, so clarity beats speed.

use indigo_graph::{Csr, NodeId, INF};
use std::collections::VecDeque;

/// Serial BFS: hop levels from `src` (`INF` for unreachable vertices).
pub fn bfs(g: &Csr, src: NodeId) -> Vec<u32> {
    let mut level = vec![INF; g.num_nodes()];
    if g.num_nodes() == 0 {
        return level;
    }
    let mut queue = VecDeque::new();
    level[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &u in g.neighbors(v) {
            if level[u as usize] == INF {
                level[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    level
}

/// Serial Dijkstra: weighted distances from `src` (`INF` unreachable).
pub fn sssp(g: &Csr, src: NodeId) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.num_nodes()];
    if g.num_nodes() == 0 {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u32, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let range = g.neighbor_range(v);
        for (off, &u) in g.neighbors(v).iter().enumerate() {
            let w = g.weights()[range.start + off];
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Serial connected components: labels each vertex with the minimum vertex
/// id in its component (the fixpoint of min-label propagation).
pub fn cc(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut label = vec![INF; n];
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != INF {
            continue;
        }
        // s is the smallest unvisited id, hence the minimum of its component
        label[s] = s as u32;
        stack.push(s as NodeId);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if label[u as usize] == INF {
                    label[u as usize] = s as u32;
                    stack.push(u);
                }
            }
        }
    }
    label
}

/// Deterministic 32-bit MIS priority hash for vertex `v` (shared by every
/// model/variant; the GPU codes store these in a device array).
#[inline]
pub fn mis_hash(v: NodeId, seed: u64) -> u32 {
    (indigo_graph::weights::mix64(seed ^ (v as u64 + 1)) >> 32) as u32
}

/// Total-order MIS priority: the 32-bit hash with the vertex id as a
/// tie-break. Higher priority wins the greedy selection.
#[inline]
pub fn mis_priority(v: NodeId, seed: u64) -> u64 {
    ((mis_hash(v, seed) as u64) << 32) | v as u64
}

/// Serial greedy MIS by descending priority — the unique "lexicographically
/// first by priority" maximal independent set that all parallel variants
/// converge to.
pub fn mis(g: &Csr, seed: u64) -> Vec<bool> {
    let n = g.num_nodes();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(mis_priority(v, seed)));
    let mut in_set = vec![false; n];
    let mut excluded = vec![false; n];
    for v in order {
        if !excluded[v as usize] {
            in_set[v as usize] = true;
            for &u in g.neighbors(v) {
                excluded[u as usize] = true;
            }
        }
    }
    in_set
}

/// Serial PageRank (pull, double-buffered) run to the same `(epsilon,
/// max_iters)` stopping rule as the parallel codes.
pub fn pagerank(g: &Csr, damping: f32, epsilon: f32, max_iters: usize) -> Vec<f32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f32;
    let mut rank = vec![1.0 / n as f32; n];
    let mut next = vec![0.0f32; n];
    for _ in 0..max_iters {
        let mut delta = 0.0f32;
        for v in 0..n as NodeId {
            let mut sum = 0.0f32;
            for &u in g.neighbors(v) {
                let du = g.degree(u).max(1) as f32;
                sum += rank[u as usize] / du;
            }
            let nv = base + damping * sum;
            delta += (nv - rank[v as usize]).abs();
            next[v as usize] = nv;
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < epsilon {
            break;
        }
    }
    rank
}

/// Serial triangle count: for every edge `(v, u)` with `v < u`, counts
/// common neighbors `w > u` (each triangle counted exactly once).
pub fn triangles(g: &Csr) -> u64 {
    let mut count = 0u64;
    for v in 0..g.num_nodes() as NodeId {
        for &u in g.neighbors(v) {
            if u <= v {
                continue;
            }
            count += intersect_above(g.neighbors(v), g.neighbors(u), u);
        }
    }
    count
}

/// Number of common elements of two sorted lists that are `> floor`.
pub fn intersect_above(a: &[NodeId], b: &[NodeId], floor: NodeId) -> u64 {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn bfs_on_path() {
        let g = toy::path(5);
        assert_eq!(bfs(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = toy::two_triangles();
        let l = bfs(&g, 0);
        assert_eq!(&l[..3], &[0, 1, 1]);
        assert!(l[3..].iter().all(|&x| x == INF));
    }

    #[test]
    fn sssp_diamond_shortest_route() {
        let g = toy::weighted_diamond();
        let d = sssp(&g, 0);
        assert_eq!(d, vec![0, 1, 4, 2, 3]);
    }

    #[test]
    fn sssp_equals_bfs_on_unit_weights() {
        let mut g = gen::gnp(60, 0.08, 11);
        g = {
            // give every edge weight 1 by building a weighted twin
            let mut b = indigo_graph::GraphBuilder::new_weighted(g.num_nodes());
            for (v, u, _) in g.iter_edges() {
                if v < u {
                    b.add_weighted_edge(v, u, 1);
                }
            }
            b.build("unit")
        };
        assert_eq!(sssp(&g, 0), bfs(&g, 0));
    }

    #[test]
    fn cc_two_triangles() {
        let g = toy::two_triangles();
        assert_eq!(cc(&g), vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn cc_isolated_vertices_are_own_components() {
        let g = indigo_graph::Csr::from_raw(vec![0, 0, 0], vec![], vec![], "iso2");
        assert_eq!(cc(&g), vec![0, 1]);
    }

    #[test]
    fn mis_is_independent_and_maximal() {
        let g = gen::gnp(120, 0.05, 3);
        let set = mis(&g, crate::MIS_SEED);
        for v in 0..g.num_nodes() as NodeId {
            if set[v as usize] {
                for &u in g.neighbors(v) {
                    assert!(!set[u as usize], "edge ({v},{u}) inside the set");
                }
            } else {
                assert!(
                    g.neighbors(v).iter().any(|&u| set[u as usize]),
                    "vertex {v} could be added: not maximal"
                );
            }
        }
    }

    #[test]
    fn mis_star_center_or_leaves() {
        let g = toy::star(10);
        let set = mis(&g, crate::MIS_SEED);
        let count = set.iter().filter(|&&b| b).count();
        if set[0] {
            assert_eq!(count, 1, "center excludes all leaves");
        } else {
            assert_eq!(count, 9, "all leaves");
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        let g = toy::star(20);
        let r = pagerank(
            &g,
            crate::PR_DAMPING,
            crate::PR_EPSILON,
            crate::PR_MAX_ITERS,
        );
        let sum: f32 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert!(r[0] > r[1] * 3.0, "hub must dominate: {} vs {}", r[0], r[1]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = toy::cycle(8);
        let r = pagerank(&g, crate::PR_DAMPING, 1e-7, 500);
        for &x in &r {
            assert!((x - 0.125).abs() < 1e-4, "{r:?}");
        }
    }

    #[test]
    fn triangles_counts() {
        assert_eq!(triangles(&toy::complete(4)), 4);
        assert_eq!(triangles(&toy::complete(5)), 10);
        assert_eq!(triangles(&toy::two_triangles()), 2);
        assert_eq!(triangles(&toy::cycle(5)), 0);
        assert_eq!(triangles(&toy::star(10)), 0);
    }

    #[test]
    fn intersect_above_basics() {
        assert_eq!(intersect_above(&[1, 2, 5, 9], &[2, 5, 7, 9], 2), 2); // 5, 9
        assert_eq!(intersect_above(&[1, 2], &[3, 4], 0), 0);
        assert_eq!(intersect_above(&[], &[1], 0), 0);
    }

    #[test]
    fn mis_priorities_are_distinct() {
        let mut ps: Vec<u64> = (0..1000u32).map(|v| mis_priority(v, 1)).collect();
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), 1000);
    }
}
