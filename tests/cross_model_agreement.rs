//! Cross-crate integration: the three programming models must agree.
//!
//! Every algorithm's output is model-independent (the styles change *how*
//! the fixpoint is computed, never *which* fixpoint). This runs one
//! representative variant per model per algorithm on every suite input and
//! compares outputs across models directly, on top of the serial-oracle
//! verification.

use indigo2::core::{run_variant, verify, GraphInput, Output, Target};
use indigo2::gpusim::titan_v;
use indigo2::graph::gen::{suite_graph, Scale, SUITE_GRAPHS};
use indigo2::styles::{Algorithm, Model, StyleConfig};

fn target_for(model: Model) -> Target {
    match model {
        Model::Cuda => Target::gpu(titan_v()),
        _ => Target::cpu(3),
    }
}

fn ranks_close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 4e-3)
}

#[test]
fn all_models_agree_on_every_suite_input() {
    for which in SUITE_GRAPHS {
        let input = GraphInput::new(suite_graph(which, Scale::Tiny));
        for algo in Algorithm::ALL {
            let outputs: Vec<Output> = Model::ALL
                .iter()
                .map(|&model| {
                    let cfg = StyleConfig::baseline(algo, model);
                    let r = run_variant(&cfg, &input, &target_for(model));
                    verify::check(&cfg, &input, &r.output)
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", cfg.name(), input.name()));
                    r.output
                })
                .collect();
            for pair in outputs.windows(2) {
                match (&pair[0], &pair[1]) {
                    (Output::Ranks(a), Output::Ranks(b)) => {
                        assert!(ranks_close(a, b), "{algo:?} ranks diverge on {which:?}")
                    }
                    (a, b) => assert_eq!(a, b, "{algo:?} outputs diverge on {which:?}"),
                }
            }
        }
    }
}

#[test]
fn iteration_counts_are_positive_and_bounded() {
    let input = GraphInput::new(suite_graph(
        indigo2::graph::gen::SuiteGraph::RoadMap,
        Scale::Tiny,
    ));
    for model in Model::ALL {
        let cfg = StyleConfig::baseline(Algorithm::Sssp, model);
        let r = run_variant(&cfg, &input, &target_for(model));
        assert!(r.iterations >= 1);
        // Bellman-Ford style relaxation cannot exceed |V| rounds + slack
        assert!(
            r.iterations <= input.num_nodes() + 2,
            "{model:?}: {}",
            r.iterations
        );
    }
}
