//! Property-based tests of the GPU simulator's cost model and launcher.

use indigo_gpusim::{rtx3090, titan_v, Assign, BufKind, GpuBuf, ReduceStyle, Sim};
use proptest::prelude::*;

fn assigns() -> impl Strategy<Value = Assign> {
    prop_oneof![
        Just(Assign::ThreadPerItem),
        Just(Assign::WarpPerItem),
        Just(Assign::BlockPerItem),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Functional exactness: every item is processed exactly once under any
    /// assignment/persistence combination.
    #[test]
    fn coverage_is_exact(items in 1usize..3000, assign in assigns(), persistent: bool) {
        let mut sim = Sim::new(rtx3090());
        let hits = GpuBuf::new(items, 0);
        sim.launch(items, assign, persistent, |ctx, i| {
            if ctx.lane() == 0 {
                ctx.atomic_add(&hits, i, 1);
            }
        });
        prop_assert!(hits.to_vec().iter().all(|&h| h == 1));
    }

    /// Cost monotonicity: more items never cost fewer cycles.
    #[test]
    fn cost_monotone_in_items(items in 32usize..2000, extra in 1usize..2000, assign in assigns()) {
        let run = |n: usize| {
            let data = GpuBuf::new(n, 0);
            let mut sim = Sim::new(titan_v());
            sim.launch(n, assign, false, |ctx, i| {
                ctx.ld(&data, i);
            });
            sim.elapsed_cycles()
        };
        prop_assert!(run(items + extra) >= run(items));
    }

    /// Reductions are exact for arbitrary contribution patterns in every
    /// style, under every assignment.
    #[test]
    fn reductions_exact(
        values in proptest::collection::vec(0u64..1000, 1..500),
        assign in assigns(),
        style_idx in 0usize..3,
    ) {
        let style = [ReduceStyle::GlobalAdd, ReduceStyle::BlockAdd, ReduceStyle::ReductionAdd]
            [style_idx];
        let expect: u64 = values.iter().sum();
        let vals = values.clone();
        let mut sim = Sim::new(rtx3090());
        let total = sim.launch_reduce_u64(
            vals.len(),
            assign,
            false,
            style,
            BufKind::Atomic,
            |ctx, i| {
                if ctx.lane() == 0 {
                    ctx.reduce_add_u64(vals[i]);
                }
            },
        );
        prop_assert_eq!(total, expect);
    }

    /// CudaAtomic-declared buffers never cost less than Atomic-declared
    /// ones for the same access sequence.
    #[test]
    fn cuda_atomic_never_cheaper(items in 64usize..1500) {
        let run = |kind: BufKind| {
            let data = GpuBuf::new(items, 0).with_kind(kind);
            let mut sim = Sim::new(titan_v());
            sim.launch(items, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&data, i);
                ctx.atomic_add(&data, (i + 1) % items, v % 7);
            });
            sim.elapsed_cycles()
        };
        prop_assert!(run(BufKind::CudaAtomic) >= run(BufKind::Atomic));
    }

    /// Determinism: identical launches report identical cycles and state.
    #[test]
    fn launches_deterministic(items in 1usize..800, assign in assigns(), persistent: bool) {
        let run = || {
            let data = GpuBuf::new(items, 7).with_kind(BufKind::Atomic);
            let mut sim = Sim::new(rtx3090());
            sim.launch(items, assign, persistent, |ctx, i| {
                let v = ctx.ld(&data, i);
                ctx.atomic_min(&data, (i * 13) % items, v);
            });
            (sim.elapsed_cycles(), data.to_vec())
        };
        prop_assert_eq!(run(), run());
    }
}
