//! Deterministic fault injection for the simulator (DESIGN.md §7.3).
//!
//! The harness's resilience machinery — cell isolation, watchdog timeouts,
//! journal/resume — must itself be testable in CI, which requires faults
//! that strike *reproducibly*: the same launch of the same cell, every run.
//! A [`FaultPlan`] armed on a [`crate::Sim`] does exactly that. Faults
//! trigger by launch ordinal (the simulator's launch counter is
//! deterministic), so `panic@launch 2` hits the same kernel of the same
//! algorithm on every run and every `--resume`.
//!
//! Two fault kinds live here, at the launch boundary where the simulator
//! can inject them deterministically:
//!
//! * [`FaultKind::Panic`] — unwind with a recognizable message, exercising
//!   the harness's `catch_unwind` isolation (`CellOutcome::Crashed`).
//! * [`FaultKind::Stall`] — spin at the launch boundary, consuming wall
//!   clock but no simulated cycles, until the cell's [`CancelToken`] fires;
//!   exercises the watchdog → `CellOutcome::TimedOut` path. A stall is only
//!   injectable when a token is armed — without one nothing could ever end
//!   the spin, so the simulator refuses by panicking immediately.
//!
//! Output *corruption* (→ `CellOutcome::WrongAnswer`) is injected by the
//! harness after the run instead: flipping an output value post-hoc is
//! equivalent for testing the quarantine path and keeps the simulator's
//! buffers honest.

use indigo_cancel::CancelToken;

/// What an injected fault does when it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an `"injected fault"` message at the launch boundary.
    Panic,
    /// Spin (wall clock only, no simulated cycles) until the cancel token
    /// fires, then unwind as a cancellation.
    Stall,
}

impl FaultKind {
    /// Short parse/display label (`"panic"` / `"stall"`).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
        }
    }
}

/// A deterministic fault armed on one simulator instance.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// What happens.
    pub kind: FaultKind,
    /// The launch ordinal (0-based, in `Sim::launches` order) at which the
    /// fault triggers.
    pub at_launch: usize,
}

impl FaultPlan {
    /// Fault of `kind` at launch ordinal `at_launch`.
    pub fn new(kind: FaultKind, at_launch: usize) -> FaultPlan {
        FaultPlan { kind, at_launch }
    }

    /// Executes the fault if `launch` is the armed ordinal. Never returns
    /// normally when it triggers.
    pub(crate) fn maybe_trigger(&self, launch: usize, cancel: Option<&CancelToken>) {
        if launch != self.at_launch {
            return;
        }
        match self.kind {
            FaultKind::Panic => panic!("injected fault: panic at launch {launch}"),
            FaultKind::Stall => {
                let Some(token) = cancel else {
                    panic!("injected fault: stall at launch {launch} without a cancel token");
                };
                loop {
                    token.checkpoint();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fault_only_triggers_at_its_ordinal() {
        let plan = FaultPlan::new(FaultKind::Panic, 2);
        plan.maybe_trigger(0, None);
        plan.maybe_trigger(1, None);
        let err = std::panic::catch_unwind(|| plan.maybe_trigger(2, None)).unwrap_err();
        assert!(indigo_cancel::payload_text(err.as_ref()).contains("injected fault"));
    }

    #[test]
    fn stall_without_token_panics_instead_of_hanging() {
        let plan = FaultPlan::new(FaultKind::Stall, 0);
        let err = std::panic::catch_unwind(|| plan.maybe_trigger(0, None)).unwrap_err();
        assert!(indigo_cancel::payload_text(err.as_ref()).contains("without a cancel token"));
    }

    #[test]
    fn stall_ends_as_cancellation_when_token_fires() {
        let plan = FaultPlan::new(FaultKind::Stall, 0);
        let token = CancelToken::new();
        let t2 = token.clone();
        let firer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            t2.fire("watchdog");
        });
        let err = std::panic::catch_unwind(|| plan.maybe_trigger(0, Some(&token))).unwrap_err();
        firer.join().unwrap();
        assert!(indigo_cancel::as_cancelled(err.as_ref()).is_some());
    }
}
