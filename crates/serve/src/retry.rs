//! Retry policy: capped exponential backoff with deterministic jitter
//! (DESIGN.md §7.8).
//!
//! Transiently failed cells (crashed or timed out under an injected fault)
//! are re-run at most `max_attempts` times. Retries are idempotent by
//! construction — cells are keyed by their journal fingerprint, completed
//! cells are cached and never re-run, and only the missing ones are
//! re-planned. Jitter is derived from the fingerprint and attempt number
//! (no RNG state), so a chaos run's retry schedule is reproducible.

use indigo_harness::journal::fnv1a64;
use std::time::Duration;

/// Retry tuning.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before attempt 2 (doubles per attempt).
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
        }
    }
}

impl RetryPolicy {
    /// Backoff before re-running attempt number `attempt` (1-based: the
    /// sleep after attempt 1 is `backoff(fp, 1)`): `base · 2^(attempt−1)`
    /// capped at `cap`, then "equal jitter" — half the window fixed, half
    /// hashed from `(fp, attempt)` so concurrent retries of different
    /// cells decorrelate without randomness.
    pub fn backoff(&self, fp: u64, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16))
            .min(self.cap);
        let half = exp.as_micros() as u64 / 2;
        if half == 0 {
            return exp;
        }
        let mut key = [0u8; 12];
        key[..8].copy_from_slice(&fp.to_le_bytes());
        key[8..].copy_from_slice(&attempt.to_le_bytes());
        let jitter = fnv1a64(&key) % (half + 1);
        Duration::from_micros(half + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_within_the_jitter_window() {
        let p = RetryPolicy::default();
        for attempt in 1..=6u32 {
            let exp = p
                .base
                .saturating_mul(1u32 << (attempt - 1))
                .min(p.cap)
                .as_micros() as u64;
            for fp in [0u64, 0xdead_beef, u64::MAX] {
                let b = p.backoff(fp, attempt);
                assert_eq!(b, p.backoff(fp, attempt), "deterministic");
                let us = b.as_micros() as u64;
                assert!(us >= exp / 2, "attempt {attempt}: {us} < {}", exp / 2);
                assert!(us <= exp, "attempt {attempt}: {us} > {exp}");
            }
        }
        // distinct fingerprints decorrelate
        let a = p.backoff(1, 2);
        let b = p.backoff(2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let p = RetryPolicy::default();
        let b = p.backoff(42, u32::MAX);
        assert!(b <= p.cap);
    }
}
