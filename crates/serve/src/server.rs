//! The server proper: acceptor, bounded admission queue, worker pool,
//! routing, and crash-only shutdown (DESIGN.md §7.8).
//!
//! Topology: one acceptor thread stamps each connection with its arrival
//! time and pushes it onto the bounded [`Admission`] queue — when the queue
//! is full the acceptor itself answers `429` with `Retry-After` advice and
//! closes, so overload never grows an unbounded backlog. Worker threads pop
//! connections, check the deadline the request has *already* spent waiting
//! in the queue, and route. Every worker turn is wrapped in
//! `catch_unwind`: a panicking request burns one connection, never a
//! worker, never the process.

use crate::admission::{Admission, PushError};
use crate::cache::ResultCache;
use crate::config::ServerConfig;
use crate::engine::{self, EngineCtx, Shard};
use crate::http::{read_request, Request, Response};
use crate::json;
use crate::stats::Stats;
use indigo_graph::gen::SUITE_GRAPHS;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection stream deadlines: a client that stops reading or writing
/// cannot pin a worker forever.
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

struct Conn {
    stream: TcpStream,
    arrived: Instant,
}

struct Inner {
    cfg: ServerConfig,
    cache: ResultCache,
    shards: HashMap<&'static str, Shard>,
    queue: Admission<Conn>,
    stats: Stats,
    shutdown: AtomicBool,
}

/// A running server; dropping it shuts down and joins every thread.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, replays the journal, and spawns the acceptor + worker pool.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = ResultCache::open(cfg.journal.as_deref())?;
        let mut shards = HashMap::new();
        for g in SUITE_GRAPHS {
            shards.insert(g.label(), Shard::new(g, cfg.breaker));
        }
        let queue = Admission::new(cfg.queue);
        let workers_n = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            cache,
            shards,
            queue,
            stats: Stats::new(),
            shutdown: AtomicBool::new(false),
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&inner, &listener))?
        };
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))?,
            );
        }
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time stats snapshot.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Cells recovered from the journal at startup.
    pub fn recovered_cells(&self) -> usize {
        self.inner.cache.recovered
    }

    /// Stops accepting, drains in-flight work, joins every thread.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the acceptor's blocking `accept()` with a throwaway
        // connection; harmless if it already saw the flag
        let _ = TcpStream::connect(self.addr);
        self.inner.queue.close();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(inner: &Inner, listener: &TcpListener) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        indigo_obs::Counter::ServeRequests.incr();
        let conn = Conn {
            stream,
            arrived: Instant::now(),
        };
        match inner.queue.try_push(conn) {
            Ok(()) => {}
            Err(PushError::Full(conn)) => shed(inner, conn.stream),
            Err(PushError::Closed(_)) => break,
        }
    }
}

/// Load shedding: answered by the *acceptor* so a saturated worker pool
/// can't delay the 429 itself.
fn shed(inner: &Inner, mut stream: TcpStream) {
    use std::io::Read;
    inner.stats.shed.fetch_add(1, Ordering::Relaxed);
    indigo_obs::Counter::ServeShed.incr();
    let secs = inner.stats.retry_after_secs(inner.queue.depth());
    let resp = Response::json(
        429,
        format!(
            "{{\"status\":\"shed\",\"error\":\"admission queue full\",\"retry_after_s\":{secs}}}"
        ),
    )
    .with_retry_after(secs);
    // drain the request first: closing a socket with unread bytes makes the
    // kernel send RST, which destroys the 429 before the client reads it.
    // The timeout is short — a client too slow to finish its request head
    // forfeits the body of the shed response, not the acceptor's time
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(n) if n > 0 => {
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            _ => break,
        }
    }
    let _ = stream.write_all(&resp.to_bytes());
}

fn worker_loop(inner: &Inner) {
    while let Some(conn) = inner.queue.pop() {
        // a panic anywhere in request handling burns this connection only
        let _ = catch_unwind(AssertUnwindSafe(|| handle(inner, conn)));
    }
}

fn handle(inner: &Inner, conn: Conn) {
    let Conn {
        mut stream,
        arrived,
    } = conn;
    let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let resp = match read_request(&mut stream) {
        Ok(req) => route(inner, &req, arrived),
        Err(e) => {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::json(
                400,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&e)
                ),
            )
        }
    };
    if (200..300).contains(&resp.status) {
        inner.stats.ok.fetch_add(1, Ordering::Relaxed);
    }
    let _ = resp.write_to(&mut stream);
    let micros = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
    inner.stats.record_latency(micros);
}

fn route(inner: &Inner, req: &Request, arrived: Instant) -> Response {
    if req.method != "GET" {
        inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            405,
            "{\"status\":\"bad-request\",\"error\":\"only GET is supported\"}",
        );
    }
    let path = req.path.as_str();
    match path {
        "/health" => health(inner),
        "/stats" => Response::json(200, inner.stats.snapshot().to_json()),
        "/cell" => cell(inner, req),
        "/run" | "/sweep" => run(inner, req, arrived, path == "/sweep"),
        _ => {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            Response::json(
                404,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&format!(
                        "no route `{path}` (/health /stats /cell /run /sweep)"
                    ))
                ),
            )
        }
    }
}

fn health(inner: &Inner) -> Response {
    let mut breakers: Vec<String> = inner
        .shards
        .iter()
        .map(|(label, s)| {
            format!(
                "{}:{}",
                json::str_lit(label),
                json::str_lit(s.breaker.state_label())
            )
        })
        .collect();
    breakers.sort(); // deterministic body
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"queue_depth\":{},\"cached_cells\":{},\
             \"recovered_cells\":{},\"skipped_journal_lines\":{},\"breakers\":{{{}}}}}",
            inner.queue.depth(),
            inner.cache.len(),
            inner.cache.recovered,
            inner.cache.skipped,
            breakers.join(",")
        ),
    )
}

fn cell(inner: &Inner, req: &Request) -> Response {
    let Some(fp_hex) = req.param("fp") else {
        inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            400,
            "{\"status\":\"bad-request\",\"error\":\"missing `fp` parameter (hex fingerprint)\"}",
        );
    };
    let Ok(fp) = u64::from_str_radix(fp_hex.trim_start_matches("0x"), 16) else {
        inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            400,
            format!(
                "{{\"status\":\"bad-request\",\"error\":{}}}",
                json::str_lit(&format!("`fp` is not hex: `{fp_hex}`"))
            ),
        );
    };
    match inner.cache.get(fp) {
        Some(c) => {
            inner.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            indigo_obs::Counter::ServeCacheHits.incr();
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"cached\":true,\"fp\":\"{fp:016x}\",\
                     \"variant\":{},\"graph\":{},\"target\":{},\"geps\":{},\
                     \"geps_bits\":\"{:016x}\",\"iterations\":{}}}",
                    json::str_lit(&c.variant),
                    json::str_lit(&c.graph),
                    json::str_lit(&c.target),
                    json::num(c.geps()),
                    c.geps_bits,
                    c.iterations
                ),
            )
        }
        None => Response::json(404, format!("{{\"status\":\"miss\",\"fp\":\"{fp:016x}\"}}")),
    }
}

fn run(inner: &Inner, req: &Request, arrived: Instant, sweep: bool) -> Response {
    let q = match engine::parse_query(req, &inner.cfg, sweep) {
        Ok(q) => q,
        Err(e) => {
            inner.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Response::json(
                400,
                format!(
                    "{{\"status\":\"bad-request\",\"error\":{}}}",
                    json::str_lit(&e)
                ),
            );
        }
    };
    // the deadline started at accept: queue wait already spent part of it
    let deadline_at = arrived + q.deadline;
    if deadline_at.saturating_duration_since(Instant::now()) < Duration::from_millis(5) {
        inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        indigo_obs::Counter::ServeTimeouts.incr();
        return Response::json(
            504,
            format!(
                "{{\"status\":\"timeout\",\"error\":{}}}",
                json::str_lit(&format!(
                    "deadline of {} ms expired while queued",
                    q.deadline.as_millis()
                ))
            ),
        );
    }
    let shard = &inner.shards[q.graph.label()];
    let ctx = EngineCtx {
        cfg: &inner.cfg,
        cache: &inner.cache,
        stats: &inner.stats,
    };
    engine::execute(&ctx, shard, &q, deadline_at)
}
