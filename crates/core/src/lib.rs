//! # indigo-core
//!
//! The Indigo2 style-variant suite in Rust: the paper's six graph problems
//! (Table 1) implemented in **every applicable combination** of the 13
//! parallelization/implementation styles (§2), for the three programming
//! models (CUDA-simulated, OpenMP-analog, C++-threads-analog).
//!
//! Like the paper's generated codes, variants are not hand-written one by
//! one: each algorithm has one *style-parameterized* kernel family per model
//! and the [`runner`] dispatches a fully-specified
//! [`indigo_styles::StyleConfig`] onto it. Three of the six problems — BFS,
//! SSSP, and CC — are monotonic min-relaxation computations that share a
//! relaxation engine ([`cpu`], [`gpu`]), exactly as they share their listing
//! skeletons in the paper; MIS, PR, and TC have their own kernels.
//!
//! Every variant's output is checked against a serial reference
//! implementation ([`serial`], [`verify`]), the Rust analog of the paper's
//! built-in verification (§4.1: "each code verifies its computed solution by
//! comparing it to the solution of a simple serial algorithm").
//!
//! ```
//! use indigo_core::{input::GraphInput, runner, Target};
//! use indigo_graph::gen;
//! use indigo_styles::{Algorithm, Model, StyleConfig};
//!
//! let input = GraphInput::new(gen::grid2d(16, 16));
//! let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
//! let result = runner::run_variant(&cfg, &input, &Target::cpu(2));
//! assert!(indigo_core::verify::check(&cfg, &input, &result.output).is_ok());
//! ```

pub mod cpu;
pub mod gpu;
pub mod input;
pub mod output;
pub mod runner;
pub mod serial;
pub mod verify;

pub use input::GraphInput;
pub use output::Output;
pub use runner::{
    run_gpu, run_gpu_supervised, run_gpu_with, run_variant, run_variant_supervised, RunResult,
    SimStats, Supervision, Target,
};

/// Source vertex used by BFS and SSSP across the whole suite (the paper does
/// not publish its choice; vertex 0 is deterministic and, on the grid/road
/// inputs, a worst-case corner).
pub const SOURCE: u32 = 0;

/// Seed for the MIS random priorities (shared by all models so every variant
/// computes the same maximal independent set).
pub const MIS_SEED: u64 = 0x004d_4953; // "MIS"

/// PageRank damping factor (the standard 0.85).
pub const PR_DAMPING: f32 = 0.85;

/// PageRank convergence threshold on the per-iteration L1 delta.
pub const PR_EPSILON: f32 = 1e-4;

/// PageRank iteration cap (keeps non-converging runs bounded).
pub const PR_MAX_ITERS: usize = 100;
