//! # indigo-harness
//!
//! The measurement and reporting harness that regenerates every table and
//! figure of the paper's evaluation (§4.5, §5):
//!
//! * [`matrix`] — runs a (filtered) variant × input × target matrix,
//!   collecting verified [`Measurement`]s in the paper's giga-edges-per-
//!   second metric (median of N repetitions for the wall-clocked CPU
//!   models; the GPU simulator is deterministic, so one run suffices);
//! * [`stats`] — quantile/letter-value summaries (the textual analog of the
//!   paper's boxen plots), geometric means, and Pearson correlation;
//! * [`ratios`] — the paper's "all other styles fixed" pairwise ratio
//!   machinery (§5 intro), built on [`indigo_styles::StyleConfig::peer_key`];
//! * [`schedule`] — the two-level parallel run scheduler: GPU-sim cells fan
//!   out across host threads (simulated cycles are host-load independent),
//!   CPU wall-clock cells keep the machine to themselves, and results stay
//!   bit-identical to a serial run at any `--jobs` setting;
//! * [`outcome`] — the fault-tolerant run model (DESIGN.md §7.3): every
//!   cell ends in a structured [`CellOutcome`] (ok / crashed / timed-out /
//!   wrong-answer) instead of taking the sweep down, under a configurable
//!   [`Resilience`] policy (watchdog timeouts, cycle budgets, deterministic
//!   fault injection);
//! * [`journal`] — the append-only JSONL checkpoint journal keyed by
//!   deterministic cell fingerprints, giving `--resume` bit-exact replay of
//!   completed cells after a crash or SIGKILL;
//! * [`sanitize`] — the style-conformance sanitizer runner (DESIGN.md
//!   §7.6): replays plan cells with the `indigo-exec` conflict collector
//!   armed and judges observed races/atomicity against what each variant's
//!   style labels promise (needs the `sanitize` feature to observe
//!   anything);
//! * [`experiments`] — one module per table/figure, each producing a
//!   [`report::Report`];
//! * the `indigo-exp` binary — CLI driver that writes reports and CSVs
//!   under `results/`.

pub mod advise;
pub mod experiments;
pub mod journal;
pub mod matrix;
pub mod outcome;
pub mod ratios;
pub mod report;
pub mod sanitize;
pub mod schedule;
pub mod stats;

pub use matrix::{Measurement, RunPlan, TargetSpec};
pub use outcome::{
    CellFaultKind, CellOutcome, CellRecord, FaultSpec, MatrixRun, Resilience, RunSummary,
};
pub use report::Report;
pub use schedule::{ProgressEvent, RunOptions, RunPhase};
