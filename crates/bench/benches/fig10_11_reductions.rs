//! Figs 10/11 bench: the three GPU reduction styles (10) and the three CPU
//! reduction styles (11) on PR and TC.

use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, CpuReduction, GpuReduction, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let cop = input(SuiteGraph::CoPapers);
    for algo in [Algorithm::Pr, Algorithm::Tc] {
        for red in GpuReduction::ALL {
            let mut cfg = StyleConfig::baseline(algo, Model::Cuda);
            cfg.gpu_reduction = Some(red);
            bench_gpu_variant(
                &mut c,
                "fig10_gpu_reductions",
                &format!("{}/{}", algo.label(), red.label()),
                &cfg,
                &cop,
                rtx3090(),
            );
        }
        for red in CpuReduction::ALL {
            let mut cfg = StyleConfig::baseline(algo, Model::Omp);
            cfg.cpu_reduction = Some(red);
            bench_cpu_variant(
                &mut c,
                "fig11_cpu_reductions",
                &format!("{}/{}", algo.label(), red.label()),
                &cfg,
                &cop,
                4,
            );
        }
    }
    c.final_summary();
}
