//! GPU PageRank (the CUDA analog of [`crate::cpu::pr`]).
//!
//! Pull variants use the simulator's cooperative launch: lanes stride the
//! neighbor loop accumulating into the group scratch (the warp-shuffle /
//! shared-memory partial of a real kernel) and the epilogue finalizes the
//! vertex. Push variants run the three-launch zero/scatter/gather shape
//! with `atomicAdd(float*)` scatters. The per-iteration convergence delta is
//! reduced with the configured §2.10.1 style. PR never uses CudaAtomic
//! (no float support, §5.1), so all buffers are classic-atomic class.

use super::{assign_of, persistent_of, DeviceGraph};
use indigo_gpusim::{Assign, BufKind, GpuBufF32, LaneCtx, ReduceStyle, Sim};
use indigo_styles::{Determinism, Flow, GpuReduction, StyleConfig};

/// Maps the style enum onto the simulator's reduction plumbing.
fn reduce_style_of(cfg: &StyleConfig) -> ReduceStyle {
    match cfg
        .gpu_reduction
        .expect("GPU PR variants carry a reduction style")
    {
        GpuReduction::GlobalAdd => ReduceStyle::GlobalAdd,
        GpuReduction::BlockAdd => ReduceStyle::BlockAdd,
        GpuReduction::ReductionAdd => ReduceStyle::ReductionAdd,
    }
}

/// Runs the PR variant `cfg`; returns ranks and the iteration count.
pub fn run(cfg: &StyleConfig, dg: &DeviceGraph, sim: &mut Sim) -> (Vec<f32>, usize) {
    let n = dg.n;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let assign = assign_of(cfg);
    let persistent = persistent_of(cfg);
    let flow = cfg.flow.expect("PR has push and pull variants");
    let det = cfg.determinism == Determinism::Deterministic;
    let style = reduce_style_of(cfg);
    let damping = crate::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;

    let rank = GpuBufF32::new(n, 1.0 / n as f32).with_kind(BufKind::Atomic);
    let aux =
        (det || flow == Flow::Push).then(|| GpuBufF32::new(n, 0.0).with_kind(BufKind::Atomic));

    // degree via the row array (two coalescing-friendly loads)
    let degree = |ctx: &mut LaneCtx, v: u32| -> f32 {
        let beg = ctx.ld(&dg.row, v as usize);
        let end = ctx.ld(&dg.row, v as usize + 1);
        (end - beg).max(1) as f32
    };

    let mut iterations = 0usize;
    while iterations < crate::PR_MAX_ITERS {
        iterations += 1;
        let delta = match flow {
            Flow::Pull => {
                let write = aux.as_ref().unwrap_or(&rank);
                let kernel = |ctx: &mut LaneCtx, vi: usize| {
                    let v = vi as u32;
                    let beg = ctx.ld(&dg.row, vi) as usize;
                    let end = ctx.ld(&dg.row, vi + 1) as usize;
                    let _ = v;
                    let lanes = ctx.lane_count();
                    let mut i = beg + ctx.lane();
                    let mut partial = 0.0f32;
                    while i < end {
                        let u = ctx.ld(&dg.nbr, i);
                        let du = degree(ctx, u);
                        partial += ctx.ld_f32(&rank, u as usize) / du;
                        i += lanes;
                    }
                    ctx.scratch_add_f32(partial);
                };
                let epilogue = |ctx: &mut LaneCtx, vi: usize| {
                    let nv = base + damping * ctx.group_f32();
                    let old = ctx.ld_f32(&rank, vi);
                    ctx.reduce_add_f32((nv - old).abs());
                    ctx.st_f32(write, vi, nv);
                };
                let reduce = Some((style, BufKind::Atomic));
                // The deterministic variant double-buffers: it reads the
                // stable `rank` and writes only its own slot of `aux`, so
                // its trace is block-order invariant. The nondeterministic
                // variant reads `rank` while other blocks overwrite it —
                // the very races it embraces — and must stay serial.
                let d = if det {
                    sim.launch_coop_det(n, assign, persistent, reduce, kernel, epilogue)
                } else {
                    sim.launch_coop(n, assign, persistent, reduce, kernel, epilogue)
                };
                if let Some(w) = &aux {
                    // publish the deterministic buffer back into `rank`
                    // (slot-private copy: order-invariant)
                    sim.launch_det(n, Assign::ThreadPerItem, false, |ctx, i| {
                        let v = ctx.ld_f32(w, i);
                        ctx.st_f32(&rank, i, v);
                    });
                }
                d.1
            }
            Flow::Push => {
                let scatter = aux.as_ref().expect("push PR double-buffers");
                // zero fill is slot-private: order-invariant
                sim.launch_det(n, Assign::ThreadPerItem, false, |ctx, i| {
                    ctx.st_f32(scatter, i, 0.0);
                });
                // the scatter's atomicAdd(float*) sums depend on arrival
                // order (f32 adds don't commute bitwise) — serial only
                sim.launch(n, assign, persistent, |ctx, vi| {
                    let v = vi as u32;
                    let dv = degree(ctx, v);
                    let contrib = ctx.ld_f32(&rank, vi) / dv;
                    let beg = ctx.ld(&dg.row, vi) as usize;
                    let end = ctx.ld(&dg.row, vi + 1) as usize;
                    let lanes = ctx.lane_count();
                    let mut i = beg + ctx.lane();
                    while i < end {
                        let u = ctx.ld(&dg.nbr, i);
                        ctx.atomic_add_f32(scatter, u as usize, contrib);
                        i += lanes;
                    }
                });
                // gather reads the settled scatter buffer and writes its
                // own rank slot: order-invariant
                sim.launch_reduce_f32_det(
                    n,
                    Assign::ThreadPerItem,
                    false,
                    style,
                    BufKind::Atomic,
                    |ctx, vi| {
                        let nv = base + damping * ctx.ld_f32(scatter, vi);
                        let old = ctx.ld_f32(&rank, vi);
                        ctx.reduce_add_f32((nv - old).abs());
                        ctx.st_f32(&rank, vi, nv);
                    },
                )
            }
        };
        if delta < crate::PR_EPSILON {
            break;
        }
    }
    (rank.to_vec(), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_gpusim::titan_v;
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 2e-3)
    }

    #[test]
    fn all_gpu_pr_variants_match_reference() {
        let graphs = vec![toy::star(12), toy::cycle(7), gen::gnp(50, 0.1, 4)];
        for g in graphs {
            let input = GraphInput::new(g);
            let dg = DeviceGraph::upload(&input);
            let expect = serial::pagerank(
                &input.csr,
                crate::PR_DAMPING,
                crate::PR_EPSILON,
                crate::PR_MAX_ITERS,
            );
            for cfg in enumerate::variants(Algorithm::Pr, Model::Cuda) {
                let mut sim = Sim::new(titan_v());
                let (got, iters) = run(&cfg, &dg, &mut sim);
                assert!(iters >= 1);
                assert!(close(&got, &expect), "{} on {}", cfg.name(), input.name());
            }
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Pr, Model::Cuda);
        let mut sim = Sim::new(titan_v());
        let (ranks, iters) = run(&cfg, &dg, &mut sim);
        assert!(ranks.is_empty());
        assert_eq!(iters, 0);
    }
}
