//! Optimized SSSP baselines.
//!
//! * CPU: delta-stepping (Meyer & Sanders) — Lonestar's approach of
//!   processing vertices in ascending-distance priority buckets.
//! * GPU: a near–far worklist split — Gardenia's "two extra arrays" scheme
//!   the paper describes in §5.17: relaxations below the moving threshold go
//!   to the near pile processed now, the rest to the far pile processed
//!   when the threshold advances.

use indigo_core::GraphInput;
use indigo_exec::sync::fetch_min;
use indigo_exec::Schedule;
use indigo_gpusim::{Assign, Device, GpuBuf, Sim};
use indigo_graph::{NodeId, INF};
use std::sync::atomic::{AtomicU32, Ordering};

/// Bucket width for delta-stepping / threshold step for near–far
/// (synthetic weights are 1..=255; 64 gives a handful of buckets per wave).
const DELTA: u32 = 64;

/// CPU delta-stepping. Returns `(distances, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize, source: NodeId) -> (Vec<u32>, f64) {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    if n == 0 {
        return (Vec::new(), start.elapsed().as_secs_f64());
    }
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut buckets: Vec<Vec<u32>> = vec![vec![source]];
    let mut current = 0usize;
    while current < buckets.len() {
        // settle the current bucket to a fixpoint (light-edge reinsertions)
        while !buckets[current].is_empty() {
            let active = std::mem::take(&mut buckets[current]);
            let pushed: Vec<std::sync::Mutex<Vec<(usize, u32)>>> = (0..pool.num_threads())
                .map(|_| Default::default())
                .collect();
            pool.parallel_for(active.len(), Schedule::Default, |ai, tid| {
                let v = active[ai];
                let dv = dist[v as usize].load(Ordering::Relaxed);
                if dv == INF || (dv / DELTA) as usize != current {
                    return; // stale entry: v settled in an earlier bucket
                }
                let range = g.neighbor_range(v);
                for (off, &u) in g.neighbors(v).iter().enumerate() {
                    let w = g.weights()[range.start + off];
                    let nd = dv + w;
                    if fetch_min(&dist[u as usize], nd) > nd {
                        pushed[tid].lock().unwrap().push(((nd / DELTA) as usize, u));
                    }
                }
            });
            for per_thread in &pushed {
                for &(b, u) in per_thread.lock().unwrap().iter() {
                    if b >= buckets.len() {
                        buckets.resize(b + 1, Vec::new());
                    }
                    buckets[b].push(u);
                }
            }
        }
        current += 1;
    }
    let out = dist.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    (out, start.elapsed().as_secs_f64())
}

/// Simulated-GPU near–far SSSP. Returns `(distances, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device, source: NodeId) -> (Vec<u32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    let dist = GpuBuf::new(n, INF).with_kind(indigo_gpusim::BufKind::Atomic);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    dist.host_write(source as usize, 0);

    let cap = 4 * dg.m + 64;
    let near = GpuBuf::new(cap, 0);
    let near_size = GpuBuf::new(1, 1).with_kind(indigo_gpusim::BufKind::Atomic);
    let far = GpuBuf::new(cap, 0);
    let far_size = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    let spill = GpuBuf::new(cap, 0);
    let spill_size = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    near.host_write(0, source);
    let mut threshold = DELTA;

    loop {
        // drain the near pile, spilling beyond-threshold work to `far`
        while near_size.host_read(0) > 0 {
            let len = near_size.host_read(0) as usize;
            let t = threshold;
            spill_size.host_write(0, 0);
            sim.launch(len, Assign::WarpPerItem, false, |ctx, idx| {
                let v = ctx.ld(&near, idx);
                let dv = ctx.ld(&dist, v as usize);
                if dv == INF {
                    return;
                }
                let beg = ctx.ld(&dg.row, v as usize) as usize;
                let end = ctx.ld(&dg.row, v as usize + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                while i < end {
                    let u = ctx.ld(&dg.nbr, i);
                    let w = ctx.ld(&dg.wt, i);
                    let nd = dv + w;
                    if ctx.atomic_min(&dist, u as usize, nd) > nd {
                        if nd < t {
                            let s = ctx.atomic_add(&spill_size, 0, 1) as usize;
                            ctx.st(&spill, s % spill.len(), u);
                        } else {
                            let s = ctx.atomic_add(&far_size, 0, 1) as usize;
                            ctx.st(&far, s % far.len(), u);
                        }
                    }
                    i += lanes;
                }
            });
            // spill (still-near work) becomes the next near pile
            let sl = spill_size.host_read(0).min(spill.len() as u32);
            for i in 0..sl as usize {
                near.host_write(i, spill.host_read(i));
            }
            near_size.host_write(0, sl);
        }
        // advance the threshold and promote far work whose tentative
        // distance now qualifies
        let fl = far_size.host_read(0).min(far.len() as u32) as usize;
        if fl == 0 {
            break;
        }
        threshold += DELTA;
        let mut kept = 0usize;
        let mut promoted = 0usize;
        for i in 0..fl {
            let v = far.host_read(i);
            let dv = dist.host_read(v as usize);
            if dv < threshold {
                near.host_write(promoted, v);
                promoted += 1;
            } else {
                far.host_write(kept, v);
                kept += 1;
            }
        }
        near_size.host_write(0, promoted as u32);
        far_size.host_write(0, kept as u32);
        if promoted == 0 && kept == fl {
            // everything is far beyond the threshold; jump to the minimum
            let min_d = (0..fl)
                .map(|i| dist.host_read(far.host_read(i) as usize))
                .min()
                .unwrap_or(INF);
            if min_d == INF {
                break;
            }
            threshold = min_d / DELTA * DELTA + DELTA;
        }
    }
    (dist.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::titan_v;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn cpu_matches_dijkstra() {
        for g in [
            toy::weighted_diamond(),
            gen::gnp(150, 0.04, 3),
            gen::grid2d(10, 10),
            gen::road(30, 12, 5),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::sssp(&input.csr, 0);
            let (got, _) = cpu(&input, 3, 0);
            assert_eq!(got, expect, "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_dijkstra() {
        for g in [
            toy::weighted_diamond(),
            gen::gnp(120, 0.05, 3),
            gen::road(20, 10, 5),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::sssp(&input.csr, 0);
            let (got, secs) = gpu(&input, titan_v(), 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn disconnected_stays_inf() {
        let input = GraphInput::new(toy::two_triangles());
        let (got, _) = cpu(&input, 2, 0);
        assert!(got[3..].iter().all(|&d| d == INF));
        let (gg, _) = gpu(&input, titan_v(), 0);
        assert!(gg[3..].iter().all(|&d| d == INF));
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2, 0).0.is_empty());
        assert!(gpu(&input, titan_v(), 0).0.is_empty());
    }
}
