//! Cross-crate integration: a deterministic stratified sample of the whole
//! 1098-program suite runs end-to-end through the public `run_variant` API
//! and verifies on two different suite inputs.
//!
//! (The per-engine unit tests already run *every* variant against the
//! oracles on toy graphs; this layer checks the public dispatch path and
//! suite-scale inputs.)

use indigo2::core::{run_variant, verify, GraphInput, Target};
use indigo2::gpusim::rtx3090;
use indigo2::graph::gen::{suite_graph, Scale, SuiteGraph};
use indigo2::styles::{enumerate, Model};

#[test]
fn stratified_sample_of_full_suite_verifies() {
    let inputs = [
        GraphInput::new(suite_graph(SuiteGraph::Rmat, Scale::Tiny)),
        GraphInput::new(suite_graph(SuiteGraph::RoadMap, Scale::Tiny)),
    ];
    let suite = enumerate::full_suite();
    // every 7th variant: deterministic, hits all algorithms and models
    let sample: Vec<_> = suite.iter().step_by(7).collect();
    assert!(sample.len() > 150, "sample too small: {}", sample.len());
    for input in &inputs {
        for cfg in &sample {
            let target = match cfg.model {
                Model::Cuda => Target::gpu(rtx3090()),
                _ => Target::cpu(2),
            };
            let r = run_variant(cfg, input, &target);
            verify::check(cfg, input, &r.output)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", cfg.name(), input.name()));
            assert!(r.secs >= 0.0);
        }
    }
}
