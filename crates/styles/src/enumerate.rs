//! Variant enumeration — the analog of the paper's code generator (§4.1).
//!
//! The full cartesian product over every dimension is generated and filtered
//! through [`StyleConfig::check`]; whatever survives *is* the suite. The
//! per-(algorithm, model) counts are our analog of the paper's Table 3.

use crate::config::{uses_reduction, StyleConfig};
use crate::dims::*;

/// All valid variants for one `(algorithm, model)` pair, in a stable order.
pub fn variants(algorithm: Algorithm, model: Model) -> Vec<StyleConfig> {
    let gpu = model == Model::Cuda;
    let red = uses_reduction(algorithm);

    let flows: Vec<Option<Flow>> = if algorithm == Algorithm::Tc {
        vec![None]
    } else {
        Flow::ALL.iter().copied().map(Some).collect()
    };
    let persistences: Vec<Option<Persistence>> = optional_axis(gpu, &Persistence::ALL);
    let granularities: Vec<Option<Granularity>> = optional_axis(gpu, &Granularity::ALL);
    let atomics: Vec<Option<AtomicKind>> = optional_axis(gpu, &AtomicKind::ALL);
    let gpu_reds: Vec<Option<GpuReduction>> = optional_axis(gpu && red, &GpuReduction::ALL);
    let cpu_reds: Vec<Option<CpuReduction>> =
        optional_axis(model.is_cpu() && red, &CpuReduction::ALL);
    let omp_scheds: Vec<Option<OmpSchedule>> =
        optional_axis(model == Model::Omp, &OmpSchedule::ALL);
    let cpp_scheds: Vec<Option<CppSchedule>> =
        optional_axis(model == Model::Cpp, &CppSchedule::ALL);

    let mut out = Vec::new();
    for direction in Direction::ALL {
        for drive in Drive::ALL {
            for &flow in &flows {
                for update in Update::ALL {
                    for determinism in Determinism::ALL {
                        for &persistence in &persistences {
                            for &granularity in &granularities {
                                for &atomic in &atomics {
                                    for &gpu_reduction in &gpu_reds {
                                        for &cpu_reduction in &cpu_reds {
                                            for &omp_schedule in &omp_scheds {
                                                for &cpp_schedule in &cpp_scheds {
                                                    let cfg = StyleConfig {
                                                        algorithm,
                                                        model,
                                                        direction,
                                                        drive,
                                                        flow,
                                                        update,
                                                        determinism,
                                                        persistence,
                                                        granularity,
                                                        atomic,
                                                        gpu_reduction,
                                                        cpu_reduction,
                                                        omp_schedule,
                                                        cpp_schedule,
                                                    };
                                                    if cfg.check().is_ok() {
                                                        out.push(cfg);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// All valid variants for every algorithm under one model (a Table 3 row).
pub fn model_suite(model: Model) -> Vec<StyleConfig> {
    Algorithm::ALL
        .iter()
        .flat_map(|&a| variants(a, model))
        .collect()
}

/// The complete suite across all models — "the N programs" of the title.
pub fn full_suite() -> Vec<StyleConfig> {
    Model::ALL.iter().flat_map(|&m| model_suite(m)).collect()
}

/// One `count_table` row: the model, its per-algorithm variant counts, and
/// the row total.
pub type CountRow = (Model, Vec<(Algorithm, usize)>, usize);

/// Table 3 analog: counts per (model, algorithm) plus row totals.
pub fn count_table() -> Vec<CountRow> {
    Model::ALL
        .iter()
        .map(|&m| {
            let counts: Vec<(Algorithm, usize)> = Algorithm::ALL
                .iter()
                .map(|&a| (a, variants(a, m).len()))
                .collect();
            let total = counts.iter().map(|(_, c)| c).sum();
            (m, counts, total)
        })
        .collect()
}

fn optional_axis<T: Copy>(applies: bool, all: &[T]) -> Vec<Option<T>> {
    if applies {
        all.iter().copied().map(Some).collect()
    } else {
        vec![None]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_variant_is_valid() {
        for cfg in full_suite() {
            assert!(cfg.check().is_ok(), "{}: {:?}", cfg.name(), cfg.check());
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = full_suite();
        let names: HashSet<String> = suite.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn suite_is_paper_scale() {
        // The paper evaluates 1106 programs (754 CUDA + 176 OpenMP + 176
        // C++). Our validity predicate — reconstructed from Table 2 plus the
        // §5 footnotes — lands at 1098 (734 + 182 + 182). The count is
        // pinned so that any rule change to the predicate is a conscious,
        // test-visible decision.
        assert_eq!(full_suite().len(), 1098);
        assert_eq!(model_suite(Model::Cuda).len(), 734);
        assert_eq!(model_suite(Model::Omp).len(), 182);
        assert_eq!(model_suite(Model::Cpp).len(), 182);
    }

    #[test]
    fn pr_cuda_count_matches_paper_exactly() {
        // PR's applicability column is fully pinned down by the paper
        // (vertex-only, topo-only, RMW, push⇒det, no CudaAtomic), so our
        // count must equal Table 3's 54.
        assert_eq!(variants(Algorithm::Pr, Model::Cuda).len(), 54);
    }

    #[test]
    fn tc_cuda_count_matches_paper_exactly() {
        // TC: fixed drive/flow/update/det, both directions with full
        // granularity (the intersection loop), 2 persistence × 2 atomic ×
        // 3 reductions = 72, matching Table 3.
        assert_eq!(variants(Algorithm::Tc, Model::Cuda).len(), 72);
    }

    #[test]
    fn pr_and_tc_cpu_counts_match_paper() {
        assert_eq!(variants(Algorithm::Pr, Model::Omp).len(), 18);
        assert_eq!(variants(Algorithm::Tc, Model::Omp).len(), 12);
        assert_eq!(variants(Algorithm::Pr, Model::Cpp).len(), 18);
        assert_eq!(variants(Algorithm::Tc, Model::Cpp).len(), 12);
    }

    #[test]
    fn omp_and_cpp_counts_are_symmetric() {
        for a in Algorithm::ALL {
            assert_eq!(
                variants(a, Model::Omp).len(),
                variants(a, Model::Cpp).len(),
                "{a:?}"
            );
        }
    }

    #[test]
    fn count_table_consistent_with_model_suite() {
        for (m, counts, total) in count_table() {
            assert_eq!(total, model_suite(m).len());
            assert_eq!(counts.len(), 6);
        }
    }

    #[test]
    fn no_cuda_only_dims_leak_into_cpu_rows() {
        for cfg in model_suite(Model::Omp)
            .iter()
            .chain(model_suite(Model::Cpp).iter())
        {
            assert!(cfg.granularity.is_none());
            assert!(cfg.persistence.is_none());
            assert!(cfg.atomic.is_none());
            assert!(cfg.gpu_reduction.is_none());
        }
    }
}
