//! Per-cell outcome reports of a fault-tolerant matrix run (DESIGN.md
//! §7.3): the `cells` CSV (one row per measurement cell, whatever its
//! fate) and the `outcomes` run-level summary.

use crate::outcome::{CellOutcome, MatrixRun};
use crate::report::Report;

/// One row per cell: slot, identity, outcome, and the measurement columns
/// (empty for failed cells). The row set is complete by construction — a
/// crashed or quarantined cell is a row, not a hole — so downstream diffing
/// of two runs is a plain line-by-line comparison.
pub fn cells_report(run: &MatrixRun) -> Report {
    let mut report = Report::new("cells", "Per-cell measurement outcomes");
    report.csv_row("slot,fingerprint,variant,graph,target,outcome,geps,iterations,detail");
    for (slot, r) in run.records.iter().enumerate() {
        let (geps, iterations) = match r.outcome.measurement() {
            Some(m) => (format!("{}", m.geps), format!("{}", m.iterations)),
            None => (String::new(), String::new()),
        };
        report.csv_row(format!(
            "{slot},{:016x},{},{},{},{},{geps},{iterations},{}",
            r.fingerprint,
            r.variant,
            r.graph,
            r.target,
            r.outcome.label(),
            csv_safe(r.outcome.detail().unwrap_or(""))
        ));
    }
    let s = run.summary();
    report.line(format!("{s}"));
    report
}

/// Run-level outcome summary: counts per outcome class plus one line per
/// non-`Ok` cell, so a failed sweep is diagnosable from the report alone.
pub fn outcomes_report(run: &MatrixRun) -> Report {
    let mut report = Report::new("outcomes", "Run outcome summary");
    let s = run.summary();
    report.line(format!("{s}"));
    report.line(format!("exit code: {}", s.exit_code()));
    report.csv_row("outcome,count");
    for (label, count) in [
        ("ok", s.ok),
        ("crashed", s.crashed),
        ("timed-out", s.timed_out),
        ("wrong-answer", s.wrong_answer),
        ("resumed", s.resumed),
    ] {
        report.csv_row(format!("{label},{count}"));
    }
    let failed: Vec<_> = run
        .records
        .iter()
        .filter(|r| !matches!(r.outcome, CellOutcome::Ok(_)))
        .collect();
    if !failed.is_empty() {
        report.line(String::new());
        report.line("failed cells:");
        for r in failed {
            report.line(format!(
                "  [{:9}] {} on {} ({}): {}",
                r.outcome.label(),
                r.variant,
                r.graph,
                r.target,
                r.outcome.detail().unwrap_or("")
            ));
        }
    }
    report
}

/// Flattens free text into one CSV cell: commas, quotes, and newlines are
/// replaced, not escaped — the detail column is for humans and `grep`, the
/// journal holds the verbatim payload.
fn csv_safe(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            ',' => ';',
            '"' => '\'',
            '\n' | '\r' | '\t' => ' ',
            c => c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Measurement;
    use crate::outcome::CellRecord;
    use indigo_styles::{Algorithm, Model, StyleConfig};

    fn run_with_failure() -> MatrixRun {
        MatrixRun {
            records: vec![
                CellRecord {
                    fingerprint: 1,
                    variant: "v1".into(),
                    graph: "Grid2d",
                    target: "sys1".into(),
                    outcome: CellOutcome::Ok(Measurement {
                        cfg: StyleConfig::baseline(Algorithm::Bfs, Model::Cpp),
                        graph: "Grid2d",
                        target: "sys1".into(),
                        geps: 1.5,
                        iterations: 4,
                    }),
                    resumed: false,
                },
                CellRecord {
                    fingerprint: 2,
                    variant: "v2".into(),
                    graph: "Grid2d",
                    target: "sys1".into(),
                    outcome: CellOutcome::Crashed {
                        payload: "boom, with commas\nand newlines".into(),
                    },
                    resumed: true,
                },
            ],
        }
    }

    #[test]
    fn cells_csv_has_one_row_per_cell() {
        let report = cells_report(&run_with_failure());
        let lines = &report.csv;
        assert_eq!(lines.len(), 3, "header + 2 cells");
        assert!(lines[1].contains(",ok,"));
        assert!(lines[2].contains(",crashed,"));
        // detail text is flattened, never introduces rows or columns
        assert!(lines[2].contains("boom; with commas and newlines"));
        assert_eq!(lines[2].split(',').count(), 9);
    }

    #[test]
    fn outcomes_report_lists_failed_cells() {
        let report = outcomes_report(&run_with_failure());
        let text = report.render();
        assert!(text.contains("1 crashed"));
        assert!(text.contains("exit code: 2"));
        assert!(text.contains("v2 on Grid2d"));
    }
}
