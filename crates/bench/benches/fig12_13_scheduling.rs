//! Figs 12/13 bench: OpenMP default vs dynamic scheduling (12) and C++
//! blocked vs cyclic distribution (13).

use indigo_bench::{bench_cpu_variant, criterion, input};
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, CppSchedule, Model, OmpSchedule, StyleConfig};

fn main() {
    let mut c = criterion();
    let cop = input(SuiteGraph::CoPapers);
    for algo in [Algorithm::Cc, Algorithm::Tc, Algorithm::Pr] {
        for sched in OmpSchedule::ALL {
            let mut cfg = StyleConfig::baseline(algo, Model::Omp);
            cfg.omp_schedule = Some(sched);
            bench_cpu_variant(
                &mut c,
                "fig12_omp_schedule",
                &format!("{}/{}", algo.label(), sched.label()),
                &cfg,
                &cop,
                4,
            );
        }
        for sched in CppSchedule::ALL {
            let mut cfg = StyleConfig::baseline(algo, Model::Cpp);
            cfg.cpp_schedule = Some(sched);
            bench_cpu_variant(
                &mut c,
                "fig13_cpp_schedule",
                &format!("{}/{}", algo.label(), sched.label()),
                &cfg,
                &cop,
                4,
            );
        }
    }
    c.final_summary();
}
