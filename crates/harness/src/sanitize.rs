//! Style-conformance sanitizer runner (DESIGN.md §7.6).
//!
//! Drives a [`RunPlan`]'s cells with the `indigo-exec` conflict collector
//! armed and judges each observed [`SanitizeReport`] against the behavioral
//! contract the variant's style labels promise
//! ([`indigo_styles::StyleExpectation`]): `Deterministic` variants must not
//! exhibit value-changing races, `Rmw`/`Rw` variants must update through
//! the matching mechanism, and CUDA variants must issue the atomic class
//! their label names. Benign patterns (§5.6 — idempotent same-value stores,
//! plain reads racing atomic updates) are reported but never violations.
//!
//! Unlike the measurement matrix, sanitize cells run **serially**: the
//! collector is process-global, so exactly one cell may be armed at a time
//! (see [`indigo_exec::sanitize::session_begin`]). Each model runs on its
//! first default target only — conformance is a property of the program's
//! access pattern, not of the device cost model, so sweeping both GPU
//! geometries would re-check the same logic at twice the cost.

use crate::matrix::{RunPlan, TargetSpec};
use crate::report::Report;
use indigo_core::gpu::DeviceGraph;
use indigo_core::{run_gpu_supervised, run_variant_supervised, GraphInput, Supervision, Target};
use indigo_exec::sanitize::{self, SanitizeReport};
use indigo_graph::gen::suite_graph;
use indigo_obs::Counter;
use indigo_styles::{AtomicKind, StyleConfig, StyleExpectation};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Overall classification of one sanitized cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No conflicts observed, no label violated.
    Clean,
    /// Conflicts observed, all of them benign or permitted by the labels
    /// (e.g. the value-changing races a `NonDeterministic` label allows).
    BenignRaces,
    /// Observed behavior contradicts what the style labels promise.
    Violation,
    /// The cell panicked; no verdict on its labels is possible.
    Crashed,
}

impl Verdict {
    /// Fixed-width display label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::BenignRaces => "benign",
            Verdict::Violation => "VIOLATION",
            Verdict::Crashed => "crashed",
        }
    }
}

/// One sanitized (variant, input, target) cell.
#[derive(Clone, Debug)]
pub struct CellVerdict {
    /// The program variant.
    pub cfg: StyleConfig,
    /// Input graph label.
    pub graph: &'static str,
    /// Target label.
    pub target: String,
    /// Everything the collector saw during the cell.
    pub report: SanitizeReport,
    /// Human-readable label violations (empty unless `Violation`), or the
    /// panic payload for `Crashed` cells.
    pub findings: Vec<String>,
    /// The cell's classification.
    pub verdict: Verdict,
}

/// A finished sanitize sweep.
#[derive(Clone, Debug, Default)]
pub struct SanitizeRun {
    /// Per-cell verdicts, in plan order.
    pub cells: Vec<CellVerdict>,
    /// All per-cell reports merged.
    pub totals: SanitizeReport,
}

impl SanitizeRun {
    /// Cells with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.cells.iter().filter(|c| c.verdict == v).count()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} cells: {} clean, {} benign, {} violations, {} crashed \
             ({} racy / {} benign conflicts, {} rmw + {} split updates)",
            self.cells.len(),
            self.count(Verdict::Clean),
            self.count(Verdict::BenignRaces),
            self.count(Verdict::Violation),
            self.count(Verdict::Crashed),
            self.totals.racy(),
            self.totals.benign_idempotent + self.totals.benign_mixed,
            self.totals.updates_rmw,
            self.totals.updates_split,
        )
    }

    /// Process exit code: 0 when every label held, 2 otherwise.
    pub fn exit_code(&self) -> i32 {
        if self.count(Verdict::Violation) + self.count(Verdict::Crashed) > 0 {
            2
        } else {
            0
        }
    }
}

/// Compares one observed report against a variant's label contract and
/// returns every violation found (empty = labels hold).
///
/// The update-mechanism and atomic-class rules are scoped to the relaxation
/// algorithms (BFS/SSSP/CC): only those route updates through the semantic
/// `min_update`/`gpu_min_update` sites that emit update events, and PR
/// intentionally hardcodes the host-atomic class for its rank accumulators
/// regardless of the variant's `atomic` label (a float-accumulation
/// constraint, not a style choice), which would otherwise read as a
/// mismatch.
pub fn judge(exp: &StyleExpectation, r: &SanitizeReport) -> Vec<String> {
    let mut v = Vec::new();
    if exp.conflict_free && r.racy() > 0 {
        v.push(format!(
            "Deterministic label, but {} value-changing race(s) observed \
             ({} write/write, {} read/write)",
            r.racy(),
            r.racy_ww,
            r.racy_rw
        ));
    }
    if !exp.relaxation {
        return v;
    }
    if exp.update_rmw && r.updates_split > 0 {
        v.push(format!(
            "Rmw label, but {} update(s) took the load/compare/store split",
            r.updates_split
        ));
    }
    if !exp.update_rmw && r.updates_rmw > 0 {
        v.push(format!(
            "Rw label, but {} update(s) went through a fused atomic RMW",
            r.updates_rmw
        ));
    }
    match exp.atomic_class {
        Some(AtomicKind::Atomic) if r.cuda_atomic_rmws > 0 => v.push(format!(
            "Atomic label, but {} cuda::atomic-class RMW(s) issued",
            r.cuda_atomic_rmws
        )),
        Some(AtomicKind::CudaAtomic) if r.atomic_rmws > 0 => v.push(format!(
            "CudaAtomic label, but {} host-class atomic RMW(s) issued",
            r.atomic_rmws
        )),
        _ => {}
    }
    if exp.update_rmw && r.updates_rmw + r.updates_split > 0 {
        // the labeled synchronization mechanism must actually appear in the
        // access stream (a dropped atomic shows up here even if the update
        // events were miscounted): GPU variants must issue their labeled
        // atomic class, CPU variants either host atomics (C++) or
        // critical-section ops (OpenMP)
        let labeled = match exp.atomic_class {
            Some(AtomicKind::Atomic) => r.atomic_rmws,
            Some(AtomicKind::CudaAtomic) => r.cuda_atomic_rmws,
            None => r.atomic_rmws + r.locked_ops,
        };
        if labeled == 0 {
            v.push(
                "Rmw label, but no synchronized update operations appear in the access stream"
                    .to_string(),
            );
        }
    }
    v
}

/// Runs every cell of `plan` under the sanitizer, serially, and judges each
/// against its label contract. `progress(done, total)` is invoked after
/// each cell. With the `sanitize` feature off every report is empty and
/// every cell judges `Clean` — callers should gate on
/// [`sanitize::enabled`].
pub fn run_plan(plan: &RunPlan, mut progress: impl FnMut(usize, usize)) -> SanitizeRun {
    let targets: Vec<(usize, TargetSpec)> = plan
        .variants
        .iter()
        .enumerate()
        .filter_map(|(i, cfg)| {
            TargetSpec::defaults_for(cfg.model)
                .into_iter()
                .next()
                .map(|t| (i, t))
        })
        .collect();
    let total = plan.graphs.len() * targets.len();
    let needs_gpu = targets.iter().any(|(_, t)| matches!(t, TargetSpec::Gpu(_)));
    let mut done = 0usize;
    let mut run = SanitizeRun::default();
    for &which in &plan.graphs {
        let input = GraphInput::new(suite_graph(which, plan.scale));
        let dg = needs_gpu.then(|| DeviceGraph::upload(&input));
        for (vi, target) in &targets {
            let cell = sanitize_cell(
                &plan.variants[*vi],
                which.label(),
                &input,
                dg.as_ref(),
                target,
            );
            run.totals.merge(&cell.report);
            run.cells.push(cell);
            done += 1;
            progress(done, total);
        }
    }
    if indigo_obs::enabled() {
        Counter::SanitizeConflicts.add(run.totals.conflicts());
        Counter::SanitizeViolations.add(
            run.cells
                .iter()
                .filter(|c| c.verdict == Verdict::Violation)
                .map(|c| c.findings.len() as u64)
                .sum(),
        );
    }
    run
}

/// Runs one cell with the collector armed and judges the result. Panics are
/// contained: a crashed cell yields a `Crashed` verdict carrying the
/// payload, and the session is still closed so the next cell starts clean.
fn sanitize_cell(
    cfg: &StyleConfig,
    graph: &'static str,
    input: &GraphInput,
    dg: Option<&DeviceGraph>,
    target: &TargetSpec,
) -> CellVerdict {
    let sup = Supervision::none();
    sanitize::session_begin();
    let outcome = catch_unwind(AssertUnwindSafe(|| match target {
        TargetSpec::Gpu(device) => {
            let dg = dg.expect("GPU cells have an uploaded graph");
            // one sim worker: the collector is shared state and the access
            // interleaving is irrelevant to region-scoped conflicts anyway
            run_gpu_supervised(cfg, dg, *device, 1, &sup);
        }
        TargetSpec::Cpu(_, threads) => {
            run_variant_supervised(cfg, input, &Target::cpu(*threads), &sup);
        }
    }));
    let report = sanitize::session_end();
    let (verdict, findings) = match outcome {
        Err(payload) => (
            Verdict::Crashed,
            vec![indigo_cancel::payload_text(payload.as_ref())],
        ),
        Ok(()) => {
            let findings = judge(&cfg.expectation(), &report);
            let verdict = if !findings.is_empty() {
                Verdict::Violation
            } else if report.conflicts() > 0 {
                Verdict::BenignRaces
            } else {
                Verdict::Clean
            };
            (verdict, findings)
        }
    };
    CellVerdict {
        cfg: *cfg,
        graph,
        target: target.label(),
        report,
        findings,
        verdict,
    }
}

/// Renders a sweep as a per-cell verdict table plus summary (and CSV rows
/// for downstream tooling).
pub fn sanitize_report(run: &SanitizeRun) -> Report {
    let mut rep = Report::new("sanitize", "style-conformance sanitizer verdicts");
    rep.csv_row(
        "variant,graph,target,verdict,racy_ww,racy_rw,benign_idempotent,benign_mixed,\
         updates_rmw,updates_split,findings",
    );
    rep.line(format!(
        "{:<44} {:<6} {:<12} {:<9} {:>5} {:>7} {:>7}",
        "variant", "graph", "target", "verdict", "racy", "benign", "updates"
    ));
    for c in &run.cells {
        let r = &c.report;
        rep.line(format!(
            "{:<44} {:<6} {:<12} {:<9} {:>5} {:>7} {:>7}",
            c.cfg.name(),
            c.graph,
            c.target,
            c.verdict.label(),
            r.racy(),
            r.benign_idempotent + r.benign_mixed,
            r.updates_rmw + r.updates_split,
        ));
        for f in &c.findings {
            rep.line(format!("    ! {f}"));
        }
        rep.csv_row(format!(
            "{},{},{},{},{},{},{},{},{},{},\"{}\"",
            c.cfg.name(),
            c.graph,
            c.target,
            c.verdict.label(),
            r.racy_ww,
            r.racy_rw,
            r.benign_idempotent,
            r.benign_mixed,
            r.updates_rmw,
            r.updates_split,
            c.findings.join("; ").replace('"', "'"),
        ));
    }
    rep.line("");
    rep.line(run.summary());
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_styles::{Algorithm, Determinism, Model, Update};

    fn relax_exp(model: Model) -> StyleExpectation {
        StyleConfig::baseline(Algorithm::Sssp, model).expectation()
    }

    #[test]
    fn clean_report_judges_clean() {
        let exp = relax_exp(Model::Cuda);
        assert!(judge(&exp, &SanitizeReport::default()).is_empty());
    }

    #[test]
    fn deterministic_label_rejects_racy_cells() {
        let mut cfg = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        cfg.determinism = Determinism::Deterministic;
        cfg.update = Update::ReadModifyWrite;
        let r = SanitizeReport {
            racy_ww: 1,
            ..Default::default()
        };
        let v = judge(&cfg.expectation(), &r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("Deterministic"));
        // benign conflicts alone are permitted (§5.6)
        let benign = SanitizeReport {
            benign_idempotent: 3,
            benign_mixed: 2,
            ..Default::default()
        };
        assert!(judge(&cfg.expectation(), &benign).is_empty());
    }

    #[test]
    fn rmw_label_rejects_split_updates() {
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
        cfg.update = Update::ReadModifyWrite;
        let r = SanitizeReport {
            updates_split: 4,
            updates_rmw: 10,
            atomic_rmws: 10,
            ..Default::default()
        };
        let v = judge(&cfg.expectation(), &r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("split"));
    }

    #[test]
    fn rw_label_rejects_fused_updates() {
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        cfg.update = Update::ReadWrite;
        let r = SanitizeReport {
            updates_rmw: 2,
            ..Default::default()
        };
        let v = judge(&cfg.expectation(), &r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("fused"));
    }

    #[test]
    fn wrong_atomic_class_is_flagged_for_relaxation_only() {
        let mut cfg = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        cfg.atomic = Some(AtomicKind::Atomic);
        let r = SanitizeReport {
            cuda_atomic_rmws: 5,
            ..Default::default()
        };
        assert_eq!(judge(&cfg.expectation(), &r).len(), 1);
        // PR hardcodes host-class atomics for its accumulators: the class
        // rule must not apply outside the relaxation algorithms
        let mut pr = StyleConfig::baseline(Algorithm::Pr, Model::Cuda);
        pr.atomic = Some(AtomicKind::CudaAtomic);
        let pr_r = SanitizeReport {
            atomic_rmws: 100,
            ..Default::default()
        };
        assert!(judge(&pr.expectation(), &pr_r).is_empty());
    }

    #[test]
    fn rmw_label_requires_synchronized_ops_in_stream() {
        // the dropped-atomic mutation signature: update events present, but
        // zero synchronized operations of the labeled class
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cuda);
        cfg.update = Update::ReadModifyWrite;
        cfg.atomic = Some(AtomicKind::Atomic);
        let r = SanitizeReport {
            updates_rmw: 8,
            ..Default::default()
        };
        let v = judge(&cfg.expectation(), &r);
        assert!(
            v.iter().any(|f| f.contains("no synchronized update")),
            "{v:?}"
        );
    }

    #[test]
    fn report_renders_rows_and_summary() {
        let run = SanitizeRun {
            cells: vec![CellVerdict {
                cfg: StyleConfig::baseline(Algorithm::Bfs, Model::Cuda),
                graph: "grid",
                target: "TitanV-sim".to_string(),
                report: SanitizeReport::default(),
                findings: Vec::new(),
                verdict: Verdict::Clean,
            }],
            totals: SanitizeReport::default(),
        };
        let rep = sanitize_report(&run);
        assert!(rep.render().contains("clean"));
        assert!(rep.csv.len() == 2);
        assert_eq!(run.exit_code(), 0);
        let bad = SanitizeRun {
            cells: vec![CellVerdict {
                verdict: Verdict::Violation,
                findings: vec!["x".into()],
                ..run.cells[0].clone()
            }],
            totals: SanitizeReport::default(),
        };
        assert_eq!(bad.exit_code(), 2);
    }
}
