//! Optimized CPU maximal independent set (Lonestar-style priority MIS).
//!
//! Single fused kernel per round over the still-undecided vertices, kept in
//! a compact host-side worklist; neighbor scans short-circuit at the first
//! better undecided neighbor. Computes the same lexicographically-first-by-
//! priority set as the suite's variants. The paper has no GPU baseline for
//! MIS (it is missing from Gardenia, §5.17), so neither do we.

use indigo_core::serial::mis_priority;
use indigo_core::GraphInput;
use indigo_exec::frontier::{fill_atomic_u32, grained_for, SparseFrontier};
use indigo_exec::{PoolRegistry, Schedule};
use std::sync::atomic::{AtomicU32, Ordering};

const UNDECIDED: u32 = 0;
const IN: u32 = 1;
const OUT: u32 = 2;

/// Capacity-retained MIS state, leased per call (DESIGN.md §7.7).
#[derive(Default)]
struct Scratch {
    status: Vec<AtomicU32>,
    prio: Vec<u64>,
    live: SparseFrontier,
}

static SCRATCH: PoolRegistry<Scratch> = PoolRegistry::new();

/// CPU priority MIS. Returns `(membership, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize) -> (Vec<bool>, f64) {
    let mut out = Vec::new();
    let secs = cpu_into(input, threads, &mut out);
    (out, secs)
}

/// [`cpu`] writing the membership flags into a caller-owned buffer; with a
/// warm buffer the call is allocation-free.
pub fn cpu_into(input: &GraphInput, threads: usize, out: &mut Vec<bool>) -> f64 {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let seed = indigo_core::MIS_SEED;
    let start = std::time::Instant::now();
    let mut scratch = SCRATCH.lease_guard(0, Scratch::default);
    let Scratch { status, prio, live } = &mut *scratch;
    fill_atomic_u32(status, n, UNDECIDED);
    // priorities are precomputed — the baseline's memo over the suite codes
    prio.clear();
    prio.extend((0..n as u32).map(|v| mis_priority(v, seed)));
    live.reset(pool.num_threads());
    for v in 0..n as u32 {
        live.seed(v);
    }

    while !live.current().is_empty() {
        let st: &[AtomicU32] = status;
        let pr: &[u64] = prio;
        let fr: &SparseFrontier = live;
        grained_for(&pool, fr.current().len(), Schedule::Default, |li, tid| {
            let v = fr.current()[li];
            if st[v as usize].load(Ordering::Relaxed) != UNDECIDED {
                return;
            }
            let pv = pr[v as usize];
            let mut wins = true;
            for &u in g.neighbors(v) {
                let su = st[u as usize].load(Ordering::Relaxed);
                if su == IN || (su == UNDECIDED && pr[u as usize] > pv) {
                    wins = false;
                    break;
                }
            }
            if wins {
                st[v as usize].store(IN, Ordering::Relaxed);
                for &u in g.neighbors(v) {
                    st[u as usize].store(OUT, Ordering::Relaxed);
                }
            } else {
                // Safety: parallel_for/grained_for hand each worker a
                // distinct tid.
                unsafe { fr.push(tid, v) };
            }
        });
        live.flip();
    }
    out.clear();
    out.extend(status[..n].iter_mut().map(|c| *c.get_mut() == IN));
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn matches_serial_greedy_set() {
        for g in [
            toy::complete(9),
            toy::star(20),
            gen::gnp(250, 0.03, 11),
            gen::grid2d(8, 8),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::mis(&input.csr, indigo_core::MIS_SEED);
            let (got, _) = cpu(&input, 3);
            assert_eq!(got, expect, "{}", input.name());
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2).0.is_empty());
    }
}
