//! Coordinate (edge-list) graph layout (paper §4.2, [14]).
//!
//! The edge-based codes iterate a flat array of directed edges:
//! `src_list[e]`, `dst_list[e]`, `weight[e]` — the arrays of the paper's
//! Listing 1b. A [`Coo`] is always derived from a [`Csr`] so the two layouts
//! describe the identical graph and edge order, which the harness relies on
//! when comparing vertex- and edge-based variants of the same program.

use crate::{Csr, NodeId, Weight};

/// An immutable graph in COO (coordinate) form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coo {
    num_nodes: usize,
    src_list: Vec<NodeId>,
    dst_list: Vec<NodeId>,
    weight: Vec<Weight>,
    name: String,
}

impl Coo {
    /// Derives the COO layout from a CSR graph, preserving edge order.
    pub fn from_csr(g: &Csr) -> Self {
        let m = g.num_edges();
        let mut src_list = Vec::with_capacity(m);
        let mut dst_list = Vec::with_capacity(m);
        for v in 0..g.num_nodes() as NodeId {
            for &u in g.neighbors(v) {
                src_list.push(v);
                dst_list.push(u);
            }
        }
        Coo {
            num_nodes: g.num_nodes(),
            src_list,
            dst_list,
            weight: g.weights().to_vec(),
            name: g.name().to_string(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.src_list.len()
    }

    /// Input name, inherited from the source CSR.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if the graph carries edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weight.is_empty()
    }

    /// Source endpoint of edge `e` (`src_list` in Listing 1b).
    #[inline]
    pub fn src(&self, e: usize) -> NodeId {
        self.src_list[e]
    }

    /// Destination endpoint of edge `e` (`dst_list` in Listing 1b).
    #[inline]
    pub fn dst(&self, e: usize) -> NodeId {
        self.dst_list[e]
    }

    /// Weight of edge `e`; panics if unweighted.
    #[inline]
    pub fn weight(&self, e: usize) -> Weight {
        self.weight[e]
    }

    /// Full source array.
    #[inline]
    pub fn src_list(&self) -> &[NodeId] {
        &self.src_list
    }

    /// Full destination array.
    #[inline]
    pub fn dst_list(&self) -> &[NodeId] {
        &self.dst_list
    }

    /// Full weight array (empty when unweighted).
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weight
    }

    /// Iterator over `(src, dst, edge_index)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, usize)> + '_ {
        (0..self.num_edges()).map(move |e| (self.src_list[e], self.dst_list[e], e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn triangle() -> Csr {
        Csr::from_raw(
            vec![0, 2, 4, 6],
            vec![1, 2, 0, 2, 0, 1],
            vec![5, 7, 5, 9, 7, 9],
            "triangle",
        )
    }

    #[test]
    fn matches_csr_edge_order() {
        let csr = triangle();
        let coo = Coo::from_csr(&csr);
        assert_eq!(coo.num_nodes(), 3);
        assert_eq!(coo.num_edges(), 6);
        let from_csr: Vec<_> = csr.iter_edges().collect();
        let from_coo: Vec<_> = coo.iter().collect();
        assert_eq!(from_csr, from_coo);
        for (e, (_, _, i)) in coo.iter().enumerate() {
            assert_eq!(coo.weight(e), csr.weight_at(i));
        }
    }

    #[test]
    fn unweighted_round_trip() {
        let csr = Csr::from_raw(vec![0, 1, 2], vec![1, 0], vec![], "pair");
        let coo = Coo::from_csr(&csr);
        assert!(!coo.is_weighted());
        assert_eq!(coo.src_list(), &[0, 1]);
        assert_eq!(coo.dst_list(), &[1, 0]);
    }
}
