//! Simulator hot-path microbenchmarks (DESIGN.md §7.4).
//!
//! Unlike the figure benches, these measure *host* wall-clock of the
//! simulation machinery itself — the cost of recording and pricing
//! accesses, and of a full launch round through the zero-allocation fast
//! path — so regressions in the simulator's own overhead are visible
//! without being masked by simulated-cycle arithmetic.

use criterion::{black_box, Criterion};
use indigo_bench::criterion;
use indigo_gpusim::cost::{AccessClass, StepTable};
use indigo_gpusim::{rtx3090, Assign, BufKind, GpuBuf, ReduceStyle, Sim, WARP_SIZE};

/// One warp round of fully-coalesced loads: 8 steps × 32 lanes, every step
/// landing in one 128-byte segment.
fn steptable_coalesced(c: &mut Criterion) {
    let costs = rtx3090().cost;
    let mut table = StepTable::new();
    let mut g = c.benchmark_group("gpusim_hotpath");
    g.bench_function("steptable/coalesced_round", |b| {
        b.iter(|| {
            table.clear();
            for step in 0..8u64 {
                for lane in 0..WARP_SIZE as u64 {
                    table.record(step as usize, AccessClass::Mem, step * 4096 + lane * 4);
                }
            }
            black_box(table.finalize(&costs))
        })
    });
    g.finish();
}

/// One warp round of scattered atomics: the O(n²) dedup fallback.
fn steptable_scattered(c: &mut Criterion) {
    let costs = rtx3090().cost;
    let mut table = StepTable::new();
    let mut g = c.benchmark_group("gpusim_hotpath");
    g.bench_function("steptable/scattered_round", |b| {
        b.iter(|| {
            table.clear();
            for step in 0..8u64 {
                for lane in 0..WARP_SIZE as u64 {
                    // descending addresses defeat the sorted fast path
                    let addr = (WARP_SIZE as u64 - lane) * 4096 + step * 8;
                    table.record(step as usize, AccessClass::AtomicRmw, addr);
                }
            }
            black_box(table.finalize(&costs))
        })
    });
    g.finish();
}

/// A full thread-granularity streaming launch — the shape the
/// `run_block_thread_fast` path serves. Steady-state: zero allocations.
fn launch_thread_per_item(c: &mut Criterion) {
    const N: usize = 1 << 14;
    let mut sim = Sim::new(rtx3090());
    let src = GpuBuf::new(N, 7);
    let dst = GpuBuf::new(N, 0);
    let mut g = c.benchmark_group("gpusim_hotpath");
    g.bench_function("launch/thread_per_item_stream", |b| {
        b.iter(|| {
            sim.launch(N, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&src, i);
                ctx.st(&dst, i, v + 1);
            });
            black_box(sim.elapsed_secs())
        })
    });
    g.finish();
}

/// A warp-granularity reduction launch (Listing 10c's warp-shuffle style):
/// exercises the generic `run_block` path with group scratch + epilogue
/// bookkeeping.
fn launch_warp_reduce(c: &mut Criterion) {
    const N: usize = 1 << 10; // items = warps
    let mut sim = Sim::new(rtx3090());
    let src = GpuBuf::new(N * WARP_SIZE, 1);
    let mut g = c.benchmark_group("gpusim_hotpath");
    g.bench_function("launch/warp_per_item_reduce", |b| {
        b.iter(|| {
            let total = sim.launch_reduce_u64(
                N,
                Assign::WarpPerItem,
                false,
                ReduceStyle::ReductionAdd,
                BufKind::Atomic,
                |ctx, item| {
                    let v = ctx.ld(&src, item * WARP_SIZE + ctx.lane());
                    ctx.reduce_add_u64(u64::from(v));
                },
            );
            black_box(total)
        })
    });
    g.finish();
}

fn main() {
    let mut c = criterion();
    steptable_coalesced(&mut c);
    steptable_scattered(&mut c);
    launch_thread_per_item(&mut c);
    launch_warp_reduce(&mut c);
    c.final_summary();
}
