//! Equivalence gate for the multi-threaded simulator: every `_det` launch
//! must report bit-identical cycles, reduction totals, and buffer state for
//! any host worker count. This is the contract that lets the measurement
//! harness fan GPU cells across threads without perturbing results.

use indigo_gpusim::{rtx3090, titan_v, Assign, BufKind, GpuBuf, GpuBufF32, ReduceStyle, Sim};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const ASSIGNS: [Assign; 3] = [
    Assign::ThreadPerItem,
    Assign::WarpPerItem,
    Assign::BlockPerItem,
];

/// A deliberately skewed per-item workload: item 0 is ~4000× heavier than
/// the tail, like the hub vertex of a power-law graph. Blocks then have
/// very different costs, which is exactly when dynamic block-stealing
/// reorders completion the most.
fn skewed_work(i: usize) -> usize {
    if i == 0 {
        8192
    } else if i % 97 == 0 {
        256
    } else {
        2
    }
}

fn exact_bits(c: f64) -> u64 {
    c.to_bits()
}

#[test]
fn plain_launch_identical_across_workers() {
    for assign in ASSIGNS {
        for persistent in [false, true] {
            let run = |workers: usize| {
                let data = GpuBuf::new(32_768, 1);
                let out = GpuBuf::new(2048, 0);
                let mut sim = Sim::new(titan_v());
                sim.set_workers(workers);
                sim.launch_det(2048, assign, persistent, |ctx, i| {
                    let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                    let mut acc = 0u32;
                    let mut k = lane;
                    while k < skewed_work(i) {
                        acc = acc.wrapping_add(ctx.ld(&data, (i * 31 + k) % data.len()));
                        k += lanes;
                    }
                    ctx.atomic_add(&out, i, acc);
                });
                (exact_bits(sim.elapsed_cycles()), out.to_vec())
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} persistent={persistent} workers={workers}"
                );
            }
        }
    }
}

#[test]
fn u64_reduction_identical_across_workers() {
    for assign in ASSIGNS {
        for style in [
            ReduceStyle::GlobalAdd,
            ReduceStyle::BlockAdd,
            ReduceStyle::ReductionAdd,
        ] {
            let run = |workers: usize| {
                let mut sim = Sim::new(rtx3090());
                sim.set_workers(workers);
                let total = sim.launch_reduce_u64_det(
                    3000,
                    assign,
                    false,
                    style,
                    BufKind::CudaAtomic,
                    |ctx, i| {
                        if ctx.lane() == 0 {
                            ctx.reduce_add_u64((i as u64).wrapping_mul(2654435761) % 1013);
                        }
                    },
                );
                (exact_bits(sim.elapsed_cycles()), total)
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} {style:?} workers={workers}"
                );
            }
        }
    }
}

/// `f32` addition does not commute, so this only holds because the merge
/// accumulates per-block partials in block index order.
#[test]
fn f32_reduction_bit_identical_across_workers() {
    let run = |workers: usize| {
        let mut sim = Sim::new(titan_v());
        sim.set_workers(workers);
        let total = sim.launch_reduce_f32_det(
            5000,
            Assign::ThreadPerItem,
            false,
            ReduceStyle::ReductionAdd,
            BufKind::Atomic,
            |ctx, i| {
                // values with wildly different magnitudes make f32 sum
                // order-sensitive — any reordering would change the bits
                ctx.reduce_add_f32(if i % 3 == 0 { 1e-6 } else { 1.0 + i as f32 });
            },
        );
        (exact_bits(sim.elapsed_cycles()), total.to_bits())
    };
    let baseline = run(1);
    for workers in WORKER_COUNTS {
        assert_eq!(run(workers), baseline, "workers={workers}");
    }
}

#[test]
fn coop_launch_identical_across_workers() {
    for assign in ASSIGNS {
        for persistent in [false, true] {
            let run = |workers: usize| {
                let out = GpuBufF32::new(600, 0.0);
                let mut sim = Sim::new(rtx3090());
                sim.set_workers(workers);
                let (ru, rf) = sim.launch_coop_det(
                    600,
                    assign,
                    persistent,
                    Some((ReduceStyle::BlockAdd, BufKind::Atomic)),
                    |ctx, i| {
                        let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                        let mut k = lane;
                        while k < skewed_work(i) {
                            ctx.scratch_add_f32(1.0 / (1.0 + (i + k) as f32));
                            k += lanes;
                        }
                    },
                    |ctx, i| {
                        let total = ctx.group_f32();
                        ctx.st_f32(&out, i, total);
                        ctx.reduce_add_u64(1);
                    },
                );
                let bits: Vec<u32> = (0..600).map(|i| out.host_read(i).to_bits()).collect();
                (exact_bits(sim.elapsed_cycles()), ru, rf.to_bits(), bits)
            };
            let baseline = run(1);
            for workers in WORKER_COUNTS {
                assert_eq!(
                    run(workers),
                    baseline,
                    "{assign:?} persistent={persistent} workers={workers}"
                );
            }
        }
    }
}

/// Serial entry points must ignore the worker setting entirely: a kernel
/// without the `deterministic_parallel` capability always simulates
/// single-threaded.
#[test]
fn non_det_launch_stays_serial_and_stable() {
    let run = |workers: usize| {
        let buf = GpuBuf::new(1000, u32::MAX).with_kind(BufKind::Atomic);
        let mut sim = Sim::new(titan_v());
        sim.set_workers(workers);
        sim.launch(1000, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld(&buf, (i + 1) % 1000);
            ctx.atomic_min(&buf, i, v.min(i as u32));
        });
        (exact_bits(sim.elapsed_cycles()), buf.to_vec())
    };
    let baseline = run(1);
    for workers in WORKER_COUNTS {
        assert_eq!(run(workers), baseline, "workers={workers}");
    }
}

#[test]
fn worker_setting_round_trips() {
    let mut sim = Sim::new(titan_v());
    assert_eq!(sim.workers(), 1);
    sim.set_workers(8);
    assert_eq!(sim.workers(), 8);
    sim.set_workers(0); // clamped
    assert_eq!(sim.workers(), 1);
}
