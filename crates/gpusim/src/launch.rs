//! Kernel launches: grid/block/warp/lane structure, granularity assignment,
//! persistent threads, reductions, and SM scheduling.
//!
//! Kernels are lane closures `Fn(&mut LaneCtx, item)` invoked once per
//! (lane, item) pair; [`Assign`] decides how many lanes cooperate on one
//! item (§2.8's thread/warp/block granularity) and the `persistent` flag
//! selects the grid-stride style of §2.7. All shared-memory traffic flows
//! through the [`LaneCtx`] so every access is both executed (host atomics —
//! results are exact) and priced (the [`crate::cost::StepTable`]).
//!
//! Cooperative kernels (pull-style PageRank, warp/block triangle counting)
//! additionally need a *group-local* sum across the lanes of one item —
//! CUDA code does this with warp shuffles and shared memory. The simulator
//! provides it as the lane *scratch* ([`LaneCtx::scratch_add_f32`]) plus an
//! `epilogue` closure that [`Sim::launch_coop`] runs once per item after its
//! lanes finish, with the group total visible; the shuffle/barrier cycles
//! are charged at that boundary.

use crate::buffer::{BufKind, GpuBuf, GpuBufF32};
use crate::cost::{AccessClass, StepTable};
use crate::device::Device;
use crate::fault::FaultPlan;
use crate::pool::{self, SimPool};
use crate::WARP_SIZE;
use indigo_cancel::CancelToken;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;

/// How many lanes process one work item (§2.8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assign {
    /// One thread per item (Listing 8a).
    ThreadPerItem,
    /// One warp (32 lanes) per item (Listing 8b).
    WarpPerItem,
    /// One block per item (Listing 8c).
    BlockPerItem,
}

/// Sum-reduction style (§2.10.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceStyle {
    /// Every contribution is a global atomic add (Listing 10a).
    GlobalAdd,
    /// Shared-memory block accumulator, one global add per block
    /// (Listing 10b).
    BlockAdd,
    /// Warp-shuffle + block reduction, one global add per block
    /// (Listing 10c).
    ReductionAdd,
}

/// Per-lane execution context: the only door to simulated global memory.
pub struct LaneCtx<'a> {
    table: &'a mut StepTable,
    ordinal: usize,
    lane: usize,
    lane_count: usize,
    red_u64: u64,
    red_f32: f32,
    red_calls: usize,
    reduce: Option<(ReduceStyle, BufKind)>,
    scratch_u64: u64,
    scratch_f32: f32,
    /// Group totals, populated only for epilogue contexts.
    group_u64: u64,
    group_f32: f32,
    /// Physical-thread identity for the sanitizer: `block * block_dim +
    /// warp * 32 + lane`. Persistent grid-stride rounds reuse the same id,
    /// exactly like real persistent threads. Only exists in sanitize
    /// builds, so non-sanitize hot paths carry no extra state.
    #[cfg(feature = "sanitize")]
    gtid: u64,
}

impl<'a> LaneCtx<'a> {
    /// This lane's index within its item group (`0..lane_count`).
    #[inline]
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Lanes cooperating on the current item (1, 32, or `block_dim`).
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lane_count
    }

    fn ld_class(kind: BufKind) -> AccessClass {
        match kind {
            BufKind::Plain | BufKind::Atomic => AccessClass::Mem,
            BufKind::CudaAtomic => AccessClass::CudaLdSt,
        }
    }

    fn rmw_class(kind: BufKind) -> AccessClass {
        match kind {
            BufKind::Plain | BufKind::Atomic => AccessClass::AtomicRmw,
            BufKind::CudaAtomic => AccessClass::CudaAtomicRmw,
        }
    }

    /// Feeds one access into the style-conformance sanitizer. Compiles to
    /// nothing without the `sanitize` feature (the `gtid` field does not
    /// even exist there).
    #[inline(always)]
    #[allow(unused_variables)]
    fn sanitize_record(&self, addr: u64, op: indigo_exec::sanitize::AccessOp) {
        #[cfg(feature = "sanitize")]
        indigo_exec::sanitize::record(self.gtid, addr, op);
    }

    /// The sanitizer op matching [`LaneCtx::rmw_class`].
    fn sanitize_rmw_op(kind: BufKind) -> indigo_exec::sanitize::AccessOp {
        match kind {
            BufKind::Plain | BufKind::Atomic => indigo_exec::sanitize::AccessOp::AtomicRmw,
            BufKind::CudaAtomic => indigo_exec::sanitize::AccessOp::CudaAtomicRmw,
        }
    }

    #[inline(always)]
    fn step(&mut self, class: AccessClass, addr: u64) {
        self.table.record(self.ordinal, class, addr);
        self.ordinal += 1;
    }

    /// Global load.
    #[inline(always)]
    pub fn ld(&mut self, buf: &GpuBuf, i: usize) -> u32 {
        self.step(Self::ld_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), indigo_exec::sanitize::AccessOp::Load);
        buf.cell(i).load(Ordering::Relaxed)
    }

    /// Global store.
    #[inline(always)]
    pub fn st(&mut self, buf: &GpuBuf, i: usize, v: u32) {
        self.step(Self::ld_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), indigo_exec::sanitize::AccessOp::Store(v));
        buf.cell(i).store(v, Ordering::Relaxed);
    }

    /// `atomicMin` (Listing 5b / 9). Returns the previous value.
    #[inline(always)]
    pub fn atomic_min(&mut self, buf: &GpuBuf, i: usize, v: u32) -> u32 {
        self.step(Self::rmw_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), Self::sanitize_rmw_op(buf.kind()));
        buf.cell(i).fetch_min(v, Ordering::Relaxed)
    }

    /// `atomicMax` (Listing 3b). Returns the previous value.
    #[inline(always)]
    pub fn atomic_max(&mut self, buf: &GpuBuf, i: usize, v: u32) -> u32 {
        self.step(Self::rmw_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), Self::sanitize_rmw_op(buf.kind()));
        buf.cell(i).fetch_max(v, Ordering::Relaxed)
    }

    /// `atomicAdd` (Listing 3a's worklist push). Returns the previous value.
    #[inline(always)]
    pub fn atomic_add(&mut self, buf: &GpuBuf, i: usize, v: u32) -> u32 {
        self.step(Self::rmw_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), Self::sanitize_rmw_op(buf.kind()));
        buf.cell(i).fetch_add(v, Ordering::Relaxed)
    }

    /// `atomicCAS`. Returns the previous value.
    #[inline(always)]
    pub fn atomic_cas(&mut self, buf: &GpuBuf, i: usize, cur: u32, new: u32) -> u32 {
        self.step(Self::rmw_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), Self::sanitize_rmw_op(buf.kind()));
        match buf
            .cell(i)
            .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// `f32` global load.
    #[inline(always)]
    pub fn ld_f32(&mut self, buf: &GpuBufF32, i: usize) -> f32 {
        self.step(Self::ld_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), indigo_exec::sanitize::AccessOp::Load);
        f32::from_bits(buf.cell(i).load(Ordering::Relaxed))
    }

    /// `f32` global store.
    #[inline(always)]
    pub fn st_f32(&mut self, buf: &GpuBufF32, i: usize, v: f32) {
        self.step(Self::ld_class(buf.kind()), buf.addr(i));
        self.sanitize_record(
            buf.addr(i),
            indigo_exec::sanitize::AccessOp::Store(v.to_bits()),
        );
        buf.cell(i).store(v.to_bits(), Ordering::Relaxed);
    }

    /// `atomicAdd(float*)`. Returns the previous value.
    #[inline(always)]
    pub fn atomic_add_f32(&mut self, buf: &GpuBufF32, i: usize, v: f32) -> f32 {
        self.step(Self::rmw_class(buf.kind()), buf.addr(i));
        self.sanitize_record(buf.addr(i), Self::sanitize_rmw_op(buf.kind()));
        let cell = buf.cell(i);
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => return f32::from_bits(prev),
                Err(now) => cur = now,
            }
        }
    }

    /// Contributes to the launch-wide `u64` sum reduction; cost depends on
    /// the launch's [`ReduceStyle`].
    #[inline]
    pub fn reduce_add_u64(&mut self, v: u64) {
        self.record_reduce_call();
        self.red_u64 += v;
    }

    /// Contributes to the launch-wide `f32` sum reduction.
    #[inline]
    pub fn reduce_add_f32(&mut self, v: f32) {
        self.record_reduce_call();
        self.red_f32 += v;
    }

    /// Adds to the *item-group* scratch sum (register/shuffle cooperation;
    /// free per call, priced once at the group boundary).
    #[inline]
    pub fn scratch_add_u64(&mut self, v: u64) {
        self.scratch_u64 += v;
    }

    /// `f32` group scratch add.
    #[inline]
    pub fn scratch_add_f32(&mut self, v: f32) {
        self.scratch_f32 += v;
    }

    /// The group scratch total — valid only inside an epilogue closure.
    #[inline]
    pub fn group_u64(&self) -> u64 {
        self.group_u64
    }

    /// The `f32` group scratch total — valid only inside an epilogue.
    #[inline]
    pub fn group_f32(&self) -> f32 {
        self.group_f32
    }

    fn record_reduce_call(&mut self) {
        self.red_calls += 1;
        match self.reduce {
            Some((ReduceStyle::GlobalAdd, kind)) => {
                // every lane's contribution is a global atomic on one shared
                // counter address
                self.step(Self::rmw_class(kind), GLOBAL_CTR_ADDR);
            }
            Some((ReduceStyle::BlockAdd, _)) => {
                // shared-memory atomic on the block-local counter
                self.step(AccessClass::SharedAtomic, SHARED_CTR_ADDR);
            }
            Some((ReduceStyle::ReductionAdd, _)) | None => {
                // register accumulation; priced at warp/block boundaries
            }
        }
    }
}

/// Synthetic address of the global reduction counter.
const GLOBAL_CTR_ADDR: u64 = 0x7fff_0000_0000;
/// Synthetic shared-memory address of the per-block counter.
const SHARED_CTR_ADDR: u64 = 0x7ffe_0000_0000;

/// A simulated GPU with an accumulating cycle clock.
///
/// One `Sim` spans one algorithm run: every launch adds its simulated
/// cycles; [`Sim::elapsed_secs`] converts to seconds at the device clock.
///
/// ## Multi-threaded simulation
///
/// [`Sim::set_workers`] lets launches that opt in via the `_det` entry
/// points (`deterministic_parallel` capability) execute their grid blocks
/// on a host thread pool. Blocks are simulated independently into private
/// [`BlockOutcome`]s and merged by a *block-ordered* serial reduction —
/// greedy SM assignment, cycle totals, and `f32` reduction sums are all
/// applied in block index order, so cycles, reduction results, and SM
/// accounting are bit-identical for any worker count. Only kernels whose
/// memory trace and functional effects are invariant to block execution
/// order may opt in; everything else goes through the serial entry points
/// regardless of the worker setting.
///
/// ## Hot-path engineering (DESIGN.md §7.4)
///
/// Steady-state launches perform no heap allocation and spawn no threads:
/// parallel blocks run on a leased parked-worker [`SimPool`] (returned to
/// the process-wide registry when the `Sim` drops), block outcomes land in
/// a reusable index-addressed arena, every simulating thread owns one
/// long-lived [`StepTable`], and the least-loaded-SM merge runs on a
/// [`BinaryHeap`] whose storage round-trips through [`Sim`] between
/// launches. `tests/alloc_regression.rs` pins the zero-allocation claim.
/// ## Supervision (DESIGN.md §7.3)
///
/// A `Sim` may carry a [`CancelToken`], a simulated-cycle budget, and an
/// armed [`FaultPlan`]. All three are polled at *launch boundaries* — the
/// natural cooperative cancellation points, since no shared state is
/// half-mutated between launches — plus once per persistent-kernel round so
/// a single runaway launch cannot dodge the watchdog. A fired token or an
/// exhausted budget unwinds with an [`indigo_cancel::Cancelled`] payload,
/// which the harness records as `TimedOut`; an injected panic unwinds with
/// a plain message, recorded as `Crashed`.
pub struct Sim {
    device: Device,
    cycles: f64,
    launches: usize,
    accesses: u64,
    workers: usize,
    cancel: Option<CancelToken>,
    cycle_budget: Option<f64>,
    fault: Option<FaultPlan>,
    scratch: SimScratch,
    /// Leased on the first parallel launch, returned to the registry on
    /// drop. Re-leased if [`Sim::set_workers`] changes the team size.
    pool: Option<SimPool>,
}

/// Placeholder epilogue type for launches without one: lets the generic
/// launch path stay monomorphized (kernel calls inline into the block loop
/// instead of going through `dyn` dispatch once per lane).
type NoEpilogue = fn(&mut LaneCtx, usize);

/// Geometry and pricing context shared by every block of one launch.
struct LaunchShape<'s> {
    device: Device,
    items: usize,
    assign: Assign,
    persistent: bool,
    reduce: Option<(ReduceStyle, BufKind)>,
    warps_per_block: usize,
    lanes_per_item: usize,
    items_per_block: usize,
    block_stride_items: usize,
    /// Borrowed from the owning [`Sim`]; polled once per persistent round
    /// so a runaway grid-stride loop inside a single launch stays
    /// cancellable.
    cancel: Option<&'s CancelToken>,
}

/// Everything one simulated block contributes to the launch: its cycle
/// cost, critical-path warp, reduction partials, access count, and whether
/// it did any work at all. Private to each simulating thread until the
/// block-ordered merge. `Copy` so pooled workers can publish outcomes into
/// plain arena slots.
#[derive(Clone, Copy, Debug, Default)]
struct BlockOutcome {
    cycles: f64,
    longest_warp: f64,
    sum_u64: u64,
    sum_f32: f32,
    accesses: u64,
    any: bool,
}

thread_local! {
    /// The calling thread's warmed [`StepTable`], handed from a dropped
    /// [`Sim`] to the next one constructed on this thread. The measurement
    /// harness builds a fresh `Sim` per cell, so without this hand-off every
    /// cell would re-grow its scratch from empty.
    static CALLER_TABLE: std::cell::Cell<Option<StepTable>> =
        const { std::cell::Cell::new(None) };
}

/// Launch-to-launch reusable storage: after a few warm-up launches, nothing
/// in here (nor anywhere else on the launch path) touches the allocator.
#[derive(Default)]
struct SimScratch {
    /// Block-simulation scratch for the calling thread (the pool's workers
    /// each own their own long-lived table).
    table: StepTable,
    /// Per-SM critical-path warp cycles, reset per launch.
    sm_crit: Vec<f64>,
    /// Backing storage for the SM merge heap; round-trips through
    /// `BinaryHeap::from` / `into_vec` so its capacity is never dropped.
    heap: Vec<SmSlot>,
    /// Index-addressed block outcome slots for pooled launches.
    arena: Vec<BlockOutcome>,
}

/// One SM's accumulated work, ordered for the least-loaded merge.
///
/// [`BinaryHeap`] is a max-heap, so the comparison is inverted: the
/// "greatest" slot is the one with the *least* accumulated work, ties going
/// to the *lowest* SM index. `peek` therefore yields exactly the SM the
/// serial `min_by(total_cmp)` scan would have chosen (Rust's `min_by`
/// returns the first of equal minima), which is what keeps heap-merged
/// cycle totals bit-identical to the O(blocks × sm_count) linear scan this
/// replaces.
#[derive(Clone, Copy, Debug)]
struct SmSlot {
    work: f64,
    sm: usize,
}

impl PartialEq for SmSlot {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for SmSlot {}
impl PartialOrd for SmSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SmSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .work
            .total_cmp(&self.work)
            .then_with(|| other.sm.cmp(&self.sm))
    }
}

/// Raw pointer to the outcome arena, smuggled into the pooled block
/// closure.
///
/// Safety: each block index is claimed by exactly one worker (the pool's
/// atomic cursor), so writes to `add(b)` are disjoint; the arena outlives
/// the job because [`SimPool::run_job`] does not return until every engaged
/// worker has checked out.
#[derive(Clone, Copy)]
struct SlotPtr(*mut BlockOutcome);
unsafe impl Send for SlotPtr {}
unsafe impl Sync for SlotPtr {}

impl SlotPtr {
    /// Publishes block `b`'s outcome.
    ///
    /// Safety: the caller must be the sole claimer of `b`, and `b` must be
    /// in bounds of the arena this pointer was taken from.
    unsafe fn publish(self, b: usize, out: BlockOutcome) {
        unsafe { self.0.add(b).write(out) };
    }
}

impl Sim {
    /// New simulator clocked at zero, single-threaded.
    pub fn new(device: Device) -> Self {
        let scratch = SimScratch {
            table: CALLER_TABLE.with(std::cell::Cell::take).unwrap_or_default(),
            ..SimScratch::default()
        };
        Sim {
            device,
            cycles: 0.0,
            launches: 0,
            accesses: 0,
            workers: 1,
            cancel: None,
            cycle_budget: None,
            fault: None,
            scratch,
            pool: None,
        }
    }

    /// Sets the host thread count used by `_det` launches (min 1).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Arms a cooperative cancellation token, polled at launch boundaries
    /// and persistent-round boundaries. Firing it unwinds the run with an
    /// [`indigo_cancel::Cancelled`] payload at the next poll.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Caps total simulated cycles: the first launch boundary at which the
    /// clock exceeds `cycles` unwinds as a cancellation. Catches variants
    /// whose *simulated* time diverges (e.g. a non-converging worklist
    /// kernel) even when each launch is individually fast in wall clock.
    pub fn set_cycle_budget(&mut self, cycles: f64) {
        self.cycle_budget = Some(cycles);
    }

    /// Arms a deterministic injected fault (see [`crate::fault`]).
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Polls token, cycle budget, and armed fault; called at every launch
    /// boundary. Unwinds instead of returning when any of them trips.
    fn supervise(&self) {
        if let Some(token) = &self.cancel {
            token.checkpoint();
        }
        if let Some(budget) = self.cycle_budget {
            if self.cycles > budget {
                let reason = format!(
                    "simulated-cycle budget of {budget:.0} cycles exceeded at launch {} \
                     ({:.0} cycles elapsed)",
                    self.launches, self.cycles
                );
                if let Some(token) = &self.cancel {
                    token.fire(reason);
                    token.raise();
                }
                std::panic::panic_any(indigo_cancel::Cancelled { reason });
            }
        }
        if let Some(fault) = &self.fault {
            fault.maybe_trigger(self.launches, self.cancel.as_ref());
        }
    }

    /// Host threads used by `_det` launches.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The device being simulated.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Total simulated cycles so far.
    pub fn elapsed_cycles(&self) -> f64 {
        self.cycles
    }

    /// Total simulated seconds so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.device.cycles_to_secs(self.cycles)
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> usize {
        self.launches
    }

    /// Total simulated memory-system accesses recorded so far (loads,
    /// stores, and atomics across all launches). Deterministic for a given
    /// kernel sequence, so perf tooling can report exact ns/access figures.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Resets the clock and access counter (e.g. to exclude initialization
    /// from timing).
    pub fn reset_clock(&mut self) {
        self.cycles = 0.0;
        self.launches = 0;
        self.accesses = 0;
    }

    /// Launches a kernel over `items` work items.
    pub fn launch<F>(&mut self, items: usize, assign: Assign, persistent: bool, kernel: F)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            None,
            &kernel,
            None::<&NoEpilogue>,
            false,
        );
    }

    /// [`Sim::launch`] for kernels with the `deterministic_parallel`
    /// capability: the kernel's memory trace and functional effects must be
    /// invariant to block execution order (read-only inputs, slot-private
    /// writes, or commutative integer atomics only). Such launches may be
    /// simulated by [`Sim::workers`] host threads with bit-identical
    /// results.
    pub fn launch_det<F>(&mut self, items: usize, assign: Assign, persistent: bool, kernel: F)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            None,
            &kernel,
            None::<&NoEpilogue>,
            true,
        );
    }

    /// Launches a kernel carrying a `u64` sum reduction of the given style;
    /// returns the reduced total. `kind` is the atomic flavor of the global
    /// counter (classic vs `cuda::atomic`, §5.1's TC case).
    pub fn launch_reduce_u64<F>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        style: ReduceStyle,
        kind: BufKind,
        kernel: F,
    ) -> u64
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            Some((style, kind)),
            &kernel,
            None::<&NoEpilogue>,
            false,
        )
        .0
    }

    /// [`Sim::launch_reduce_u64`] for order-invariant kernels (see
    /// [`Sim::launch_det`]); `u64` additions commute exactly, so the
    /// reduction total is safe under any block schedule.
    pub fn launch_reduce_u64_det<F>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        style: ReduceStyle,
        kind: BufKind,
        kernel: F,
    ) -> u64
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            Some((style, kind)),
            &kernel,
            None::<&NoEpilogue>,
            true,
        )
        .0
    }

    /// Launches a kernel carrying an `f32` sum reduction; returns the total.
    pub fn launch_reduce_f32<F>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        style: ReduceStyle,
        kind: BufKind,
        kernel: F,
    ) -> f32
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            Some((style, kind)),
            &kernel,
            None::<&NoEpilogue>,
            false,
        )
        .1
    }

    /// [`Sim::launch_reduce_f32`] for order-invariant kernels. The `f32`
    /// total stays bit-identical because per-block partials are accumulated
    /// in block index order by the merge, exactly like the serial loop.
    pub fn launch_reduce_f32_det<F>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        style: ReduceStyle,
        kind: BufKind,
        kernel: F,
    ) -> f32
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            Some((style, kind)),
            &kernel,
            None::<&NoEpilogue>,
            true,
        )
        .1
    }

    /// Cooperative launch: after an item's lanes finish, `epilogue` runs
    /// once for that item with the lanes' scratch totals visible
    /// ([`LaneCtx::group_f32`]); shuffle/barrier cycles for the group
    /// reduction are charged at that boundary. Returns the launch-wide
    /// reduction totals (0 when `reduce` is `None`).
    pub fn launch_coop<F, E>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        reduce: Option<(ReduceStyle, BufKind)>,
        kernel: F,
        epilogue: E,
    ) -> (u64, f32)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
        E: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            reduce,
            &kernel,
            Some(&epilogue),
            false,
        )
    }

    /// [`Sim::launch_coop`] for order-invariant kernel/epilogue pairs (see
    /// [`Sim::launch_det`]); the epilogue must also confine its writes to
    /// item-private slots.
    pub fn launch_coop_det<F, E>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        reduce: Option<(ReduceStyle, BufKind)>,
        kernel: F,
        epilogue: E,
    ) -> (u64, f32)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
        E: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.run(
            items,
            assign,
            persistent,
            reduce,
            &kernel,
            Some(&epilogue),
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run<F, E>(
        &mut self,
        items: usize,
        assign: Assign,
        persistent: bool,
        reduce: Option<(ReduceStyle, BufKind)>,
        kernel: &F,
        epilogue: Option<&E>,
        deterministic_parallel: bool,
    ) -> (u64, f32)
    where
        F: Fn(&mut LaneCtx, usize) + Sync,
        E: Fn(&mut LaneCtx, usize) + Sync,
    {
        self.supervise();
        let d = self.device;
        let block_dim = d.block_dim;
        let lanes_per_item = match assign {
            Assign::ThreadPerItem => 1,
            Assign::WarpPerItem => WARP_SIZE,
            Assign::BlockPerItem => block_dim,
        };
        let items_per_block = block_dim / lanes_per_item;
        let grid_blocks = if persistent {
            (d.sm_count * d.resident_blocks_per_sm).max(1)
        } else {
            items.div_ceil(items_per_block).max(1)
        };
        let shape = LaunchShape {
            device: d,
            items,
            assign,
            persistent,
            reduce,
            warps_per_block: block_dim / WARP_SIZE,
            lanes_per_item,
            items_per_block,
            block_stride_items: grid_blocks * items_per_block,
            cancel: self.cancel.as_ref(),
        };

        // Reusable merge state: the SM heap starts with every SM at zero
        // work (heapified in place over the retained storage) and sm_crit is
        // zeroed within capacity.
        let scratch = &mut self.scratch;
        let mut store = std::mem::take(&mut scratch.heap);
        store.clear();
        store.extend((0..d.sm_count).map(|sm| SmSlot { work: 0.0, sm }));
        let mut merge = Merge {
            heap: BinaryHeap::from(store),
            sm_crit: &mut scratch.sm_crit,
            total_u64: 0,
            total_f32: 0.0,
            accesses: 0,
        };
        merge.sm_crit.clear();
        merge.sm_crit.resize(d.sm_count, 0.0);

        // Blocks are mutually independent simulations; the only cross-block
        // state is the block-ordered merge, which always runs serially in
        // block index order. Parallelism is therefore purely a host-side
        // speedup and only taken when the kernel certified order-invariance.
        let workers = if deterministic_parallel {
            self.workers
        } else {
            1
        };
        if workers.min(grid_blocks) > 1 {
            // Pooled path: lease a parked team sized to the worker setting
            // (the calling thread participates, so the pool holds one less).
            let extra = workers - 1;
            if self.pool.as_ref().map(SimPool::extra_workers) != Some(extra) {
                if let Some(old) = self.pool.take() {
                    pool::give_back_sim_pool(old);
                }
                self.pool = Some(pool::lease_sim_pool(extra));
            }
            let team = self.pool.as_ref().expect("pool just leased");
            scratch.arena.clear();
            scratch.arena.resize(grid_blocks, BlockOutcome::default());
            let slots = SlotPtr(scratch.arena.as_mut_ptr());
            team.run_job(
                grid_blocks,
                &move |b, table| {
                    let out = run_block(&shape, b, kernel, epilogue, table);
                    // Safety: see `SlotPtr` — one writer per index, arena
                    // outlives the job.
                    unsafe { slots.publish(b, out) };
                },
                &mut scratch.table,
            );
            for out in &scratch.arena {
                merge.absorb(out);
            }
        } else {
            // Serial path: simulate and merge each block on the fly with the
            // Sim-owned scratch table — no outcome buffering at all.
            for b in 0..grid_blocks {
                let out = run_block(&shape, b, kernel, epilogue, &mut scratch.table);
                merge.absorb(&out);
            }
        }

        let kernel_time = merge
            .heap
            .iter()
            .map(|s| (s.work / d.warp_parallelism).max(merge.sm_crit[s.sm]))
            .fold(0.0f64, f64::max);
        let (total_u64, total_f32, accesses) = (merge.total_u64, merge.total_f32, merge.accesses);
        if indigo_obs::enabled() {
            use indigo_obs::{Counter, Hist};
            let launch_cycles = kernel_time + d.cost.launch;
            Counter::SimLaunches.incr();
            Counter::SimCycles.add(launch_cycles as u64);
            Counter::SimGlobalAccesses.add(accesses);
            Hist::LaunchCycles.record(launch_cycles as u64);
            // Occupancy imbalance: max per-SM work over the mean, permille.
            // 1000 = perfectly balanced; read before the heap is stowed.
            let (mut max_w, mut sum_w, mut n) = (0.0f64, 0.0f64, 0u32);
            for s in merge.heap.iter() {
                max_w = max_w.max(s.work);
                sum_w += s.work;
                n += 1;
            }
            if n > 0 && sum_w > 0.0 {
                Hist::SmImbalancePermille.record((max_w * f64::from(n) / sum_w * 1000.0) as u64);
            }
        }
        scratch.heap = merge.heap.into_vec();
        self.cycles += kernel_time + d.cost.launch;
        self.launches += 1;
        self.accesses += accesses;
        // a kernel launch boundary synchronizes the whole device: classify
        // and reset the sanitizer's shadow cells (no-op unless armed)
        indigo_exec::sanitize::region_flush();
        (total_u64, total_f32)
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool::give_back_sim_pool(pool);
        }
        CALLER_TABLE.with(|t| t.set(Some(std::mem::take(&mut self.scratch.table))));
    }
}

/// Block-ordered merge state: greedy least-loaded SM assignment and the
/// reduction totals see blocks in exactly the serial order, which is what
/// keeps cycles and `f32` sums bit-identical across worker counts (see
/// [`SmSlot`] for the heap/`min_by` equivalence).
struct Merge<'a> {
    heap: BinaryHeap<SmSlot>,
    sm_crit: &'a mut Vec<f64>,
    total_u64: u64,
    total_f32: f32,
    accesses: u64,
}

impl Merge<'_> {
    #[inline]
    fn absorb(&mut self, out: &BlockOutcome) {
        self.accesses += out.accesses;
        if !out.any {
            return;
        }
        let mut top = self.heap.peek_mut().expect("sm_count >= 1");
        top.work += out.cycles;
        let sm = top.sm;
        drop(top); // sift the updated SM back into heap order
        self.sm_crit[sm] = self.sm_crit[sm].max(out.longest_warp);
        self.total_u64 += out.sum_u64;
        self.total_f32 += out.sum_f32;
    }
}

/// Simulates one grid block: all its warp rounds, epilogues, and
/// reduction-style costs. `table` is the simulating thread's long-lived
/// scratch (cleared per warp round, capacity retained forever), so any host
/// thread may run any block without touching the allocator.
#[allow(clippy::too_many_lines)]
fn run_block<F, E>(
    shape: &LaunchShape<'_>,
    b: usize,
    kernel: &F,
    epilogue: Option<&E>,
    table: &mut StepTable,
) -> BlockOutcome
where
    F: Fn(&mut LaneCtx, usize) + Sync,
    E: Fn(&mut LaneCtx, usize) + Sync,
{
    if shape.assign == Assign::ThreadPerItem && shape.reduce.is_none() && epilogue.is_none() {
        return run_block_thread_fast(shape, b, kernel, table);
    }
    let c = shape.device.cost;
    let LaunchShape {
        items,
        assign,
        persistent,
        reduce,
        warps_per_block,
        lanes_per_item,
        items_per_block,
        block_stride_items,
        ..
    } = *shape;
    // cycles of a group-scratch reduction over `lanes` lanes
    let coop_cost = |lanes: usize| (lanes.max(2) as f64).log2() * c.shuffle_step;

    let accesses_before = table.recorded();
    let mut block_cycles = 0.0f64;
    let mut longest_warp = 0.0f64;
    let mut block_u64 = 0u64;
    let mut block_f32 = 0.0f32;
    let mut block_reduce_calls = 0usize;
    let mut block_any = false;

    let mut round = 0usize;
    loop {
        // cancellation point between grid-stride rounds (first round free)
        if round > 0 {
            if let Some(token) = shape.cancel {
                token.checkpoint();
            }
        }
        let mut round_any = false;
        // block-granularity scratch spans the whole round
        let mut round_scratch_u64 = 0u64;
        let mut round_scratch_f32 = 0.0f32;
        let mut round_item: Option<usize> = None;

        for w in 0..warps_per_block {
            table.clear();
            let mut warp_any = false;
            let mut warp_reduce_calls = 0usize;
            let mut warp_scratch_u64 = 0u64;
            let mut warp_scratch_f32 = 0.0f32;
            let mut warp_item: Option<usize> = None;

            for l in 0..WARP_SIZE {
                let mapped = map_lane(
                    assign,
                    items,
                    items_per_block,
                    block_stride_items,
                    b,
                    w,
                    round,
                    l,
                );
                let Some((item, lane_id)) = mapped else {
                    continue;
                };
                warp_any = true;
                round_any = true;
                let mut ctx = LaneCtx {
                    table: &mut *table,
                    ordinal: 0,
                    lane: lane_id,
                    lane_count: lanes_per_item,
                    red_u64: 0,
                    red_f32: 0.0,
                    red_calls: 0,
                    reduce,
                    scratch_u64: 0,
                    scratch_f32: 0.0,
                    group_u64: 0,
                    group_f32: 0.0,
                    #[cfg(feature = "sanitize")]
                    gtid: ((b * warps_per_block + w) * WARP_SIZE + l) as u64,
                };
                kernel(&mut ctx, item);
                // thread-granularity epilogue runs inline, its
                // scratch is lane-private
                if assign == Assign::ThreadPerItem {
                    if let Some(ep) = epilogue {
                        ctx.group_u64 = ctx.scratch_u64;
                        ctx.group_f32 = ctx.scratch_f32;
                        ep(&mut ctx, item);
                    }
                }
                warp_scratch_u64 += ctx.scratch_u64;
                warp_scratch_f32 += ctx.scratch_f32;
                warp_item = Some(item);
                block_u64 += ctx.red_u64;
                block_f32 += ctx.red_f32;
                warp_reduce_calls += ctx.red_calls;
            }

            // warp-granularity epilogue: one run per warp's item
            if assign == Assign::WarpPerItem && warp_any {
                if let Some(ep) = epilogue {
                    let item = warp_item.expect("warp had an item");
                    let ordinal = table.steps_used();
                    let mut ctx = LaneCtx {
                        table: &mut *table,
                        ordinal,
                        lane: 0,
                        lane_count: lanes_per_item,
                        red_u64: 0,
                        red_f32: 0.0,
                        red_calls: 0,
                        reduce,
                        scratch_u64: 0,
                        scratch_f32: 0.0,
                        group_u64: warp_scratch_u64,
                        group_f32: warp_scratch_f32,
                        // the epilogue runs as the warp's lane 0
                        #[cfg(feature = "sanitize")]
                        gtid: ((b * warps_per_block + w) * WARP_SIZE) as u64,
                    };
                    ep(&mut ctx, item);
                    block_u64 += ctx.red_u64;
                    block_f32 += ctx.red_f32;
                    warp_reduce_calls += ctx.red_calls;
                }
            }
            round_scratch_u64 += warp_scratch_u64;
            round_scratch_f32 += warp_scratch_f32;
            if warp_any {
                round_item = round_item.or(warp_item);
            }

            if warp_any {
                let mut wc = table.finalize(&c);
                if epilogue.is_some() && assign != Assign::ThreadPerItem {
                    wc += coop_cost(WARP_SIZE);
                }
                if warp_reduce_calls > 0 && matches!(reduce, Some((ReduceStyle::ReductionAdd, _))) {
                    wc += coop_cost(WARP_SIZE);
                }
                block_reduce_calls += warp_reduce_calls;
                block_cycles += wc;
                longest_warp = longest_warp.max(wc);
                block_any = true;
            }
        }

        // block-granularity epilogue: once per round, after a barrier
        if assign == Assign::BlockPerItem && round_any {
            if let Some(ep) = epilogue {
                let item = round_item.expect("round had an item");
                table.clear();
                let mut ctx = LaneCtx {
                    table: &mut *table,
                    ordinal: 0,
                    lane: 0,
                    lane_count: lanes_per_item,
                    red_u64: 0,
                    red_f32: 0.0,
                    red_calls: 0,
                    reduce,
                    scratch_u64: 0,
                    scratch_f32: 0.0,
                    group_u64: round_scratch_u64,
                    group_f32: round_scratch_f32,
                    // the epilogue runs after a barrier as the block's thread 0
                    #[cfg(feature = "sanitize")]
                    gtid: (b * warps_per_block * WARP_SIZE) as u64,
                };
                ep(&mut ctx, item);
                block_u64 += ctx.red_u64;
                block_f32 += ctx.red_f32;
                block_reduce_calls += ctx.red_calls;
                block_cycles +=
                    table.finalize(&c) + c.barrier + warps_per_block as f64 * c.shared_serial;
            }
        }

        round += 1;
        if !round_any || !persistent {
            break;
        }
    }

    if !block_any {
        return BlockOutcome::default();
    }
    // per-block epilogue for the block-cooperative reduction styles
    if block_reduce_calls > 0 {
        if let Some((style, kind)) = &reduce {
            let global_add = match LaneCtx::rmw_class(*kind) {
                AccessClass::CudaAtomicRmw => {
                    (c.atomic_issue + c.atomic_per_addr) * c.cuda_atomic_mult
                }
                _ => c.atomic_issue + c.atomic_per_addr,
            };
            match style {
                ReduceStyle::GlobalAdd => {}
                ReduceStyle::BlockAdd => {
                    block_cycles += c.barrier + global_add;
                }
                ReduceStyle::ReductionAdd => {
                    // two barriers (Listing 10c) + per-warp shared
                    // stores + the single global add
                    block_cycles +=
                        2.0 * c.barrier + warps_per_block as f64 * c.shared_serial + global_add;
                }
            }
        }
    }
    block_cycles += c.block_sched;

    BlockOutcome {
        cycles: block_cycles,
        longest_warp,
        sum_u64: block_u64,
        sum_f32: block_f32,
        accesses: table.recorded() - accesses_before,
        any: true,
    }
}

/// Streamlined [`run_block`] for the dominant launch shape — thread
/// granularity, no reduction, no cooperative epilogue. Skips the group
/// scratch, epilogue, and reduction bookkeeping entirely (all of which
/// contribute exactly zero cycles for this shape in the generic path, so
/// results stay bit-identical) and exploits that thread-granularity item
/// indices are monotonic in (warp, lane): the first out-of-range lane ends
/// the warp and the first out-of-range warp ends the round.
fn run_block_thread_fast<F>(
    shape: &LaunchShape<'_>,
    b: usize,
    kernel: &F,
    table: &mut StepTable,
) -> BlockOutcome
where
    F: Fn(&mut LaneCtx, usize) + Sync,
{
    let c = shape.device.cost;
    let accesses_before = table.recorded();
    let mut block_cycles = 0.0f64;
    let mut longest_warp = 0.0f64;
    let mut block_u64 = 0u64;
    let mut block_f32 = 0.0f32;
    let mut block_any = false;

    let mut round = 0usize;
    loop {
        // cancellation point between grid-stride rounds (first round free)
        if round > 0 {
            if let Some(token) = shape.cancel {
                token.checkpoint();
            }
        }
        let block_first_item = b * shape.items_per_block + round * shape.block_stride_items;
        if block_first_item >= shape.items {
            break; // an empty round ends persistent and one-shot grids alike
        }
        block_any = true;
        for w in 0..shape.warps_per_block {
            let warp_first_item = block_first_item + w * WARP_SIZE;
            if warp_first_item >= shape.items {
                break;
            }
            table.clear();
            let live_lanes = (shape.items - warp_first_item).min(WARP_SIZE);
            for l in 0..live_lanes {
                let mut ctx = LaneCtx {
                    table: &mut *table,
                    ordinal: 0,
                    lane: 0,
                    lane_count: 1,
                    red_u64: 0,
                    red_f32: 0.0,
                    red_calls: 0,
                    reduce: None,
                    scratch_u64: 0,
                    scratch_f32: 0.0,
                    group_u64: 0,
                    group_f32: 0.0,
                    #[cfg(feature = "sanitize")]
                    gtid: ((b * shape.warps_per_block + w) * WARP_SIZE + l) as u64,
                };
                kernel(&mut ctx, warp_first_item + l);
                block_u64 += ctx.red_u64;
                block_f32 += ctx.red_f32;
            }
            let wc = table.finalize(&c);
            block_cycles += wc;
            longest_warp = longest_warp.max(wc);
        }
        round += 1;
        if !shape.persistent {
            break;
        }
    }

    if !block_any {
        return BlockOutcome::default();
    }
    block_cycles += c.block_sched;
    BlockOutcome {
        cycles: block_cycles,
        longest_warp,
        sum_u64: block_u64,
        sum_f32: block_f32,
        accesses: table.recorded() - accesses_before,
        any: true,
    }
}

/// Maps (block, warp, round, lane-in-warp) to a work item and the lane's id
/// within the item's lane group. Returns `None` for idle lanes.
#[allow(clippy::too_many_arguments)]
fn map_lane(
    assign: Assign,
    items: usize,
    items_per_block: usize,
    block_stride_items: usize,
    block: usize,
    warp: usize,
    round: usize,
    lane: usize,
) -> Option<(usize, usize)> {
    let block_first_item = block * items_per_block + round * block_stride_items;
    let item = match assign {
        Assign::ThreadPerItem => block_first_item + warp * WARP_SIZE + lane,
        Assign::WarpPerItem => block_first_item + warp,
        Assign::BlockPerItem => block_first_item,
    };
    if item >= items {
        return None;
    }
    let lane_id = match assign {
        Assign::ThreadPerItem => 0,
        Assign::WarpPerItem => lane,
        Assign::BlockPerItem => warp * WARP_SIZE + lane,
    };
    Some((item, lane_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{rtx3090, titan_v};

    fn sim() -> Sim {
        Sim::new(titan_v())
    }

    // ---------- functional correctness ----------

    #[test]
    fn thread_map_touches_every_item_once() {
        for persistent in [false, true] {
            let mut s = sim();
            let out = GpuBuf::new(10_000, 0);
            s.launch(10_000, Assign::ThreadPerItem, persistent, |ctx, i| {
                ctx.atomic_add(&out, i, 1);
            });
            assert!(
                out.to_vec().iter().all(|&v| v == 1),
                "persistent={persistent}"
            );
        }
    }

    #[test]
    fn warp_map_gives_each_item_32_lanes() {
        for persistent in [false, true] {
            let mut s = sim();
            let out = GpuBuf::new(300, 0);
            s.launch(300, Assign::WarpPerItem, persistent, |ctx, i| {
                assert_eq!(ctx.lane_count(), 32);
                ctx.atomic_add(&out, i, 1);
            });
            assert!(
                out.to_vec().iter().all(|&v| v == 32),
                "persistent={persistent}"
            );
        }
    }

    #[test]
    fn block_map_gives_each_item_block_dim_lanes() {
        let mut s = sim();
        let bd = s.device().block_dim as u32;
        let out = GpuBuf::new(50, 0);
        s.launch(50, Assign::BlockPerItem, false, |ctx, i| {
            assert_eq!(ctx.lane_count(), bd as usize);
            ctx.atomic_add(&out, i, 1);
        });
        assert!(out.to_vec().iter().all(|&v| v == bd));
    }

    #[test]
    fn block_map_persistent_covers_all_items() {
        let mut s = sim();
        let items = s.device().sm_count * s.device().resident_blocks_per_sm * 3 + 7;
        let out = GpuBuf::new(items, 0);
        s.launch(items, Assign::BlockPerItem, true, |ctx, i| {
            if ctx.lane() == 0 {
                ctx.atomic_add(&out, i, 1);
            }
        });
        assert!(out.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn lane_ids_partition_the_group() {
        let mut s = sim();
        let seen = GpuBuf::new(32, 0);
        s.launch(1, Assign::WarpPerItem, false, |ctx, _| {
            ctx.atomic_add(&seen, ctx.lane(), 1);
        });
        assert!(seen.to_vec().iter().all(|&v| v == 1));
    }

    #[test]
    fn reductions_are_exact_in_every_style() {
        for style in [
            ReduceStyle::GlobalAdd,
            ReduceStyle::BlockAdd,
            ReduceStyle::ReductionAdd,
        ] {
            let mut s = sim();
            let total = s.launch_reduce_u64(
                5000,
                Assign::ThreadPerItem,
                false,
                style,
                BufKind::Atomic,
                |ctx, i| ctx.reduce_add_u64(i as u64),
            );
            assert_eq!(total, (0..5000u64).sum::<u64>(), "{style:?}");
        }
    }

    #[test]
    fn f32_reduction_sums() {
        let mut s = sim();
        let total = s.launch_reduce_f32(
            1000,
            Assign::ThreadPerItem,
            false,
            ReduceStyle::ReductionAdd,
            BufKind::Atomic,
            |ctx, _| ctx.reduce_add_f32(0.5),
        );
        assert!((total - 500.0).abs() < 1e-3);
    }

    #[test]
    fn coop_scratch_sums_per_group() {
        // every lane contributes its lane id; the epilogue must see the
        // group total and can publish it
        for assign in [
            Assign::ThreadPerItem,
            Assign::WarpPerItem,
            Assign::BlockPerItem,
        ] {
            let mut s = sim();
            let out = GpuBuf::new(40, 0);
            let lanes = match assign {
                Assign::ThreadPerItem => 1usize,
                Assign::WarpPerItem => 32,
                Assign::BlockPerItem => s.device().block_dim,
            };
            let expect: u64 = (0..lanes as u64).sum::<u64>() + 7;
            s.launch_coop(
                40,
                assign,
                false,
                None,
                |ctx, _| {
                    ctx.scratch_add_u64(ctx.lane() as u64);
                    if ctx.lane() == 0 {
                        ctx.scratch_add_u64(7);
                    }
                },
                |ctx, i| {
                    let total = ctx.group_u64() as u32;
                    ctx.st(&out, i, total);
                },
            );
            assert!(
                out.to_vec().iter().all(|&v| v as u64 == expect),
                "{assign:?}: {:?} != {expect}",
                out.host_read(0)
            );
        }
    }

    #[test]
    fn coop_epilogue_runs_once_per_item() {
        for (assign, items) in [
            (Assign::ThreadPerItem, 100usize),
            (Assign::WarpPerItem, 100),
            (Assign::BlockPerItem, 20),
        ] {
            for persistent in [false, true] {
                let mut s = sim();
                let count = GpuBuf::new(items, 0);
                s.launch_coop(
                    items,
                    assign,
                    persistent,
                    None,
                    |_, _| {},
                    |ctx, i| {
                        ctx.atomic_add(&count, i, 1);
                    },
                );
                assert!(
                    count.to_vec().iter().all(|&v| v == 1),
                    "{assign:?} persistent={persistent}"
                );
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let mut s = sim();
            let buf = GpuBuf::new(1000, u32::MAX).with_kind(BufKind::Atomic);
            s.launch(1000, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.atomic_min(&buf, (i * 7) % 1000, i as u32);
            });
            (s.elapsed_cycles(), buf.to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_items_costs_only_launch() {
        let mut s = sim();
        s.launch(0, Assign::ThreadPerItem, false, |_, _| panic!("no items"));
        assert_eq!(s.elapsed_cycles(), s.device().cost.launch);
    }

    // ---------- cost-model shape calibration ----------

    /// Coalesced (lane i → element i) vs scattered (lane i → element 4096 i)
    /// loads: the paper's §2.12 coalescing argument.
    #[test]
    fn coalesced_loads_beat_scattered() {
        let n = 1 << 20;
        let data = GpuBuf::new(n, 0);
        let mut coal = sim();
        coal.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        let mut scat = sim();
        scat.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, (i * 128) % data.len());
        });
        let ratio = scat.elapsed_cycles() / coal.elapsed_cycles();
        assert!(ratio > 4.0, "scattered/coalesced = {ratio}");
    }

    /// Fig 1: classic atomics vs default `cuda::atomic`, with the TITAN V
    /// suffering roughly an order of magnitude more than the RTX 3090.
    #[test]
    fn cuda_atomic_penalty_orders_devices_like_fig1() {
        let run = |dev: Device, kind: BufKind| {
            let n = 1 << 16;
            let mut s = Sim::new(dev);
            let dist = GpuBuf::new(n, u32::MAX).with_kind(kind);
            s.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
                let v = ctx.ld(&dist, (i + 1) % n);
                ctx.atomic_min(&dist, i, v.min(i as u32));
            });
            s.elapsed_cycles()
        };
        let tv_ratio = run(titan_v(), BufKind::CudaAtomic) / run(titan_v(), BufKind::Atomic);
        let rtx_ratio = run(rtx3090(), BufKind::CudaAtomic) / run(rtx3090(), BufKind::Atomic);
        assert!(tv_ratio > 30.0, "TitanV ratio {tv_ratio}");
        assert!(rtx_ratio > 3.0 && rtx_ratio < 30.0, "RTX ratio {rtx_ratio}");
        assert!(
            tv_ratio > 4.0 * rtx_ratio,
            "device asymmetry lost: {tv_ratio} vs {rtx_ratio}"
        );
    }

    /// §5.8: warp granularity wins on skewed inner loops, thread granularity
    /// wins on uniform small ones.
    #[test]
    fn granularity_tracks_inner_loop_skew() {
        // skewed: item 0 has a huge inner loop, the rest tiny
        let items = 2048;
        let work = |i: usize| if i == 0 { 20_000 } else { 4 };
        let data = GpuBuf::new(32_768, 1);
        let run = |assign: Assign| {
            let mut s = sim();
            s.launch(items, assign, false, |ctx, i| {
                let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                let mut k = lane;
                while k < work(i) {
                    ctx.ld(&data, k % data.len());
                    k += lanes;
                }
            });
            s.elapsed_cycles()
        };
        let thread = run(Assign::ThreadPerItem);
        let warp = run(Assign::WarpPerItem);
        assert!(warp < thread, "skew: warp {warp} must beat thread {thread}");

        // uniform low-degree: thread must win (warp wastes 31 lanes)
        let uniform = |assign: Assign| {
            let mut s = sim();
            s.launch(items, assign, false, |ctx, _| {
                let (lane, lanes) = (ctx.lane(), ctx.lane_count());
                let mut k = lane;
                while k < 4 {
                    ctx.ld(&data, k);
                    k += lanes;
                }
            });
            s.elapsed_cycles()
        };
        assert!(uniform(Assign::ThreadPerItem) < uniform(Assign::BlockPerItem));
    }

    /// §5.7: persistent ≈ non-persistent when nothing is precomputed
    /// (ratios "very close to 1" in Fig 8).
    #[test]
    fn persistent_close_to_non_persistent() {
        let data = GpuBuf::new(1 << 16, 1);
        let run = |persistent: bool| {
            let mut s = sim();
            s.launch(1 << 16, Assign::ThreadPerItem, persistent, |ctx, i| {
                ctx.ld(&data, i);
            });
            s.elapsed_cycles()
        };
        let ratio = run(true) / run(false);
        assert!((0.5..2.0).contains(&ratio), "persistent/non = {ratio}");
    }

    /// §5.9 ordering for sum-heavy kernels: reduction-add fastest,
    /// block-add slowest (its shared-atomic serialization + barrier cannot
    /// offset the aggregated global adds).
    #[test]
    fn reduction_style_ordering_matches_fig10() {
        let run = |style: ReduceStyle| {
            let mut s = sim();
            s.launch_reduce_u64(
                1 << 15,
                Assign::ThreadPerItem,
                false,
                style,
                BufKind::Atomic,
                |ctx, _| ctx.reduce_add_u64(1),
            );
            s.elapsed_cycles()
        };
        let global = run(ReduceStyle::GlobalAdd);
        let block = run(ReduceStyle::BlockAdd);
        let reduction = run(ReduceStyle::ReductionAdd);
        assert!(
            reduction < global,
            "reduction {reduction} < global {global}"
        );
        assert!(global < block, "global {global} < block {block}");
    }

    // ---------- supervision: cancellation, budgets, fault injection ----------

    #[test]
    fn fired_token_cancels_at_next_launch_boundary() {
        let token = CancelToken::new();
        let mut s = sim();
        s.set_cancel(token.clone());
        let data = GpuBuf::new(64, 0);
        s.launch(64, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        token.fire("watchdog says stop");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.launch(64, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.ld(&data, i);
            });
        }))
        .unwrap_err();
        let c = indigo_cancel::as_cancelled(err.as_ref()).expect("Cancelled payload");
        assert_eq!(c.reason, "watchdog says stop");
    }

    #[test]
    fn cycle_budget_cancels_runaway_launch_sequences() {
        let mut s = sim();
        let data = GpuBuf::new(1 << 14, 0);
        s.launch(1 << 14, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        let spent = s.elapsed_cycles();
        s.set_cycle_budget(spent * 1.5);
        // second launch pushes past the budget; the third must unwind
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
            s.launch(1 << 14, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.ld(&data, i);
            });
        }))
        .unwrap_err();
        let c = indigo_cancel::as_cancelled(err.as_ref()).expect("Cancelled payload");
        assert!(c.reason.contains("simulated-cycle budget"), "{}", c.reason);
    }

    #[test]
    fn armed_panic_fault_triggers_at_its_launch_ordinal() {
        let mut s = sim();
        s.arm_fault(FaultPlan::new(crate::fault::FaultKind::Panic, 1));
        let data = GpuBuf::new(8, 0);
        s.launch(8, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.launch(8, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.ld(&data, i);
            });
        }))
        .unwrap_err();
        assert!(indigo_cancel::payload_text(err.as_ref()).contains("injected fault"));
    }

    #[test]
    fn persistent_round_loop_is_cancellable() {
        // fire the token up-front: the persistent kernel's first round runs,
        // the round-1 boundary check must unwind before an infinite spin
        let token = CancelToken::new();
        token.fire("stop the grid-stride loop");
        let mut s = sim();
        s.cancel = Some(token);
        let items = s.device().sm_count * s.device().resident_blocks_per_sm * 64;
        let data = GpuBuf::new(items, 0);
        // bypass the launch-boundary check (token is already fired) by
        // clearing it for the supervise call only: supervise() fires first,
        // so instead verify the whole launch unwinds as a cancellation
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.launch(items, Assign::ThreadPerItem, true, |ctx, i| {
                ctx.ld(&data, i);
            });
        }))
        .unwrap_err();
        assert!(indigo_cancel::as_cancelled(err.as_ref()).is_some());
    }

    #[test]
    fn clock_accumulates_across_launches() {
        let mut s = sim();
        let data = GpuBuf::new(64, 0);
        s.launch(64, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        let one = s.elapsed_cycles();
        s.launch(64, Assign::ThreadPerItem, false, |ctx, i| {
            ctx.ld(&data, i);
        });
        assert!((s.elapsed_cycles() - 2.0 * one).abs() < 1e-9);
        assert_eq!(s.launches(), 2);
        s.reset_clock();
        assert_eq!(s.elapsed_cycles(), 0.0);
    }
}
