//! Hand-rolled HTTP/1.1, just enough for the query API (DESIGN.md §7.8,
//! §7.9).
//!
//! The server speaks a deliberately small subset: `GET` requests with query
//! strings and JSON bodies only. Since PR 8 responses default to
//! `Connection: keep-alive` so one TCP connection can carry many requests
//! (and pipelined requests parse back-to-back out of one buffer); a request
//! or response can still opt out with `Connection: close`. There is no
//! chunking or percent-decoding — robustness comes from strict caps (8 KiB
//! of headers) and from every malformed input mapping to a structured 400
//! rather than a panic or a hang.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest request head (request line + headers) the server will read.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Longest client-supplied `X-Request-Id` the server will echo.
pub const MAX_REQUEST_ID_BYTES: usize = 64;

/// Keeps the characters of a client-supplied request ID that are safe to
/// echo into a header and a JSON body (alphanumerics plus `-_.:`), capped
/// at [`MAX_REQUEST_ID_BYTES`]. Returns `None` when nothing survives.
fn sanitize_request_id(raw: &str) -> Option<String> {
    let cleaned: String = raw
        .trim()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
        .take(MAX_REQUEST_ID_BYTES)
        .collect();
    if cleaned.is_empty() {
        None
    } else {
        Some(cleaned)
    }
}

/// A parsed request line: method, path, and split query parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET` is the only one the router accepts).
    pub method: String,
    /// Path without the query string (`/run`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub params: Vec<(String, String)>,
    /// The client asked for `Connection: close` (or spoke HTTP/1.0).
    pub close: bool,
    /// Client-supplied `X-Request-Id`, sanitized (token characters only,
    /// capped at [`MAX_REQUEST_ID_BYTES`]). The server echoes it back so a
    /// caller's own correlation IDs survive the round trip; absent, the
    /// server assigns one (DESIGN.md §7.10).
    pub request_id: Option<String>,
}

impl Request {
    /// First value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a request head (everything before the blank line).
    pub fn parse(head: &str) -> Result<Request, String> {
        let line = head.lines().next().ok_or("empty request")?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or("missing method")?.to_string();
        let target = parts.next().ok_or("missing request target")?;
        let version = match parts.next() {
            Some(v) if v.starts_with("HTTP/1.") => v,
            _ => return Err("not an HTTP/1.x request".into()),
        };
        // HTTP/1.0 has no keep-alive by default; 1.1 keeps alive unless the
        // client says otherwise
        let mut close = version == "HTTP/1.0";
        let mut request_id = None;
        for h in head.lines().skip(1) {
            if let Some((k, v)) = h.split_once(':') {
                if k.eq_ignore_ascii_case("connection") {
                    let v = v.trim();
                    if v.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if v.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                } else if k.eq_ignore_ascii_case("x-request-id") {
                    request_id = sanitize_request_id(v);
                }
            }
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = query
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();
        Ok(Request {
            method,
            path: path.to_string(),
            params,
            close,
            request_id,
        })
    }
}

/// Index just *past* the head terminator (`\r\n\r\n` or `\n\n`) in `buf`,
/// or `None` while the head is still incomplete. The reactor calls this on
/// every read so a request is dispatched the moment its head lands, and
/// pipelined bytes after the terminator stay in the buffer for the next
/// request.
pub fn head_end(buf: &[u8]) -> Option<usize> {
    // scan once; \n\n also terminates so bare-LF clients work
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Reads a request head off `stream` (up to the terminator). Blocking-path
/// helper; the reactor parses incrementally with [`head_end`] instead.
/// Returns the parsed request plus any pipelined bytes read past the head.
pub fn read_request(stream: &mut TcpStream) -> Result<(Request, Vec<u8>), String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let end = loop {
        if let Some(end) = head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read error: {e}"))?;
        if n == 0 {
            return Err("connection closed before request was complete".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..end]);
    let req = Request::parse(&head)?;
    Ok((req, buf[end..].to_vec()))
}

/// A response about to be written: status, JSON body, optional
/// `Retry-After` advice (seconds) for 429/503 sheds, and whether the
/// connection closes after it.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
    /// `Retry-After` header value in seconds, when shedding.
    pub retry_after: Option<u64>,
    /// Close the connection after this response (sheds and malformed
    /// requests do; everything else keeps the connection alive).
    pub close: bool,
    /// `X-Request-Id` echoed on every response (DESIGN.md §7.10).
    pub request_id: Option<String>,
    /// `Content-Type` header value (`application/json` for the query API;
    /// `/metrics` overrides with the Prometheus text type).
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response (keep-alive by default).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
            retry_after: None,
            close: false,
            request_id: None,
            content_type: "application/json",
        }
    }

    /// A plain-text response (Prometheus exposition uses
    /// `text/plain; version=0.0.4`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            ..Response::json(status, body)
        }
    }

    /// Attaches the request ID to echo as `X-Request-Id`.
    pub fn with_request_id(mut self, id: impl Into<String>) -> Response {
        self.request_id = Some(id.into());
        self
    }

    /// Attaches `Retry-After` advice.
    pub fn with_retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }

    /// Marks the response as connection-closing.
    pub fn with_close(mut self) -> Response {
        self.close = true;
        self
    }

    /// Serializes the full response (head + body).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" }
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        if let Some(id) = &self.request_id {
            head.push_str(&format!("X-Request-Id: {id}\r\n"));
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(self.body.as_bytes());
        out
    }

    /// Writes and flushes the response.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        stream.write_all(&self.to_bytes())?;
        stream.flush()
    }
}

/// Reason phrase for the status codes the server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_with_query_params() {
        let r = Request::parse("GET /run?algo=bfs&graph=rmat&empty HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/run");
        assert_eq!(r.param("algo"), Some("bfs"));
        assert_eq!(r.param("graph"), Some("rmat"));
        assert_eq!(r.param("empty"), Some(""));
        assert_eq!(r.param("absent"), None);
        assert!(!r.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let c = Request::parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(c.close);
        let old = Request::parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(old.close);
        let revived = Request::parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!revived.close);
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for bad in ["", "GET", "GET /x", "GET /x SMTP/9", "\r\n\r\n"] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn head_end_finds_both_terminators_and_keeps_pipelined_bytes() {
        assert_eq!(head_end(b"GET / HTTP/1.1"), None);
        assert_eq!(head_end(b"GET / HTTP/1.1\r\n\r"), None);
        let buf = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let end = head_end(buf).unwrap();
        assert_eq!(&buf[..end], b"GET /a HTTP/1.1\r\n\r\n");
        assert!(head_end(&buf[end..]).is_some(), "second request intact");
        assert_eq!(head_end(b"GET / HTTP/1.1\n\n"), Some(16));
    }

    #[test]
    fn response_head_carries_length_and_retry_after() {
        let resp = Response::json(429, "{\"status\":\"shed\"}")
            .with_retry_after(3)
            .with_close();
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 17\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"status\":\"shed\"}"));
    }

    #[test]
    fn responses_keep_alive_by_default() {
        let text = String::from_utf8(Response::json(200, "{}").to_bytes()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn request_id_is_parsed_sanitized_and_capped() {
        let r = Request::parse("GET / HTTP/1.1\r\nX-Request-Id: client-7.a_b:c\r\n\r\n").unwrap();
        assert_eq!(r.request_id.as_deref(), Some("client-7.a_b:c"));
        // header-injection and control characters are stripped, not echoed
        let evil = Request::parse("GET / HTTP/1.1\r\nx-request-id: a b\"<>\r\n\r\n").unwrap();
        assert_eq!(evil.request_id.as_deref(), Some("ab"));
        let blank = Request::parse("GET / HTTP/1.1\r\nX-Request-Id: \"\"\r\n\r\n").unwrap();
        assert_eq!(blank.request_id, None);
        let long = format!(
            "GET / HTTP/1.1\r\nX-Request-Id: {}\r\n\r\n",
            "x".repeat(500)
        );
        let capped = Request::parse(&long).unwrap();
        assert_eq!(capped.request_id.unwrap().len(), MAX_REQUEST_ID_BYTES);
        let none = Request::parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(none.request_id, None);
    }

    #[test]
    fn responses_echo_the_request_id_header() {
        let resp = Response::json(200, "{}").with_request_id("abc-123");
        let text = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(text.contains("X-Request-Id: abc-123\r\n"));
        let bare = String::from_utf8(Response::json(200, "{}").to_bytes()).unwrap();
        assert!(!bare.contains("X-Request-Id"));
    }

    #[test]
    fn text_responses_carry_the_exposition_content_type() {
        let text = String::from_utf8(Response::text(200, "x 1\n").to_bytes()).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        let json = String::from_utf8(Response::json(200, "{}").to_bytes()).unwrap();
        assert!(json.contains("Content-Type: application/json\r\n"));
    }
}
