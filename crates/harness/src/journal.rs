//! The append-only checkpoint journal (DESIGN.md §7.3).
//!
//! Every completed measurement cell is appended as one JSONL line keyed by
//! a deterministic [`fingerprint`] of everything that determines its result
//! — variant name, graph, target, scale, repetition count, verification
//! flag, and the simulator's cost-model version. `indigo-exp --resume`
//! preloads the journal and skips recorded cells, replaying their outcomes;
//! because successful cells store the throughput as exact `f64` bits, a
//! resumed run's final CSVs are byte-identical to an uninterrupted one.
//!
//! The format is deliberately boring: flat JSON objects, one per line,
//! emitted and parsed by ~100 lines of code in this module (the workspace
//! is dependency-free by design — no serde). A line is self-describing, so
//! `grep`/`jq` work on journals, and a truncated final line (the signature
//! of a `SIGKILL` mid-append) is skipped on load rather than failing the
//! resume.

use crate::outcome::{CellOutcome, CellRecord};
use indigo_graph::gen::Scale;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Journal format version; bump on incompatible line-shape changes.
pub const JOURNAL_VERSION: u32 = 1;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic identity of one measurement cell.
///
/// The fingerprint hashes a canonical `key=value` string — not a struct
/// layout — so it is independent of field ordering in the journal line and
/// stable across program versions as long as the semantics are unchanged.
/// [`indigo_gpusim::COST_MODEL_VERSION`] is folded in so a journal written
/// under one cost calibration can never resume into a recalibrated run.
pub fn fingerprint(
    scale: Scale,
    reps: usize,
    verify: bool,
    variant: &str,
    graph: &str,
    target: &str,
) -> u64 {
    let canonical = format!(
        "indigo-cell-v{JOURNAL_VERSION}|cost={}|scale={scale:?}|reps={reps}|verify={verify}|variant={variant}|graph={graph}|target={target}",
        indigo_gpusim::COST_MODEL_VERSION
    );
    fnv1a64(canonical.as_bytes())
}

/// One parsed journal line: the cell identity plus its stored outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Cell fingerprint ([`fingerprint`]).
    pub fp: u64,
    /// Variant name, for humans reading the journal.
    pub variant: String,
    /// Graph label.
    pub graph: String,
    /// Target label.
    pub target: String,
    /// Stored outcome.
    pub outcome: JournalOutcome,
}

/// The outcome payload of a journal line. `Ok` keeps the throughput as raw
/// `f64` bits so replayed measurements are exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalOutcome {
    /// Completed cell: exact geps bits + iteration count.
    Ok {
        /// `f64::to_bits` of the measured geps.
        geps_bits: u64,
        /// Convergence iterations.
        iterations: usize,
    },
    /// Panicked cell.
    Crashed {
        /// Rendered panic payload.
        payload: String,
    },
    /// Cancelled cell.
    TimedOut {
        /// Wall-clock budget, when that fired.
        budget_secs: Option<f64>,
        /// Cancellation reason.
        reason: String,
    },
    /// Quarantined cell.
    WrongAnswer {
        /// Verifier detail.
        detail: String,
    },
}

/// Serializes one completed cell as a journal line (no trailing newline).
pub fn emit_line(r: &CellRecord) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"v\":{JOURNAL_VERSION},\"fp\":\"{:016x}\",\"variant\":{},\"graph\":{},\"target\":{},\"outcome\":\"{}\"",
        r.fingerprint,
        json_str(&r.variant),
        json_str(r.graph),
        json_str(&r.target),
        r.outcome.label()
    );
    match &r.outcome {
        CellOutcome::Ok(m) => {
            // `geps` is informational (grep-ability); `geps_bits` is the
            // exact value replayed on resume
            let _ = write!(
                s,
                ",\"geps_bits\":\"{:016x}\",\"geps\":{},\"iterations\":{}",
                m.geps.to_bits(),
                json_num(m.geps),
                m.iterations
            );
        }
        CellOutcome::Crashed { payload } => {
            let _ = write!(s, ",\"payload\":{}", json_str(payload));
        }
        CellOutcome::TimedOut {
            budget_secs,
            reason,
        } => {
            if let Some(b) = budget_secs {
                let _ = write!(s, ",\"budget_secs\":{}", json_num(*b));
            }
            let _ = write!(s, ",\"reason\":{}", json_str(reason));
        }
        CellOutcome::WrongAnswer { detail } => {
            let _ = write!(s, ",\"detail\":{}", json_str(detail));
        }
    }
    s.push('}');
    s
}

/// Parses one journal line.
pub fn parse_line(line: &str) -> Result<JournalEntry, String> {
    let fields = parse_flat_json(line)?;
    let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    let str_field = |k: &str| -> Result<String, String> {
        match get(k) {
            Some(JsonVal::Str(s)) => Ok(s.clone()),
            _ => Err(format!("journal line missing string field `{k}`")),
        }
    };
    match get("v") {
        Some(JsonVal::Num(v)) if *v == JOURNAL_VERSION as f64 => {}
        _ => return Err("journal line has unsupported version".into()),
    }
    let fp = u64::from_str_radix(&str_field("fp")?, 16)
        .map_err(|_| "journal `fp` is not a hex u64".to_string())?;
    let outcome_label = str_field("outcome")?;
    let outcome = match outcome_label.as_str() {
        "ok" => {
            let bits = u64::from_str_radix(&str_field("geps_bits")?, 16)
                .map_err(|_| "journal `geps_bits` is not a hex u64".to_string())?;
            let iterations = match get("iterations") {
                Some(JsonVal::Num(n)) if *n >= 0.0 => *n as usize,
                _ => return Err("journal line missing numeric `iterations`".into()),
            };
            JournalOutcome::Ok {
                geps_bits: bits,
                iterations,
            }
        }
        "crashed" => JournalOutcome::Crashed {
            payload: str_field("payload")?,
        },
        "timed-out" => JournalOutcome::TimedOut {
            budget_secs: match get("budget_secs") {
                Some(JsonVal::Num(n)) => Some(*n),
                _ => None,
            },
            reason: str_field("reason")?,
        },
        "wrong-answer" => JournalOutcome::WrongAnswer {
            detail: str_field("detail")?,
        },
        other => return Err(format!("unknown journal outcome `{other}`")),
    };
    Ok(JournalEntry {
        fp,
        variant: str_field("variant")?,
        graph: str_field("graph")?,
        target: str_field("target")?,
        outcome,
    })
}

/// Loads a journal into a fingerprint-keyed map. Malformed lines are
/// tolerated (counted, not fatal): a run killed mid-append leaves a
/// truncated final line, and resume must survive exactly that. Later
/// entries win on duplicate fingerprints.
pub fn load(path: &Path) -> std::io::Result<(HashMap<u64, JournalEntry>, usize)> {
    let file = File::open(path)?;
    let mut map = HashMap::new();
    let mut skipped = 0usize;
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line) {
            Ok(entry) => {
                map.insert(entry.fp, entry);
            }
            Err(_) => skipped += 1,
        }
    }
    Ok((map, skipped))
}

/// Exclusive-ownership lockfile guarding a journal against concurrent
/// appenders.
///
/// Two processes appending to the same journal would interleave half-lines
/// and corrupt entries that the torn-tail machinery cannot repair (it only
/// protects the *final* line). The lock is a sibling `<journal>.lock` file
/// created with `O_EXCL` and holding the owner's PID. A second acquirer
/// fails fast with an error naming the holder. A lock whose owner is no
/// longer alive (the signature of a `SIGKILL`ed run) is stale and is
/// silently reclaimed — crash-only restart must not require manual cleanup.
pub struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    /// The lockfile path guarding `journal` (`<journal>.lock`).
    pub fn path_for(journal: &Path) -> PathBuf {
        let mut os = journal.as_os_str().to_owned();
        os.push(".lock");
        PathBuf::from(os)
    }

    /// Acquires the lock for `journal`, reclaiming a stale one.
    ///
    /// Errors with `ErrorKind::Other` naming the holding PID when another
    /// live process owns the lock.
    pub fn acquire(journal: &Path) -> std::io::Result<JournalLock> {
        let lock_path = Self::path_for(journal);
        for attempt in 0..2 {
            match OpenOptions::new()
                .write(true)
                .create_new(true) // O_EXCL: atomic create-or-fail
                .open(&lock_path)
            {
                Ok(mut f) => {
                    writeln!(f, "{}", std::process::id())?;
                    return Ok(JournalLock { path: lock_path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&lock_path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let stale = match holder {
                        Some(pid) => !pid_is_alive(pid),
                        None => true, // unreadable/garbage lockfile: stale
                    };
                    if stale && attempt == 0 {
                        std::fs::remove_file(&lock_path).ok();
                        continue; // retry the O_EXCL create once
                    }
                    let who = holder
                        .map(|pid| format!("process {pid}"))
                        .unwrap_or_else(|| "an unknown process".into());
                    return Err(std::io::Error::other(format!(
                        "journal {} is locked by {who} ({}); concurrent appends \
                         would interleave — wait for it or pick another journal",
                        journal.display(),
                        lock_path.display()
                    )));
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("lock acquire loop always returns");
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Best-effort liveness probe for a lock-holding PID. Own PID counts as
/// alive (a second in-process acquirer is still a conflict). On Linux the
/// probe is `/proc/<pid>`; elsewhere unknown PIDs are conservatively
/// presumed alive, so stale locks need manual removal there.
fn pid_is_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Thread-safe append-only journal writer; one flush per line so a killed
/// run loses at most the line being written. Holds the [`JournalLock`] for
/// its lifetime, so at most one `Journal` (per machine) appends to a path.
pub struct Journal {
    out: Mutex<BufWriter<File>>,
    _lock: JournalLock,
}

impl Journal {
    /// Opens `path` for appending (creating it if absent).
    ///
    /// A run killed mid-append leaves a torn final line with no trailing
    /// newline; appending straight after it would merge the fragment with
    /// the next entry and corrupt *both*. If the file doesn't end at a line
    /// boundary, a newline is written first so the torn fragment stays an
    /// isolated (skippable) line.
    pub fn append_to(path: &Path) -> std::io::Result<Journal> {
        let lock = JournalLock::acquire(path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len > 0 {
            use std::io::{Read, Seek, SeekFrom};
            let mut last = [0u8; 1];
            file.seek(SeekFrom::Start(len - 1))?;
            file.read_exact(&mut last)?;
            if last != *b"\n" {
                file.write_all(b"\n")?;
            }
        }
        Ok(Journal {
            out: Mutex::new(BufWriter::new(file)),
            _lock: lock,
        })
    }

    /// Appends one completed cell and flushes.
    pub fn record(&self, r: &CellRecord) -> std::io::Result<()> {
        let started = if indigo_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let line = emit_line(r);
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos() as u64;
            indigo_obs::Counter::JournalAppends.incr();
            indigo_obs::Counter::JournalAppendNanos.add(nanos);
            indigo_obs::Hist::JournalAppendMicros.record(nanos / 1_000);
        }
        Ok(())
    }

    /// Appends a batch of completed cells under one lock with one flush —
    /// the amortization the serve-path batch former exists for. Durability
    /// is the same as [`Journal::record`] per *batch*: a kill mid-append
    /// loses at most this batch's tail lines, each of which is torn-tail
    /// recoverable on load.
    pub fn record_all(&self, records: &[&CellRecord]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let started = if indigo_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut buf = String::with_capacity(records.len() * 160);
        for r in records {
            buf.push_str(&emit_line(r));
            buf.push('\n');
        }
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        out.write_all(buf.as_bytes())?;
        out.flush()?;
        if let Some(t0) = started {
            let nanos = t0.elapsed().as_nanos() as u64;
            indigo_obs::Counter::JournalAppends.add(records.len() as u64);
            indigo_obs::Counter::JournalAppendNanos.add(nanos);
            indigo_obs::Hist::JournalAppendMicros.record(nanos / 1_000);
        }
        Ok(())
    }
}

// ---- minimal flat-JSON machinery -----------------------------------------

enum JsonVal {
    Str(String),
    Num(f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into() // JSON has no NaN/inf; the bits field carries the truth
    }
}

/// Parses a single flat JSON object (string/number/bool/null values only —
/// exactly what [`emit_line`] produces). Unknown keys pass through.
fn parse_flat_json(s: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let mut chars = s.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ => return Err("expected key string or `}`".into()),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after key `{key}`"));
        }
        skip_ws(&mut chars);
        let val = match chars.peek() {
            Some('"') => JsonVal::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') | Some('n') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonVal::Bool(true),
                    "false" => JsonVal::Bool(false),
                    "null" => JsonVal::Null,
                    w => return Err(format!("unexpected literal `{w}`")),
                }
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let num: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                JsonVal::Num(num.parse().map_err(|_| format!("bad number `{num}`"))?)
            }
            _ => return Err(format!("unsupported value for key `{key}`")),
        };
        fields.push((key, val));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err("expected `,` or `}`".into()),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape `\\{other:?}`")),
            },
            Some(c) => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Measurement;
    use indigo_styles::{Algorithm, Model, StyleConfig};

    fn sample_record(outcome: CellOutcome) -> CellRecord {
        CellRecord {
            fingerprint: fingerprint(Scale::Tiny, 1, true, "bfs_cpp", "Grid2d", "sys1"),
            variant: "bfs_cpp".into(),
            graph: "Grid2d",
            target: "sys1".into(),
            outcome,
            resumed: false,
        }
    }

    fn sample_measurement(geps: f64) -> Measurement {
        Measurement {
            cfg: StyleConfig::baseline(Algorithm::Bfs, Model::Cpp),
            graph: "Grid2d",
            target: "sys1".into(),
            geps,
            iterations: 7,
        }
    }

    #[test]
    fn fnv_vectors() {
        // standard FNV-1a 64 test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let base = fingerprint(Scale::Tiny, 1, true, "v", "g", "t");
        assert_eq!(base, fingerprint(Scale::Tiny, 1, true, "v", "g", "t"));
        assert_ne!(base, fingerprint(Scale::Small, 1, true, "v", "g", "t"));
        assert_ne!(base, fingerprint(Scale::Tiny, 2, true, "v", "g", "t"));
        assert_ne!(base, fingerprint(Scale::Tiny, 1, false, "v", "g", "t"));
        assert_ne!(base, fingerprint(Scale::Tiny, 1, true, "w", "g", "t"));
        assert_ne!(base, fingerprint(Scale::Tiny, 1, true, "v", "h", "t"));
        assert_ne!(base, fingerprint(Scale::Tiny, 1, true, "v", "g", "u"));
    }

    #[test]
    fn ok_roundtrips_with_exact_bits() {
        // an "ugly" float that plain decimal printing could distort
        let geps = f64::from_bits(0x3fb9_9999_9999_999a);
        let rec = sample_record(CellOutcome::Ok(sample_measurement(geps)));
        let entry = parse_line(&emit_line(&rec)).unwrap();
        assert_eq!(entry.fp, rec.fingerprint);
        assert_eq!(entry.variant, "bfs_cpp");
        match entry.outcome {
            JournalOutcome::Ok {
                geps_bits,
                iterations,
            } => {
                assert_eq!(geps_bits, geps.to_bits());
                assert_eq!(iterations, 7);
            }
            other => panic!("wrong outcome: {other:?}"),
        }
    }

    #[test]
    fn failure_outcomes_roundtrip_including_escapes() {
        let nasty = "panicked: \"index out of bounds\"\n\tat relax.rs, cell 3 \\ end";
        let cases = [
            CellOutcome::Crashed {
                payload: nasty.into(),
            },
            CellOutcome::TimedOut {
                budget_secs: Some(1.5),
                reason: "wall-clock budget of 1.5s exceeded".into(),
            },
            CellOutcome::TimedOut {
                budget_secs: None,
                reason: "cycle budget".into(),
            },
            CellOutcome::WrongAnswer {
                detail: "vertex 3: got 7, want 2".into(),
            },
        ];
        for outcome in cases {
            let rec = sample_record(outcome.clone());
            let entry = parse_line(&emit_line(&rec)).unwrap();
            match (&outcome, &entry.outcome) {
                (CellOutcome::Crashed { payload }, JournalOutcome::Crashed { payload: p }) => {
                    assert_eq!(payload, p)
                }
                (
                    CellOutcome::TimedOut {
                        budget_secs,
                        reason,
                    },
                    JournalOutcome::TimedOut {
                        budget_secs: b,
                        reason: r,
                    },
                ) => {
                    assert_eq!(budget_secs, b);
                    assert_eq!(reason, r);
                }
                (
                    CellOutcome::WrongAnswer { detail },
                    JournalOutcome::WrongAnswer { detail: d },
                ) => {
                    assert_eq!(detail, d)
                }
                (a, b) => panic!("mismatched outcomes: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn parse_is_field_order_independent() {
        // same entry, fields permuted — identical parse (the fingerprint
        // hashes a canonical string, never the line layout)
        let a = r#"{"v":1,"fp":"00000000000000ff","variant":"x","graph":"g","target":"t","outcome":"crashed","payload":"boom"}"#;
        let b = r#"{"payload":"boom","outcome":"crashed","target":"t","graph":"g","variant":"x","fp":"00000000000000ff","v":1}"#;
        assert_eq!(parse_line(a).unwrap(), parse_line(b).unwrap());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let line = r#"{"v":1,"fp":"0000000000000001","future_field":true,"note":null,"variant":"x","graph":"g","target":"t","outcome":"crashed","payload":"p"}"#;
        assert!(parse_line(line).is_ok());
    }

    #[test]
    fn truncated_and_garbage_lines_are_rejected() {
        // the shapes a SIGKILL mid-append leaves behind
        for bad in [
            "",
            "{",
            r#"{"v":1,"fp":"0000"#,
            r#"{"v":1,"fp":"0000000000000001","variant":"x","graph":"g","target":"t","outcome":"cra"#,
            "not json at all",
            r#"{"v":99,"fp":"0000000000000001","variant":"x","graph":"g","target":"t","outcome":"crashed","payload":"p"}"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn load_skips_truncated_tail_and_keeps_the_rest() {
        let dir = std::env::temp_dir().join(format!(
            "indigo-journal-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"load_skips")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let good = sample_record(CellOutcome::Ok(sample_measurement(1.25)));
        let mut contents = emit_line(&good);
        contents.push('\n');
        contents.push_str(r#"{"v":1,"fp":"00000000000000aa","variant":"x","#); // killed mid-line
        std::fs::write(&path, contents).unwrap();
        let (map, skipped) = load(&path).unwrap();
        assert_eq!(map.len(), 1);
        assert_eq!(skipped, 1);
        assert!(map.contains_key(&good.fingerprint));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_after_a_torn_tail_starts_on_a_fresh_line() {
        let dir = std::env::temp_dir().join(format!(
            "indigo-journal-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"torn_tail")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        // a killed run's journal: one good line, then a torn fragment with
        // no trailing newline
        let good = sample_record(CellOutcome::Ok(sample_measurement(1.25)));
        let mut contents = emit_line(&good);
        contents.push('\n');
        contents.push_str(r#"{"v":1,"fp":"00000000000000aa","#);
        std::fs::write(&path, contents).unwrap();

        let fresh = CellRecord {
            fingerprint: 0xbb,
            ..sample_record(CellOutcome::Ok(sample_measurement(2.5)))
        };
        {
            let j = Journal::append_to(&path).unwrap();
            j.record(&fresh).unwrap();
        }
        // the fragment must stay an isolated skippable line, not merge with
        // (and destroy) the appended entry
        let (map, skipped) = load(&path).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(map.len(), 2);
        assert!(map.contains_key(&good.fingerprint));
        assert!(map.contains_key(&0xbb));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_appends_and_reloads() {
        let dir = std::env::temp_dir().join(format!(
            "indigo-journal-test-{}-{:x}",
            std::process::id(),
            fnv1a64(b"appends")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        {
            let j = Journal::append_to(&path).unwrap();
            j.record(&sample_record(CellOutcome::Ok(sample_measurement(2.0))))
                .unwrap();
            j.record(&sample_record(CellOutcome::Crashed {
                payload: "boom".into(),
            }))
            .unwrap();
        }
        let (map, skipped) = load(&path).unwrap();
        assert_eq!(skipped, 0);
        // same fingerprint twice: the later (crashed) entry wins
        assert_eq!(map.len(), 1);
        assert!(matches!(
            map.values().next().unwrap().outcome,
            JournalOutcome::Crashed { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn lock_test_dir(tag: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "indigo-journal-test-{}-{:x}",
            std::process::id(),
            fnv1a64(tag)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_appender_fails_fast_while_lock_is_held() {
        let dir = lock_test_dir(b"lock_held");
        let path = dir.join("run.journal");
        let first = Journal::append_to(&path).unwrap();
        let err = Journal::append_to(&path).map(|_| ()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("locked"), "unhelpful lock error: {msg}");
        assert!(
            msg.contains(&std::process::id().to_string()),
            "lock error does not name the holder: {msg}"
        );
        // the losing acquirer must not have destroyed the winner's lock
        assert!(JournalLock::path_for(&path).exists());
        drop(first);
        // release: the path is immediately reusable
        Journal::append_to(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = lock_test_dir(b"lock_stale");
        let path = dir.join("run.journal");
        // a PID that cannot be running: beyond Linux's pid_max (2^22)
        std::fs::write(JournalLock::path_for(&path), "4194400\n").unwrap();
        let j = Journal::append_to(&path).unwrap();
        j.record(&sample_record(CellOutcome::Ok(sample_measurement(1.0))))
            .unwrap();
        drop(j);
        assert!(!JournalLock::path_for(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_lockfile_counts_as_stale() {
        let dir = lock_test_dir(b"lock_garbage");
        let path = dir.join("run.journal");
        std::fs::write(JournalLock::path_for(&path), "not a pid").unwrap();
        Journal::append_to(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
