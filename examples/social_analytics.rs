//! Domain scenario: analytics over a social network.
//!
//! Runs the paper's four "analytics" problems — PageRank (influence),
//! connected components (communities), MIS (independent moderator set),
//! and triangle counting (clustering) — on a power-law graph, using the
//! simulated GPU with the styles §5.16 recommends for skewed inputs
//! (warp granularity, push, non-deterministic where applicable).
//!
//! ```text
//! cargo run --release --example social_analytics
//! ```

use indigo_core::{run_variant, GraphInput, Output, Target};
use indigo_gpusim::rtx3090;
use indigo_graph::gen;
use indigo_styles::{Algorithm, Granularity, Model, StyleConfig};

fn main() {
    let graph = gen::preferential_attachment(20_000, 9, 123);
    let input = GraphInput::new(graph);
    println!(
        "social network: {} users, {} follow edges",
        input.num_nodes(),
        input.num_edges()
    );

    // §5.16: high-degree inputs prefer warp granularity in CUDA
    let warp = |algo: Algorithm| {
        let mut cfg = StyleConfig::baseline(algo, Model::Cuda);
        cfg.granularity = Some(Granularity::Warp);
        cfg
    };
    let target = Target::gpu(rtx3090());

    // influence: PageRank
    let pr = run_variant(&warp(Algorithm::Pr), &input, &target);
    if let Output::Ranks(ranks) = &pr.output {
        let mut top: Vec<(usize, f32)> = ranks.iter().copied().enumerate().collect();
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!(
            "\ntop-5 influencers by PageRank ({} iterations):",
            pr.iterations
        );
        for (user, score) in top.iter().take(5) {
            println!("  user {user:>6}: score {score:.5}");
        }
    }

    // communities: connected components
    let cc = run_variant(&warp(Algorithm::Cc), &input, &target);
    if let Output::Labels(labels) = &cc.output {
        let mut distinct = labels.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        println!("\ncommunities: {} connected component(s)", distinct.len());
    }

    // moderation: a maximal independent set (no two moderators adjacent)
    let mis = run_variant(&warp(Algorithm::Mis), &input, &target);
    if let Output::MisSet(set) = &mis.output {
        let count = set.iter().filter(|&&b| b).count();
        println!("moderator set: {count} users, independent and maximal");
    }

    // clustering: triangles
    let tc = run_variant(&warp(Algorithm::Tc), &input, &target);
    if let Output::Triangles(t) = tc.output {
        println!("triangles: {t} (clustering signal)");
    }

    println!(
        "\nsimulated GPU throughputs (GE/s): PR {:.3}, CC {:.3}, MIS {:.3}, TC {:.3}",
        pr.gigaedges_per_sec(input.num_edges()),
        cc.gigaedges_per_sec(input.num_edges()),
        mis.gigaedges_per_sec(input.num_edges()),
        tc.gigaedges_per_sec(input.num_edges()),
    );
}
