//! Optimized connected components: lock-free union-find with min-hooking
//! and pointer jumping (Afforest / Shiloach–Vishkin style) — asymptotically
//! far less work than the suite's label-propagation variants.
//!
//! Hooking always attaches the larger root under the smaller, so the final
//! root of every tree is the minimum vertex id of its component — the same
//! labeling the min-label propagation codes converge to, letting the
//! standard verifier compare them directly.

use indigo_core::GraphInput;
use indigo_exec::frontier::{grained_for, SharedSlice};
use indigo_exec::{PoolRegistry, Schedule};
use indigo_gpusim::{Assign, Device, GpuBuf, Sim};
use indigo_graph::NodeId;
use std::sync::atomic::{AtomicU32, Ordering};

/// Capacity-retained union-find forest, leased per call (DESIGN.md §7.7).
#[derive(Default)]
struct Scratch {
    parent: Vec<AtomicU32>,
}

static SCRATCH: PoolRegistry<Scratch> = PoolRegistry::new();

/// CPU union-find CC. Returns `(labels, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize) -> (Vec<u32>, f64) {
    let mut out = Vec::new();
    let secs = cpu_into(input, threads, &mut out);
    (out, secs)
}

/// [`cpu`] writing the labels into a caller-owned buffer; with a warm
/// buffer the call is allocation-free.
pub fn cpu_into(input: &GraphInput, threads: usize, out: &mut Vec<u32>) -> f64 {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    let mut scratch = SCRATCH.lease_guard(0, Scratch::default);
    let parent = &mut scratch.parent;
    parent.resize_with(n, || AtomicU32::new(0));
    for (v, cell) in parent.iter_mut().enumerate() {
        *cell.get_mut() = v as u32;
    }
    let parent: &[AtomicU32] = parent;

    // find with path halving
    let find = |mut v: u32| -> u32 {
        loop {
            let p = parent[v as usize].load(Ordering::Relaxed);
            if p == v {
                return v;
            }
            let gp = parent[p as usize].load(Ordering::Relaxed);
            if gp == p {
                return p;
            }
            // halve: point v at its grandparent (benign race)
            let _ =
                parent[v as usize].compare_exchange(p, gp, Ordering::Relaxed, Ordering::Relaxed);
            v = gp;
        }
    };

    // hook every edge (upper triangle suffices: the graph is symmetric)
    grained_for(&pool, n, Schedule::Default, |vi, _| {
        let v = vi as NodeId;
        for &u in g.neighbors(v) {
            if u <= v {
                continue;
            }
            // repeat until the two endpoints share a root
            loop {
                let rv = find(v);
                let ru = find(u);
                if rv == ru {
                    break;
                }
                let (lo, hi) = if rv < ru { (rv, ru) } else { (ru, rv) };
                if parent[hi as usize]
                    .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    break;
                }
            }
        }
    });
    // final compression, written straight into the output buffer
    out.clear();
    out.resize(n, 0);
    let labels = SharedSlice::new(out);
    grained_for(&pool, n, Schedule::Default, |vi, _| {
        // Safety: one write per index; read only after the region barrier.
        unsafe { labels.write(vi, find(vi as u32)) };
    });
    start.elapsed().as_secs_f64()
}

/// Simulated-GPU CC: iterated min-hooking over edges plus pointer-jumping
/// kernels, the standard GPU union-find shape. Returns `(labels, secs)`.
pub fn gpu(input: &GraphInput, device: Device) -> (Vec<u32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    let parent = GpuBuf::new(n, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    for v in 0..n {
        parent.host_write(v, v as u32);
    }
    let changed = GpuBuf::new(1, 0);

    loop {
        changed.host_write(0, 0);
        // hook: every edge links the roots-so-far by minimum
        sim.launch(dg.m, Assign::ThreadPerItem, false, |ctx, e| {
            let v = ctx.ld(&dg.src, e);
            let u = ctx.ld(&dg.dst, e);
            let pv = ctx.ld(&parent, v as usize);
            let pu = ctx.ld(&parent, u as usize);
            if pv == pu {
                return;
            }
            let (lo, hi) = if pv < pu { (pv, pu) } else { (pu, pv) };
            if ctx.atomic_min(&parent, hi as usize, lo) > lo {
                ctx.st(&changed, 0, 1);
            }
        });
        // jump: compress chains
        sim.launch(n, Assign::ThreadPerItem, false, |ctx, vi| {
            let mut p = ctx.ld(&parent, vi);
            let mut gp = ctx.ld(&parent, p as usize);
            while p != gp {
                ctx.st(&parent, vi, gp);
                p = gp;
                gp = ctx.ld(&parent, p as usize);
            }
        });
        if changed.host_read(0) == 0 {
            break;
        }
    }
    (parent.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn cpu_matches_serial() {
        for g in [
            toy::two_triangles(),
            toy::path(25),
            gen::gnp(200, 0.01, 7),
            gen::grid2d(9, 9),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::cc(&input.csr);
            let (got, _) = cpu(&input, 3);
            assert_eq!(got, expect, "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_serial() {
        for g in [
            toy::two_triangles(),
            gen::gnp(150, 0.015, 7),
            gen::road(15, 8, 2),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::cc(&input.csr);
            let (got, secs) = gpu(&input, rtx3090());
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn isolated_vertices_self_label() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(
            vec![0, 0, 0, 0],
            vec![],
            vec![],
            "i",
        ));
        assert_eq!(cpu(&input, 2).0, vec![0, 1, 2]);
        assert_eq!(gpu(&input, rtx3090()).0, vec![0, 1, 2]);
    }
}
