//! The CPU relaxation engine: BFS, SSSP, and CC in every applicable style.
//!
//! All three problems are monotonic min-relaxations over the paper's
//! Listing 4 skeleton — they differ only in initialization and in the value
//! an edge contributes:
//!
//! | problem | init                      | relax of edge `(v, u)`           |
//! |---------|---------------------------|----------------------------------|
//! | BFS     | `src = 0`, rest `INF`     | `min(level[u], level[v] + 1)`    |
//! | SSSP    | `src = 0`, rest `INF`     | `min(dist[u], dist[v] + w)`      |
//! | CC      | `label[v] = v`            | `min(label[u], label[v])`        |
//!
//! The engine realizes every style axis: vertex/edge iteration (§2.1),
//! topology/data drive with either worklist policy (§2.2, §2.3), push/pull
//! flow (§2.4), read-write / read-modify-write updates (§2.5), and the
//! double-buffered deterministic variant (§2.6). Scheduling and the critical
//! -section RMW path come from [`super::CpuExec`].
//!
//! Duplicates-allowed worklists have no tight size bound; when a push is
//! dropped on a full list the engine schedules a full topology sweep that
//! rediscovers all active vertices, preserving correctness (monotonicity
//! makes re-processing harmless).

use super::CpuExec;
use indigo_exec::sync::{atomic_vec, snapshot, MinOps};
use indigo_exec::worklist::{lease_double_worklist, lease_stamps, DoubleWorklist, Stamps};
use indigo_graph::{NodeId, INF};
use indigo_styles::{Determinism, Direction, Drive, Flow, StyleConfig, WorklistDup};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Which min-relaxation problem to solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelaxKind {
    /// Hop levels from a source.
    Bfs,
    /// Weighted distances from a source.
    Sssp,
    /// Min-label connected components.
    Cc,
}

impl RelaxKind {
    /// Value added to the upstream value when traversing an edge with
    /// weight `w`.
    #[inline]
    fn contrib(self, w: u32) -> u32 {
        match self {
            RelaxKind::Bfs => 1,
            RelaxKind::Sssp => w,
            RelaxKind::Cc => 0,
        }
    }
}

/// Runs the relaxation configured by `cfg`; returns the converged values and
/// the number of iterations (parallel rounds) taken.
pub fn run(
    kind: RelaxKind,
    cfg: &StyleConfig,
    input: &crate::GraphInput,
    exec: &CpuExec,
    source: NodeId,
) -> (Vec<u32>, usize) {
    let n = input.num_nodes();
    let ops = exec.min_ops(cfg.update);
    let det = cfg.determinism == Determinism::Deterministic;

    // value arrays: `read` only differs from `write` in deterministic mode
    let write = atomic_vec(n, INF);
    init_values(kind, &write, source);
    let read = det.then(|| {
        let r = atomic_vec(n, INF);
        init_values(kind, &r, source);
        r
    });

    let iterations = match cfg.drive {
        Drive::TopologyDriven => topo_loop(kind, cfg, input, exec, ops, &write, read.as_deref()),
        Drive::DataDriven(dup) => data_loop(
            kind,
            cfg,
            input,
            exec,
            ops,
            &write,
            read.as_deref(),
            dup,
            source,
        ),
    };
    (snapshot(&write), iterations)
}

fn init_values(kind: RelaxKind, vals: &[AtomicU32], source: NodeId) {
    match kind {
        RelaxKind::Bfs | RelaxKind::Sssp => {
            if !vals.is_empty() {
                vals[source as usize].store(0, Ordering::Relaxed);
            }
        }
        RelaxKind::Cc => {
            for (v, cell) in vals.iter().enumerate() {
                cell.store(v as u32, Ordering::Relaxed);
            }
        }
    }
}

/// One edge relaxation in the configured flow direction. Returns the updated
/// endpoint if the stored value decreased.
#[inline]
#[allow(clippy::too_many_arguments)] // one parameter per style knob
fn relax_edge(
    kind: RelaxKind,
    flow: Flow,
    ops: MinOps,
    read: &[AtomicU32],
    write: &[AtomicU32],
    v: NodeId,
    u: NodeId,
    w: u32,
) -> Option<NodeId> {
    let (from, to) = match flow {
        Flow::Push => (v, u), // value flows from v to its neighbor (4a)
        Flow::Pull => (u, v), // vertex pulls from its neighbor (4b)
    };
    let val = read[from as usize].load(Ordering::Relaxed);
    if val == INF {
        return None;
    }
    let nd = val.saturating_add(kind.contrib(w));
    ops.min_update(&write[to as usize], nd).then_some(to)
}

/// Copies `write` into `read` with the model's parallel for — the extra
/// synchronization/memory cost of the deterministic style (§2.6).
fn sync_read(exec: &CpuExec, read: &[AtomicU32], write: &[AtomicU32]) {
    exec.pfor(read.len(), |i, _| {
        read[i].store(write[i].load(Ordering::Relaxed), Ordering::Relaxed);
    });
}

// ---------------------------------------------------------------------
// topology-driven driver (Listing 2a): sweep everything until a fixpoint
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn topo_loop(
    kind: RelaxKind,
    cfg: &StyleConfig,
    input: &crate::GraphInput,
    exec: &CpuExec,
    ops: MinOps,
    write: &[AtomicU32],
    read: Option<&[AtomicU32]>,
) -> usize {
    let flow = cfg.flow.expect("relaxation variants always have a flow");
    let csr = &input.csr;
    let coo = &input.coo;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let changed = AtomicBool::new(false);
        let rd = read.unwrap_or(write);
        match cfg.direction {
            Direction::VertexBased => exec.pfor(csr.num_nodes(), |vi, _| {
                let v = vi as NodeId;
                // push loads its source value once and skips untouched
                // vertices entirely (Listing 4a) — the work asymmetry that
                // §5.4 credits push for
                if flow == Flow::Push {
                    let val = rd[vi].load(Ordering::Relaxed);
                    if val == INF {
                        return;
                    }
                    let range = csr.neighbor_range(v);
                    for (off, &u) in csr.neighbors(v).iter().enumerate() {
                        let w = csr.weights()[range.start + off];
                        let nd = val.saturating_add(kind.contrib(w));
                        if ops.min_update(&write[u as usize], nd) {
                            changed.store(true, Ordering::Relaxed);
                        }
                    }
                    return;
                }
                let range = csr.neighbor_range(v);
                for (off, &u) in csr.neighbors(v).iter().enumerate() {
                    let w = csr.weights()[range.start + off];
                    if relax_edge(kind, flow, ops, rd, write, v, u, w).is_some() {
                        changed.store(true, Ordering::Relaxed);
                    }
                }
            }),
            Direction::EdgeBased => exec.pfor(coo.num_edges(), |e, _| {
                let (v, u, w) = (coo.src(e), coo.dst(e), coo.weight(e));
                if relax_edge(kind, flow, ops, rd, write, v, u, w).is_some() {
                    changed.store(true, Ordering::Relaxed);
                }
            }),
        }
        if let Some(rd) = read {
            sync_read(exec, rd, write);
        }
        if !changed.load(Ordering::Relaxed) {
            return iterations;
        }
    }
}

// ---------------------------------------------------------------------
// data-driven driver (Listing 2b): drain a worklist
// ---------------------------------------------------------------------

/// Work items are vertices for vertex-based codes and edge indices for
/// edge-based codes; a successful update of vertex `u` re-activates `u`
/// (vertex style) or all of `u`'s outgoing edges (edge style).
#[allow(clippy::too_many_arguments)]
fn data_loop(
    kind: RelaxKind,
    cfg: &StyleConfig,
    input: &crate::GraphInput,
    exec: &CpuExec,
    ops: MinOps,
    write: &[AtomicU32],
    read: Option<&[AtomicU32]>,
    dup: WorklistDup,
    source: NodeId,
) -> usize {
    // data-driven is push-only (enforced by StyleConfig::check)
    debug_assert_eq!(cfg.flow, Some(Flow::Push));
    let csr = &input.csr;
    let coo = &input.coo;
    let n = csr.num_nodes();
    let m = coo.num_edges();
    if n == 0 {
        return 0;
    }
    let edge_items = cfg.direction == Direction::EdgeBased;
    let nodup = dup == WorklistDup::NoDuplicates;

    // capacity: no-duplicates lists are bounded by the item count; the
    // duplicates style gets slack plus the sweep fallback
    let items_total = if edge_items { m } else { n };
    let capacity = if nodup {
        items_total + 1
    } else {
        2 * items_total + 64
    };
    // leased, not allocated: the harness runs this body for hundreds of
    // thousands of measurement cells, and the worklist arrays dominate the
    // per-cell setup cost
    let wl = lease_double_worklist(capacity);
    let stamps = nodup.then(|| lease_stamps(items_total));
    let wl: &DoubleWorklist = &wl;
    let stamps: Option<&Stamps> = stamps.as_deref();
    let critical = exec.critical_stamps();

    // initial worklist
    match kind {
        RelaxKind::Bfs | RelaxKind::Sssp => {
            if edge_items {
                for e in csr.neighbor_range(source) {
                    wl.current().push(e as u32);
                }
            } else {
                wl.current().push(source);
            }
        }
        RelaxKind::Cc => {
            for item in 0..items_total {
                wl.current().push(item as u32);
            }
        }
    }

    let mut iterations = 0u32;
    let mut full_sweep = false;
    loop {
        iterations += 1;
        let overflow = AtomicBool::new(false);
        let changed = AtomicBool::new(false);
        let rd = read.unwrap_or(write);

        // re-activation: push the follow-up items for an updated vertex
        let activate = |to: NodeId| {
            changed.store(true, Ordering::Relaxed);
            if edge_items {
                for e in csr.neighbor_range(to) {
                    push_item(wl, stamps, e as u32, iterations, critical, &overflow);
                }
            } else {
                push_item(wl, stamps, to, iterations, critical, &overflow);
            }
        };

        let process_item = |item: u32| {
            if edge_items {
                let e = item as usize;
                let (v, u, w) = (coo.src(e), coo.dst(e), coo.weight(e));
                if let Some(to) = relax_edge(kind, Flow::Push, ops, rd, write, v, u, w) {
                    activate(to);
                }
            } else {
                // data-driven is push-only: hoist the source load (4a)
                let v = item;
                let val = rd[v as usize].load(Ordering::Relaxed);
                if val == INF {
                    return;
                }
                let range = csr.neighbor_range(v);
                for (off, &u) in csr.neighbors(v).iter().enumerate() {
                    let w = csr.weights()[range.start + off];
                    let nd = val.saturating_add(kind.contrib(w));
                    if ops.min_update(&write[u as usize], nd) {
                        activate(u);
                    }
                }
            }
        };

        if full_sweep {
            // recovery sweep after a dropped push: process every item
            exec.pfor(items_total, |i, _| process_item(i as u32));
        } else {
            let current = wl.current();
            exec.pfor(current.len(), |idx, _| process_item(current.get(idx)));
        }

        let overflowed = overflow.load(Ordering::Relaxed);
        if let Some(rd) = read {
            sync_read(exec, rd, write);
        }
        if full_sweep && !changed.load(Ordering::Relaxed) {
            return iterations as usize;
        }
        full_sweep = overflowed;
        wl.swap();
        if !full_sweep && wl.current().is_empty() {
            return iterations as usize;
        }
    }
}

#[inline]
fn push_item(
    wl: &DoubleWorklist,
    stamps: Option<&Stamps>,
    item: u32,
    iter: u32,
    critical: bool,
    overflow: &AtomicBool,
) {
    if let Some(st) = stamps {
        if !st.try_claim(item, iter, critical) {
            return; // already on the next worklist (Listing 3b)
        }
    }
    if !wl.next().try_push(item) {
        overflow.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput, SOURCE};
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    fn algo(kind: RelaxKind) -> Algorithm {
        match kind {
            RelaxKind::Bfs => Algorithm::Bfs,
            RelaxKind::Sssp => Algorithm::Sssp,
            RelaxKind::Cc => Algorithm::Cc,
        }
    }

    fn reference(kind: RelaxKind, input: &GraphInput) -> Vec<u32> {
        match kind {
            RelaxKind::Bfs => serial::bfs(&input.csr, SOURCE),
            RelaxKind::Sssp => serial::sssp(&input.csr, SOURCE),
            RelaxKind::Cc => serial::cc(&input.csr),
        }
    }

    /// Every CPU variant of BFS/SSSP/CC must match the serial oracle on a
    /// battery of small graphs.
    #[test]
    fn all_cpu_variants_match_reference() {
        let graphs = vec![
            toy::path(17),
            toy::two_triangles(),
            toy::star(12),
            toy::weighted_diamond(),
            gen::gnp(60, 0.07, 5),
            gen::grid2d(7, 5),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            for kind in [RelaxKind::Bfs, RelaxKind::Sssp, RelaxKind::Cc] {
                let expect = reference(kind, &input);
                for model in [Model::Omp, Model::Cpp] {
                    for cfg in enumerate::variants(algo(kind), model) {
                        let exec = CpuExec::new(&cfg, 3);
                        let (got, iters) = run(kind, &cfg, &input, &exec, SOURCE);
                        assert!(iters >= 1);
                        assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_iteration_count_is_stable() {
        let input = GraphInput::new(gen::gnp(80, 0.06, 9));
        let mut cfg = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        cfg.determinism = Determinism::Deterministic;
        let exec = CpuExec::new(&cfg, 4);
        let (_, i1) = run(RelaxKind::Sssp, &cfg, &input, &exec, SOURCE);
        let (_, i2) = run(RelaxKind::Sssp, &cfg, &input, &exec, SOURCE);
        assert_eq!(
            i1, i2,
            "deterministic style must repeat its iteration count"
        );
    }

    #[test]
    fn empty_graph_terminates() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let cfg = StyleConfig::baseline(Algorithm::Cc, Model::Cpp);
        let exec = CpuExec::new(&cfg, 2);
        let (vals, _) = run(RelaxKind::Cc, &cfg, &input, &exec, 0);
        assert!(vals.is_empty());
    }

    #[test]
    fn worklist_overflow_recovery_still_correct() {
        // a dense-ish graph with duplicates-allowed edge worklists forces
        // the overflow → full-sweep path
        let input = GraphInput::new(gen::gnp(40, 0.4, 2));
        let expect = serial::sssp(&input.csr, SOURCE);
        for model in [Model::Omp, Model::Cpp] {
            let picked = enumerate::variants(Algorithm::Sssp, model)
                .into_iter()
                .filter(|c| {
                    c.direction == Direction::EdgeBased
                        && c.drive == Drive::DataDriven(WorklistDup::Duplicates)
                })
                .take(2)
                .collect::<Vec<_>>();
            assert!(!picked.is_empty());
            for cfg in picked {
                let exec = CpuExec::new(&cfg, 3);
                let (got, _) = run(RelaxKind::Sssp, &cfg, &input, &exec, SOURCE);
                assert_eq!(got, expect, "{}", cfg.name());
            }
        }
    }
}
