//! Always-on server statistics (DESIGN.md §7.8).
//!
//! The chaos gate's invariants ("breaker trip/recovery observable",
//! "retries counted") must hold in *every* build, so the server keeps its
//! own plain atomics rather than relying on `crates/obs` counters (which
//! compile to nothing without the `telemetry` feature). Each bump is
//! mirrored into the matching obs counter by the caller, so telemetry
//! builds get the same numbers in traces and profiles for free.

use indigo_obs::hist::{bucket_floor, bucket_of, NUM_BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic request-pipeline counters plus a log₂ latency histogram.
#[derive(Default)]
pub struct Stats {
    /// Connections accepted (sheds included).
    pub requests: AtomicU64,
    /// 2xx responses (degraded included).
    pub ok: AtomicU64,
    /// 429 sheds from admission control.
    pub shed: AtomicU64,
    /// 504 deadline exhaustions (in queue or mid-retry).
    pub timeouts: AtomicU64,
    /// Cell re-executions after a transient failure.
    pub retries: AtomicU64,
    /// Degraded responses served while a breaker was open.
    pub degraded: AtomicU64,
    /// Requests fully answered from the fingerprint cache.
    pub cache_hits: AtomicU64,
    /// Breaker transitions closed → open.
    pub breaker_trips: AtomicU64,
    /// Breaker half-open probes that recovered (→ closed).
    pub breaker_recoveries: AtomicU64,
    /// 5xx failures (retries exhausted, wrong answers, harness errors).
    pub failed: AtomicU64,
    /// 4xx client errors.
    pub bad_requests: AtomicU64,
    /// Journal appends that failed (service continued without persistence).
    pub journal_errors: AtomicU64,
    /// Merged plans executed by the batch former.
    pub batches: AtomicU64,
    /// Claimed cells resolved through batched plan executions.
    pub batched_cells: AtomicU64,
    /// Requests that joined another request's in-flight cells instead of
    /// executing them (single-flight coalescing).
    pub coalesced: AtomicU64,
    /// Requests served over a reused keep-alive connection.
    pub keepalive_reuses: AtomicU64,
    /// EWMA of request service time, microseconds (for `Retry-After`).
    pub service_micros_ewma: AtomicU64,
    latency: LatencyHist,
}

/// Log₂ latency histogram, same bucketing as `indigo_obs::hist` (which is
/// compiled feature-off too, so the edges stay shared).
#[derive(Default)]
struct LatencyHist {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Stats {
    /// Fresh zeroed stats.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records one finished request's end-to-end latency.
    pub fn record_latency(&self, micros: u64) {
        self.latency.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        // EWMA with α = 1/8: ewma += (sample − ewma) / 8
        let prev = self.service_micros_ewma.load(Ordering::Relaxed);
        let next = if prev == 0 {
            micros
        } else {
            prev - prev / 8 + micros / 8
        };
        self.service_micros_ewma.store(next, Ordering::Relaxed);
        indigo_obs::Hist::ServeRequestMicros.record(micros);
    }

    /// `Retry-After` advice in whole seconds for a shed when `depth`
    /// requests are queued ahead: expected drain time, at least 1 s.
    pub fn retry_after_secs(&self, depth: usize) -> u64 {
        let ewma = self.service_micros_ewma.load(Ordering::Relaxed).max(1_000);
        let drain_us = ewma.saturating_mul(depth as u64 + 1);
        drain_us.div_ceil(1_000_000).max(1)
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut latency_buckets = [0u64; NUM_BUCKETS];
        for (i, b) in self.latency.buckets.iter().enumerate() {
            latency_buckets[i] = b.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_recoveries: self.breaker_recoveries.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            journal_errors: self.journal_errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_cells: self.batched_cells.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            latency_buckets,
        }
    }
}

/// A copy of every counter plus the latency buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`Stats::requests`].
    pub requests: u64,
    /// See [`Stats::ok`].
    pub ok: u64,
    /// See [`Stats::shed`].
    pub shed: u64,
    /// See [`Stats::timeouts`].
    pub timeouts: u64,
    /// See [`Stats::retries`].
    pub retries: u64,
    /// See [`Stats::degraded`].
    pub degraded: u64,
    /// See [`Stats::cache_hits`].
    pub cache_hits: u64,
    /// See [`Stats::breaker_trips`].
    pub breaker_trips: u64,
    /// See [`Stats::breaker_recoveries`].
    pub breaker_recoveries: u64,
    /// See [`Stats::failed`].
    pub failed: u64,
    /// See [`Stats::bad_requests`].
    pub bad_requests: u64,
    /// See [`Stats::journal_errors`].
    pub journal_errors: u64,
    /// See [`Stats::batches`].
    pub batches: u64,
    /// See [`Stats::batched_cells`].
    pub batched_cells: u64,
    /// See [`Stats::coalesced`].
    pub coalesced: u64,
    /// See [`Stats::keepalive_reuses`].
    pub keepalive_reuses: u64,
    /// Log₂ latency buckets (microseconds).
    pub latency_buckets: [u64; NUM_BUCKETS],
}

impl StatsSnapshot {
    /// Bucket-floor latency percentile in microseconds (`0.0..=100.0`).
    pub fn latency_percentile_floor(&self, p: f64) -> u64 {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }

    /// Renders the counters as a flat JSON object body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"ok\":{},\"shed\":{},\"timeouts\":{},\"retries\":{},\
             \"degraded\":{},\"cache_hits\":{},\"breaker_trips\":{},\
             \"breaker_recoveries\":{},\"failed\":{},\"bad_requests\":{},\
             \"journal_errors\":{},\"batches\":{},\"batched_cells\":{},\
             \"coalesced\":{},\"keepalive_reuses\":{},\
             \"latency_p50_floor_us\":{},\"latency_p99_floor_us\":{}}}",
            self.requests,
            self.ok,
            self.shed,
            self.timeouts,
            self.retries,
            self.degraded,
            self.cache_hits,
            self.breaker_trips,
            self.breaker_recoveries,
            self.failed,
            self.bad_requests,
            self.journal_errors,
            self.batches,
            self.batched_cells,
            self.coalesced,
            self.keepalive_reuses,
            self.latency_percentile_floor(50.0),
            self.latency_percentile_floor(99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_walk_the_buckets() {
        let s = Stats::new();
        for us in [1u64, 2, 4, 1000, 1000, 1000, 1000, 100_000] {
            s.record_latency(us);
        }
        let snap = s.snapshot();
        // 8 samples: p50 rank 4 lands in the 1000 µs bucket (floor 512)
        assert_eq!(snap.latency_percentile_floor(50.0), 512);
        // p99 rank 8 lands in the 100 ms bucket (floor 65536)
        assert_eq!(snap.latency_percentile_floor(99.0), 65_536);
        assert_eq!(snap.latency_percentile_floor(0.0), 1);
        assert!(snap.to_json().contains("\"latency_p50_floor_us\":512"));
    }

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let s = Stats::new();
        // no samples yet: minimum 1 s advice
        assert_eq!(s.retry_after_secs(0), 1);
        for _ in 0..50 {
            s.record_latency(2_000_000); // 2 s requests
        }
        assert!(s.retry_after_secs(3) >= 4, "4 × ~2 s should advise ≥ 4 s");
    }
}
