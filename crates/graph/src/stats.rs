//! Graph property analysis — the numbers behind the paper's Tables 4 and 5.
//!
//! Degree statistics are exact. The diameter is reported as a lower bound
//! obtained by repeated double-sweep BFS from pseudo-peripheral vertices on
//! the largest component — exact on trees/paths and within a small factor in
//! general, which is all Table 5 is used for (classifying inputs into
//! low- vs high-diameter regimes).
//!
//! The same numbers double as the style advisor's input: [`GraphStats::features`]
//! packs them into a fixed-order [`FeatureVector`] that `crates/advisor`
//! consumes. For repeated extraction (the serving path), thread a
//! [`StatsScratch`] through [`GraphStats::compute_with`] — once warm, the
//! traversals reuse one distance/label buffer and allocate nothing.

use crate::{Csr, NodeId};
use std::collections::VecDeque;

/// Summary statistics for one input graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub nodes: usize,
    /// Directed edge count (2× undirected).
    pub edges: usize,
    /// In-memory CSR size in MiB.
    pub size_mb: f64,
    /// Average (directed) degree — `d_avg` in Table 5.
    pub avg_degree: f64,
    /// Maximum degree — `d_max`.
    pub max_degree: usize,
    /// Percent of vertices with degree ≥ 32.
    pub pct_deg_ge32: f64,
    /// Percent of vertices with degree ≥ 512.
    pub pct_deg_ge512: f64,
    /// Diameter lower bound of the largest connected component.
    pub diameter_lb: usize,
    /// Number of connected components.
    pub components: usize,
}

/// Number of entries in a [`FeatureVector`].
pub const NUM_FEATURES: usize = 8;

/// Names of the [`FeatureVector`] entries, in order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "nodes",
    "edges",
    "avg_degree",
    "max_degree",
    "pct_deg_ge32",
    "pct_deg_ge512",
    "diameter_lb",
    "components",
];

/// Fixed-order numeric view of [`GraphStats`] — the advisor's input.
///
/// The order and meaning of the entries are stable ([`FEATURE_NAMES`]);
/// models fitted against one build keep working against the next.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeatureVector(pub [f64; NUM_FEATURES]);

impl FeatureVector {
    /// Looks an entry up by its [`FEATURE_NAMES`] name.
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES
            .iter()
            .position(|&f| f == name)
            .map(|i| self.0[i])
    }
}

/// Reusable traversal buffers for [`GraphStats::compute_with`].
///
/// One `usize` buffer serves as both the BFS distance array and the
/// component label array; the queue and stack are likewise retained across
/// calls. After one warm-up computation at a given graph size, further
/// computations at the same (or smaller) size allocate nothing — pinned by
/// `tests/alloc_regression.rs`.
#[derive(Default)]
pub struct StatsScratch {
    marks: Vec<usize>,
    queue: VecDeque<NodeId>,
    stack: Vec<NodeId>,
}

impl StatsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> StatsScratch {
        StatsScratch::default()
    }

    /// Resets the mark buffer to `n` entries of `usize::MAX` without
    /// shrinking capacity.
    fn reset_marks(&mut self, n: usize) {
        self.marks.clear();
        self.marks.resize(n, usize::MAX);
    }
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &Csr) -> GraphStats {
        GraphStats::compute_with(g, &mut StatsScratch::new())
    }

    /// [`GraphStats::compute`] with caller-owned traversal buffers; the
    /// allocation-free path for repeated feature extraction.
    pub fn compute_with(g: &Csr, scratch: &mut StatsScratch) -> GraphStats {
        let n = g.num_nodes();
        let mut max_degree = 0usize;
        let mut ge32 = 0usize;
        let mut ge512 = 0usize;
        for v in 0..n as NodeId {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            if d >= 32 {
                ge32 += 1;
            }
            if d >= 512 {
                ge512 += 1;
            }
        }
        let (components, largest_rep) = component_info(g, scratch);
        let diameter_lb = if n == 0 {
            0
        } else {
            double_sweep(g, largest_rep, scratch)
        };
        GraphStats {
            nodes: n,
            edges: g.num_edges(),
            size_mb: g.size_mb(),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            max_degree,
            pct_deg_ge32: pct(ge32, n),
            pct_deg_ge512: pct(ge512, n),
            diameter_lb,
            components,
        }
    }

    /// The statistics as a fixed-order numeric vector ([`FEATURE_NAMES`]).
    pub fn features(&self) -> FeatureVector {
        FeatureVector([
            self.nodes as f64,
            self.edges as f64,
            self.avg_degree,
            self.max_degree as f64,
            self.pct_deg_ge32,
            self.pct_deg_ge512,
            self.diameter_lb as f64,
            self.components as f64,
        ])
    }

    /// One row of the Table 4/5 analog, pipe-separated.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name} | {} | {} | {:.1} MB | {:.1} | {} | {:.2}% | {:.2}% | {} | {}",
            self.nodes,
            self.edges,
            self.size_mb,
            self.avg_degree,
            self.max_degree,
            self.pct_deg_ge32,
            self.pct_deg_ge512,
            self.diameter_lb,
            self.components
        )
    }
}

fn pct(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    }
}

/// BFS from `src`; returns (farthest vertex, its distance, visited count).
/// Distances live in `scratch.marks`, reset (not reallocated) per call.
fn bfs_far(g: &Csr, src: NodeId, scratch: &mut StatsScratch) -> (NodeId, usize, usize) {
    scratch.reset_marks(g.num_nodes());
    let dist = &mut scratch.marks;
    let queue = &mut scratch.queue;
    queue.clear();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut far = src;
    let mut far_d = 0usize;
    let mut visited = 1usize;
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dv + 1;
                visited += 1;
                if dv + 1 > far_d {
                    far_d = dv + 1;
                    far = u;
                }
                queue.push_back(u);
            }
        }
    }
    (far, far_d, visited)
}

/// Counts components and returns a representative of the largest one.
/// Labels live in `scratch.marks` (shared with [`bfs_far`]'s distances —
/// the two traversals never overlap).
fn component_info(g: &Csr, scratch: &mut StatsScratch) -> (usize, NodeId) {
    let n = g.num_nodes();
    if n == 0 {
        return (0, 0);
    }
    scratch.reset_marks(n);
    let comp = &mut scratch.marks;
    let stack = &mut scratch.stack;
    stack.clear();
    let mut count = 0usize;
    let mut best = (0usize, 0 as NodeId); // (size, representative)
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = count;
        count += 1;
        let mut size = 0usize;
        comp[s] = c;
        stack.push(s as NodeId);
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in g.neighbors(v) {
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = c;
                    stack.push(u);
                }
            }
        }
        if size > best.0 {
            best = (size, s as NodeId);
        }
    }
    (count, best.1)
}

/// Double-sweep diameter lower bound with a few extra refinement sweeps.
fn double_sweep(g: &Csr, start: NodeId, scratch: &mut StatsScratch) -> usize {
    let (far1, _, _) = bfs_far(g, start, scratch);
    let (mut from, mut best, _) = bfs_far(g, far1, scratch);
    // a couple of extra sweeps from the new periphery tighten the bound on
    // non-tree graphs at negligible cost
    for _ in 0..2 {
        let (nf, d, _) = bfs_far(g, from, scratch);
        if d > best {
            best = d;
            from = nf;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::toy;

    #[test]
    fn path_diameter_exact() {
        let s = GraphStats::compute(&toy::path(50));
        assert_eq!(s.diameter_lb, 49);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn cycle_diameter() {
        let s = GraphStats::compute(&toy::cycle(10));
        assert_eq!(s.diameter_lb, 5);
    }

    #[test]
    fn two_components_detected() {
        let s = GraphStats::compute(&toy::two_triangles());
        assert_eq!(s.components, 2);
        assert_eq!(s.diameter_lb, 1);
    }

    #[test]
    fn grid_diameter_exact() {
        let g = crate::gen::grid2d(12, 7);
        let s = GraphStats::compute(&g);
        assert_eq!(s.diameter_lb, 12 + 7 - 2);
    }

    #[test]
    fn star_degree_stats() {
        let s = GraphStats::compute(&toy::star(100));
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.pct_deg_ge32, 1.0); // only the hub
        assert_eq!(s.diameter_lb, 2);
    }

    #[test]
    fn empty_graph() {
        let g = crate::Csr::from_raw(vec![0], vec![], vec![], "empty");
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.diameter_lb, 0);
        assert_eq!(s.features().0, [0.0; NUM_FEATURES]);
    }

    #[test]
    fn avg_degree_formula() {
        let s = GraphStats::compute(&toy::complete(5));
        assert!((s.avg_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let s = GraphStats::compute(&toy::path(3));
        let row = s.table_row("p3");
        assert!(row.starts_with("p3 | 3 | 4 |"));
    }

    /// Golden Table 4/5 rows for all five suite families at Small scale —
    /// must match `results/table45.txt` byte-for-byte, including the (now
    /// aligned) two-decimal degree-percentage columns.
    #[test]
    fn table_rows_golden_suite() {
        use crate::gen::{suite_graph, Scale, SUITE_GRAPHS};
        let expected = [
            "2d-grid | 4096 | 16128 | 0.1 MB | 3.9 | 4 | 0.00% | 0.00% | 126 | 1",
            "copapers | 1500 | 80962 | 0.3 MB | 54.0 | 172 | 77.27% | 0.00% | 5 | 23",
            "rmat | 2048 | 25432 | 0.1 MB | 12.4 | 584 | 11.04% | 0.05% | 6 | 485",
            "soc-net | 3000 | 53910 | 0.2 MB | 18.0 | 260 | 9.20% | 0.00% | 4 | 1",
            "road | 3840 | 11000 | 0.1 MB | 2.9 | 6 | 0.00% | 0.00% | 114 | 1",
        ];
        let mut scratch = StatsScratch::new();
        for (which, want) in SUITE_GRAPHS.iter().zip(expected) {
            let g = suite_graph(*which, Scale::Small);
            let s = GraphStats::compute_with(&g, &mut scratch);
            assert_eq!(s.table_row(which.label()), want);
        }
    }

    /// A disconnected graph's diameter bound is taken on the *largest*
    /// component: path(9) ∪ path(3) must report the long path's diameter,
    /// regardless of which component holds vertex 0.
    #[test]
    fn disconnected_diameter_uses_largest_component() {
        // Build path(3) ∪ path(9) by hand: vertices 0-2 then 3-11.
        let mut b = crate::GraphBuilder::new(12);
        for (u, v) in [(0, 1), (1, 2)] {
            b.add_edge(u, v);
        }
        for v in 3..11 {
            b.add_edge(v, v + 1);
        }
        let g = b.build("two-paths");
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 2);
        assert_eq!(s.diameter_lb, 8); // the 9-vertex path, not the 3-vertex one
    }

    /// `compute_with` is bit-identical to `compute`, and the scratch can be
    /// reused across differently-sized graphs.
    #[test]
    fn scratch_reuse_matches_fresh_compute() {
        let graphs = [toy::path(64), toy::star(8), crate::gen::grid2d(9, 5)];
        let mut scratch = StatsScratch::new();
        for g in &graphs {
            assert_eq!(
                GraphStats::compute_with(g, &mut scratch),
                GraphStats::compute(g)
            );
        }
    }
}
