//! Generates the five evaluation inputs (paper Table 4 families) at a
//! chosen scale and prints their structural properties — our analog of the
//! paper's Tables 4 and 5.
//!
//! ```text
//! cargo run --release --example graph_report [-- tiny|small|default|large]
//! ```

use indigo_graph::gen::{suite_graph, Scale, SUITE_GRAPHS};
use indigo_graph::stats::GraphStats;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => Scale::Tiny,
        Some("large") => Scale::Large,
        Some("default") => Scale::Default,
        _ => Scale::Small,
    };
    println!("input graphs at {scale:?} scale (paper Tables 4/5 analog)\n");
    println!(
        "{:<10} {:<18} | nodes | edges | MB | d_avg | d_max | d>=32 | d>=512 | diam | comps",
        "family", "paper input"
    );
    for which in SUITE_GRAPHS {
        let g = suite_graph(which, scale);
        let s = GraphStats::compute(&g);
        println!(
            "{:<10} {:<18} | {}",
            which.label(),
            which.paper_input(),
            s.table_row(g.name())
        );
    }
    println!(
        "\nregimes to note (the properties §5.13 correlates against):\n\
         - 2d-grid and road: uniform low degree, very large diameter\n\
         - copapers: high average degree, >20% of vertices with degree >= 32\n\
         - rmat and soc-net: skewed/power-law degrees, tiny diameter"
    );
}
