//! Per-warp lockstep cost accounting.
//!
//! A warp executes its lanes in lockstep: the k-th shared-memory-visible
//! access of every lane happens in the same machine step. [`StepTable`]
//! aggregates the accesses of one warp "round" by step ordinal, then
//! [`StepTable::finalize`] prices each step:
//!
//! * loads/stores coalesce into distinct 128-byte segments,
//! * global atomics pay per distinct address plus a cheap aggregation cost
//!   for same-address lanes,
//! * `cuda::atomic` steps are multiplied by the device penalty,
//! * shared-memory atomics serialize by same-address multiplicity.
//!
//! Divergence falls out naturally: a lane that runs more steps than its
//! warp-mates still creates (and prices) those extra steps.

use crate::device::CostModel;

/// What kind of machine step an ordinal slot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Plain global load or store (coalescable).
    Mem,
    /// Classic global atomic RMW (`atomicMin` etc.).
    AtomicRmw,
    /// `cuda::atomic` load/store with default settings.
    CudaLdSt,
    /// `cuda::atomic` RMW with default settings.
    CudaAtomicRmw,
    /// Shared-memory (block-scope) atomic.
    SharedAtomic,
}

const MAX_LANES: usize = 32;

/// One lockstep step: the keys its lanes touch, in record order.
///
/// Recording is append-only — no deduplication happens on the access path.
/// A step holds at most one key per lane (32), so [`StepTable::finalize`]
/// deduplicates with branchless fixed-bound scans ([`distinct_keys`],
/// [`max_multiplicity`]) that LLVM vectorizes; doing that work once per
/// step instead of once per access took the dominant term out of the
/// simulator's hot path.
#[derive(Clone)]
#[repr(C)] // class + total + keys[0..6] share the step's first cache line
struct Step {
    class: AccessClass,
    total: usize,
    /// Recorded keys (segment ids for `Mem`/`CudaLdSt`, full addresses for
    /// atomics); `keys[..total]` are live.
    keys: [u64; MAX_LANES],
}

impl Step {
    fn new(class: AccessClass) -> Self {
        Step {
            class,
            total: 0,
            keys: [0; MAX_LANES],
        }
    }

    #[inline]
    fn reset(&mut self, class: AccessClass) {
        self.class = class;
        self.total = 0;
    }

    /// Installs `key` as the step's first access.
    #[inline(always)]
    fn start(&mut self, key: u64) {
        self.keys[0] = key;
        self.total = 1;
    }

    #[inline(always)]
    fn record(&mut self, key: u64) {
        debug_assert!(
            self.total < MAX_LANES,
            "more lanes than WARP_SIZE in one step"
        );
        // the mask elides the bounds check; `total < MAX_LANES` is an
        // invariant (one access per lane per ordinal)
        self.keys[self.total & (MAX_LANES - 1)] = key;
        self.total += 1;
    }
}

/// Number of distinct values in `keys` (at most 32 lanes' worth).
///
/// Warp lanes usually touch monotonically non-decreasing addresses (lane
/// `l` loads `arr[base + l]`), so one O(n) pass checks sortedness — which
/// subsumes the fully-coalesced all-equal warp — and counts run boundaries.
/// Genuinely scattered steps fall back to a branchless O(n²)
/// first-occurrence count over the fixed-size array. All loops are
/// data-independent reductions that auto-vectorize.
#[inline]
fn distinct_keys(keys: &[u64]) -> usize {
    let n = keys.len();
    if n <= 1 {
        return n;
    }
    let mut sorted = true;
    let mut boundaries = 0usize;
    for i in 1..n {
        sorted &= keys[i] >= keys[i - 1];
        boundaries += usize::from(keys[i] != keys[i - 1]);
    }
    if sorted {
        return 1 + boundaries;
    }
    let mut d = 1usize; // keys[0] is always a first occurrence
    for i in 1..n {
        let k = keys[i];
        let mut dup = false;
        for &p in &keys[..i] {
            dup |= p == k;
        }
        d += usize::from(!dup);
    }
    d
}

/// Highest multiplicity of any one key (shared-memory atomics serialize by
/// same-address contention). Branchless O(n²) like [`distinct_keys`].
#[inline]
fn max_multiplicity(keys: &[u64]) -> usize {
    let mut best = 0usize;
    for &k in keys {
        let mut count = 0usize;
        for &p in keys {
            count += usize::from(p == k);
        }
        best = best.max(count);
    }
    best
}

/// Aggregates one warp round and prices it.
///
/// Tables are built for reuse: [`StepTable::clear`] keeps the step storage,
/// so a table that has warmed up to a kernel's deepest round never touches
/// the allocator again. The simulator holds one table per worker thread for
/// the life of the process (see `pool.rs`).
pub struct StepTable {
    steps: Vec<Step>,
    used: usize,
    /// Lifetime count of recorded accesses. Monotonic — survives
    /// [`StepTable::clear`] — so callers can take deltas around a block to
    /// attribute access counts without any per-record bookkeeping of their
    /// own.
    recorded: u64,
}

impl Default for StepTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StepTable {
    /// Empty table.
    pub fn new() -> Self {
        StepTable {
            steps: Vec::new(),
            used: 0,
            recorded: 0,
        }
    }

    /// Clears for the next warp round (keeps capacity).
    pub fn clear(&mut self) {
        self.used = 0;
    }

    /// Lifetime number of accesses recorded into this table (never reset).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records one access: lane-local step `ordinal`, class, and address
    /// (byte address; segmentation for coalescable classes happens here).
    ///
    /// If lanes disagree on the class at an ordinal (divergent code paths),
    /// the step is split implicitly: the later class opens a fresh step at
    /// the end. This is rare in the structured kernels and errs on the
    /// expensive side, like real divergence.
    #[inline(always)]
    pub fn record(&mut self, ordinal: usize, class: AccessClass, addr: u64) {
        self.recorded += 1;
        let key = match class {
            AccessClass::Mem | AccessClass::CudaLdSt => addr >> 7, // 128 B segment
            _ => addr,
        };
        if ordinal < self.used {
            // Safety: `used <= steps.len()` is a structural invariant.
            let step = unsafe { self.steps.get_unchecked_mut(ordinal) };
            if step.class == class {
                step.record(key);
                return;
            }
            // class mismatch: append a divergence step at the end
            self.open(self.used, class, key);
            return;
        }
        self.open(ordinal, class, key);
    }

    /// Opens step `ordinal` (resetting any gap steps before it — they stay
    /// empty and price at zero) and records its first key. Lanes record
    /// consecutive ordinals, so in practice `ordinal == used` and exactly
    /// one step is touched; the general form is kept for direct callers.
    #[inline]
    fn open(&mut self, ordinal: usize, class: AccessClass, key: u64) {
        if self.steps.len() <= ordinal {
            self.steps.resize(ordinal + 1, Step::new(class));
        }
        for i in self.used..ordinal {
            self.steps[i].reset(class);
        }
        let step = &mut self.steps[ordinal];
        step.class = class;
        step.start(key);
        self.used = ordinal + 1;
    }

    /// Number of lockstep steps recorded this round.
    pub fn steps_used(&self) -> usize {
        self.used
    }

    /// Prices the round and returns warp cycles. Deduplication of each
    /// step's keys happens here, once per step, instead of on the
    /// per-access record path (see [`Step`]).
    pub fn finalize(&self, c: &CostModel) -> f64 {
        let mut cycles = 0.0;
        // Local tallies, flushed once at the end. Without `telemetry` the
        // flush compiles out, the tallies become dead stores, and the whole
        // accounting is eliminated — the priced cycles are bit-identical
        // either way.
        let (mut coalesced, mut uncoalesced) = (0u64, 0u64);
        let (mut atomic_ops, mut atomic_conflicts, mut shared_atomics) = (0u64, 0u64, 0u64);
        for step in &self.steps[..self.used] {
            if step.total == 0 {
                continue;
            }
            // divergence leaves many single-lane steps: price them without
            // touching the scan loops (distinct = multiplicity = 1)
            if step.total == 1 {
                cycles += match step.class {
                    AccessClass::Mem => {
                        coalesced += 1;
                        c.issue + c.mem_segment
                    }
                    AccessClass::CudaLdSt => {
                        coalesced += 1;
                        (c.issue + c.mem_segment) * c.cuda_ldst_mult
                    }
                    AccessClass::AtomicRmw => {
                        atomic_ops += 1;
                        c.atomic_issue + c.atomic_per_addr
                    }
                    AccessClass::CudaAtomicRmw => {
                        atomic_ops += 1;
                        (c.atomic_issue + c.atomic_per_addr) * c.cuda_atomic_mult
                    }
                    AccessClass::SharedAtomic => {
                        shared_atomics += 1;
                        c.issue + c.shared_serial
                    }
                };
                continue;
            }
            let keys = &step.keys[..step.total.min(MAX_LANES)];
            cycles += match step.class {
                AccessClass::Mem => {
                    let d = distinct_keys(keys);
                    if d == 1 {
                        coalesced += 1;
                    } else {
                        uncoalesced += d as u64;
                    }
                    c.issue + d as f64 * c.mem_segment
                }
                AccessClass::CudaLdSt => {
                    let d = distinct_keys(keys);
                    if d == 1 {
                        coalesced += 1;
                    } else {
                        uncoalesced += d as u64;
                    }
                    (c.issue + d as f64 * c.mem_segment) * c.cuda_ldst_mult
                }
                AccessClass::AtomicRmw => {
                    let d = distinct_keys(keys);
                    atomic_ops += step.total as u64;
                    atomic_conflicts += (step.total - d) as u64;
                    c.atomic_issue
                        + d as f64 * c.atomic_per_addr
                        + (step.total - d) as f64 * c.atomic_aggregate
                }
                AccessClass::CudaAtomicRmw => {
                    let d = distinct_keys(keys);
                    atomic_ops += step.total as u64;
                    atomic_conflicts += (step.total - d) as u64;
                    (c.atomic_issue
                        + d as f64 * c.atomic_per_addr
                        + (step.total - d) as f64 * c.atomic_aggregate)
                        * c.cuda_atomic_mult
                }
                AccessClass::SharedAtomic => {
                    let m = max_multiplicity(keys);
                    shared_atomics += step.total as u64;
                    atomic_conflicts += (m - 1) as u64;
                    c.issue + m as f64 * c.shared_serial
                }
            };
        }
        if indigo_obs::enabled() {
            use indigo_obs::Counter;
            Counter::SimCoalescedTxns.add(coalesced);
            Counter::SimUncoalescedTxns.add(uncoalesced);
            Counter::SimAtomicOps.add(atomic_ops);
            Counter::SimAtomicConflicts.add(atomic_conflicts);
            Counter::SimSharedAtomics.add(shared_atomics);
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::titan_v;

    fn costs() -> CostModel {
        titan_v().cost
    }

    #[test]
    fn coalesced_load_is_one_segment() {
        let mut t = StepTable::new();
        for lane in 0..32u64 {
            t.record(0, AccessClass::Mem, lane * 4); // consecutive u32s
        }
        let c = costs();
        assert_eq!(t.finalize(&c), c.issue + c.mem_segment);
    }

    #[test]
    fn scattered_load_pays_per_segment() {
        let mut t = StepTable::new();
        for lane in 0..32u64 {
            t.record(0, AccessClass::Mem, lane * 4096); // all different segments
        }
        let c = costs();
        assert_eq!(t.finalize(&c), c.issue + 32.0 * c.mem_segment);
    }

    #[test]
    fn same_address_atomics_aggregate() {
        let c = costs();
        let mut same = StepTable::new();
        let mut scattered = StepTable::new();
        for lane in 0..32u64 {
            same.record(0, AccessClass::AtomicRmw, 0);
            scattered.record(0, AccessClass::AtomicRmw, lane * 4096);
        }
        assert!(same.finalize(&c) < scattered.finalize(&c));
        assert_eq!(
            same.finalize(&c),
            c.atomic_issue + c.atomic_per_addr + 31.0 * c.atomic_aggregate
        );
    }

    #[test]
    fn cuda_atomic_multiplier_applies() {
        let c = costs();
        let mut classic = StepTable::new();
        let mut cuda = StepTable::new();
        classic.record(0, AccessClass::AtomicRmw, 128);
        cuda.record(0, AccessClass::CudaAtomicRmw, 128);
        let ratio = cuda.finalize(&c) / classic.finalize(&c);
        assert!((ratio - c.cuda_atomic_mult).abs() < 1e-9);
    }

    #[test]
    fn shared_atomic_serializes_by_multiplicity() {
        let c = costs();
        let mut same = StepTable::new();
        let mut spread = StepTable::new();
        for lane in 0..32u64 {
            same.record(0, AccessClass::SharedAtomic, 0);
            spread.record(0, AccessClass::SharedAtomic, lane * 8);
        }
        assert_eq!(same.finalize(&c), c.issue + 32.0 * c.shared_serial);
        assert_eq!(spread.finalize(&c), c.issue + c.shared_serial);
    }

    #[test]
    fn divergent_lane_extends_the_round() {
        let c = costs();
        let mut t = StepTable::new();
        // lane 0 performs 10 steps, the others 1
        for step in 0..10u64 {
            t.record(step as usize, AccessClass::Mem, step * 4096);
        }
        for lane in 1..32u64 {
            t.record(0, AccessClass::Mem, lane * 4);
        }
        assert_eq!(t.steps_used(), 10);
        assert!(t.finalize(&c) >= 10.0 * c.issue);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut t = StepTable::new();
        t.record(0, AccessClass::Mem, 0);
        t.clear();
        assert_eq!(t.steps_used(), 0);
        assert_eq!(t.finalize(&costs()), 0.0);
    }

    #[test]
    fn recorded_counter_is_monotonic_across_clear() {
        let mut t = StepTable::new();
        for lane in 0..32u64 {
            t.record(0, AccessClass::Mem, lane * 4);
        }
        assert_eq!(t.recorded(), 32);
        t.clear();
        t.record(0, AccessClass::AtomicRmw, 0);
        assert_eq!(t.recorded(), 33);
    }

    #[test]
    fn class_mismatch_splits_step() {
        let mut t = StepTable::new();
        t.record(0, AccessClass::Mem, 0);
        t.record(0, AccessClass::AtomicRmw, 64); // different class, same ordinal
        assert_eq!(t.steps_used(), 2);
    }
}
