//! `/metrics`: Prometheus text exposition for the serving layer
//! (DESIGN.md §7.10).
//!
//! Two metric families, two sources of truth:
//!
//! * `indigo_serve_*` — rendered from the always-on [`StatsSnapshot`] (the
//!   same coherent sweep `/stats` serves, so the two endpoints agree by
//!   construction in every build), plus live gauges read directly from the
//!   server (queue depth, live flights, parked connections, open
//!   breakers) and the rolling-window view (live p50/p99, SLO violation
//!   ratio and burn rate against the configured threshold).
//! * `indigo_obs_*` — every pre-registered obs counter, gauge, and log₂
//!   histogram, names sanitized (`.` → `_`). These read zero in
//!   `telemetry`-off builds; the family is emitted anyway so dashboards
//!   keep a stable shape across build flavors.
//!
//! Histograms use the shared log₂ buckets: bucket `k` holds integer values
//! `[2^(k−1), 2^k)`, so its inclusive upper bound is `le="2^k − 1"`; the
//! top bucket is `+Inf`. `_sum` is approximated from bucket floors and
//! documented as a lower bound (the exact sum is not tracked — recording
//! stays one `fetch_add`).
//!
//! [`validate_exposition`] is the hand-rolled syntax checker the chaos
//! harness and CI scrape gate run against the rendered text.

use std::collections::{HashMap, HashSet};

use indigo_obs::hist::{bucket_floor, NUM_BUCKETS};
use indigo_obs::{counters_snapshot, gauges_snapshot, hists_snapshot, RollingSnapshot};
use indigo_obs::{Counter, Gauge, Hist};

use crate::stats::{ServeCounter, StatsSnapshot};

/// Everything the renderer needs, gathered by the server at scrape time.
pub struct MetricsView<'a> {
    /// The same coherent counter sweep `/stats` reports.
    pub stats: &'a StatsSnapshot,
    /// Last ~10 s of request latencies.
    pub rolling: RollingSnapshot,
    /// Admission-queue depth right now.
    pub queue_depth: usize,
    /// Cells in flight in the single-flight registry right now.
    pub live_flights: usize,
    /// Keep-alive connections parked in the reactor right now.
    pub parked_conns: usize,
    /// Circuit breakers currently open.
    pub open_breakers: usize,
    /// Flight-recorder lifetime pushes.
    pub recorder_pushed: u64,
    /// Flight-recorder dumps written.
    pub recorder_dumps: u64,
    /// SLO latency threshold, µs (config `slo_micros`).
    pub slo_micros: u64,
}

/// `.` → `_` (obs names are `layer.snake_case`; exposition names are
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn sanitize(name: &str) -> String {
    name.replace('.', "_")
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders one log₂ histogram in exposition form from raw bucket counts.
fn render_log2_hist(out: &mut String, name: &str, help: &str, buckets: &[u64; NUM_BUCKETS]) {
    family(out, name, help, "histogram");
    let mut cumulative = 0u64;
    let mut sum_floor = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        sum_floor = sum_floor.saturating_add(c.saturating_mul(bucket_floor(i)));
        if i == NUM_BUCKETS - 1 {
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        } else {
            // bucket i holds [2^(i-1), 2^i): inclusive integer upper bound
            let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
    }
    out.push_str(&format!(
        "{name}_sum {sum_floor}\n{name}_count {cumulative}\n"
    ));
}

/// Renders the full `/metrics` body.
#[must_use]
pub fn render(v: &MetricsView) -> String {
    let mut out = String::with_capacity(16 * 1024);

    // ---- serve family: always-on stats, agrees with /stats ----
    for c in ServeCounter::ALL {
        let name = format!("indigo_serve_{}_total", c.name());
        family(
            &mut out,
            &name,
            "Serving pipeline counter (see /stats).",
            "counter",
        );
        out.push_str(&format!("{name} {}\n", v.stats.get(c)));
    }
    render_log2_hist(
        &mut out,
        "indigo_serve_request_latency_us",
        "End-to-end request latency since boot, microseconds (log2 buckets; _sum is a bucket-floor lower bound).",
        &v.stats.latency_buckets,
    );

    // rolling window: live percentiles + SLO burn
    let win = [
        (
            "indigo_serve_rolling_p50_us",
            "Rolling-window (10s) p50 request latency floor, microseconds.",
            v.rolling.percentile_floor(50.0).to_string(),
        ),
        (
            "indigo_serve_rolling_p99_us",
            "Rolling-window (10s) p99 request latency floor, microseconds.",
            v.rolling.percentile_floor(99.0).to_string(),
        ),
        (
            "indigo_serve_rolling_window_requests",
            "Requests finished inside the rolling window.",
            v.rolling.count().to_string(),
        ),
        (
            "indigo_serve_slo_threshold_us",
            "Configured latency SLO threshold, microseconds.",
            v.slo_micros.to_string(),
        ),
        (
            "indigo_serve_slo_violation_ratio",
            "Fraction of rolling-window requests at or above the SLO threshold.",
            format!("{:.6}", v.rolling.violation_ratio(v.slo_micros)),
        ),
        (
            "indigo_serve_slo_burn_rate",
            "SLO violation ratio divided by a 1% error budget (>1 burns budget).",
            format!("{:.6}", v.rolling.violation_ratio(v.slo_micros) / 0.01),
        ),
        (
            "indigo_serve_queue_depth",
            "Admission-queue depth right now.",
            v.queue_depth.to_string(),
        ),
        (
            "indigo_serve_live_flights",
            "Cells currently in flight in the single-flight registry.",
            v.live_flights.to_string(),
        ),
        (
            "indigo_serve_parked_connections",
            "Keep-alive connections parked in the reactor.",
            v.parked_conns.to_string(),
        ),
        (
            "indigo_serve_open_breakers",
            "Circuit breakers currently open.",
            v.open_breakers.to_string(),
        ),
    ];
    for (name, help, value) in win {
        family(&mut out, name, help, "gauge");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, help, value) in [
        (
            "indigo_serve_flightrec_pushed_total",
            "Requests recorded into the flight-recorder ring.",
            v.recorder_pushed,
        ),
        (
            "indigo_serve_flight_dumps_total",
            "Flight-recorder dumps written to FLIGHT_*.jsonl.",
            v.recorder_dumps,
        ),
    ] {
        family(&mut out, name, help, "counter");
        out.push_str(&format!("{name} {value}\n"));
    }

    // ---- obs family: every pre-registered counter/gauge/histogram ----
    let counters = counters_snapshot();
    for c in Counter::ALL {
        let name = format!("indigo_obs_{}_total", sanitize(c.name()));
        family(
            &mut out,
            &name,
            "Workspace obs counter (zero in telemetry-off builds).",
            "counter",
        );
        out.push_str(&format!("{name} {}\n", counters.get(c)));
    }
    let gauges = gauges_snapshot();
    for g in Gauge::ALL {
        let name = format!("indigo_obs_{}", sanitize(g.name()));
        family(
            &mut out,
            &name,
            "Workspace obs gauge (zero in telemetry-off builds).",
            "gauge",
        );
        out.push_str(&format!("{name} {}\n", gauges.get(g)));
    }
    let hists = hists_snapshot();
    for h in Hist::ALL {
        let name = format!("indigo_obs_{}", sanitize(h.name()));
        render_log2_hist(
            &mut out,
            &name,
            "Workspace obs histogram (log2 buckets; zero in telemetry-off builds).",
            hists.buckets(h),
        );
    }
    out
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Splits `name{labels}` into the name and the raw label text (labels may
/// be absent). Errors on unbalanced braces.
fn split_sample(line: &str) -> Result<(&str, Option<&str>, &str), String> {
    if let Some(open) = line.find('{') {
        let close = line
            .rfind('}')
            .ok_or_else(|| "unbalanced `{`".to_string())?;
        if close < open {
            return Err("unbalanced `}`".to_string());
        }
        let value = line[close + 1..].trim();
        Ok((&line[..open], Some(&line[open + 1..close]), value))
    } else {
        let (name, value) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| "sample missing value".to_string())?;
        Ok((name, None, value.trim()))
    }
}

fn validate_labels(raw: &str) -> Result<(), String> {
    for part in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = part
            .trim()
            .split_once('=')
            .ok_or_else(|| format!("label `{part}` missing `=`"))?;
        if !valid_metric_name(k.trim()) {
            return Err(format!("bad label name `{k}`"));
        }
        let v = v.trim();
        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
            return Err(format!("label value `{v}` not quoted"));
        }
    }
    Ok(())
}

/// Validates Prometheus text exposition syntax: `# TYPE` declared once per
/// family and before its samples, metric/label name charsets, quoted label
/// values, parseable sample values, no duplicate (name, labels) series,
/// histogram `_bucket`/`_sum`/`_count` consistency (cumulative buckets,
/// `+Inf` present and equal to `_count`), and a trailing newline. Returns
/// the number of samples on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut types: HashMap<String, String> = HashMap::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // histogram family → (buckets in order, has_inf, inf_value, count)
    #[derive(Default)]
    struct HistCheck {
        last_cumulative: Option<u64>,
        inf_value: Option<u64>,
        count: Option<u64>,
    }
    let mut hist_checks: HashMap<String, HistCheck> = HashMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let ln = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or(format!("line {ln}: TYPE missing name"))?;
                let kind = parts
                    .next()
                    .ok_or(format!("line {ln}: TYPE missing kind"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {ln}: bad metric name `{name}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {ln}: unknown TYPE `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {ln}: duplicate TYPE for `{name}`"));
                }
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl
                    .split_whitespace()
                    .next()
                    .ok_or(format!("line {ln}: HELP missing name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {ln}: bad metric name `{name}`"));
                }
            }
            // other comments are legal and ignored
            continue;
        }

        let (name, labels, value) = split_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        if !valid_metric_name(name) {
            return Err(format!("line {ln}: bad metric name `{name}`"));
        }
        if let Some(raw) = labels {
            validate_labels(raw).map_err(|e| format!("line {ln}: {e}"))?;
        }
        // allow an optional trailing integer timestamp after the value
        let mut vparts = value.split_whitespace();
        let value = vparts.next().unwrap_or("");
        if let Some(ts) = vparts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {ln}: bad timestamp `{ts}`"));
            }
        }
        if !valid_value(value) {
            return Err(format!("line {ln}: bad sample value `{value}`"));
        }

        // the family a sample belongs to: itself, or base name for
        // histogram/summary series suffixes
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf))
            .filter(|base| types.contains_key(*base))
            .unwrap_or(name);
        let kind = types
            .get(base)
            .ok_or(format!("line {ln}: sample `{name}` has no preceding TYPE"))?;

        let series = format!("{name}{{{}}}", labels.unwrap_or(""));
        if !seen_series.insert(series) {
            return Err(format!("line {ln}: duplicate series for `{name}`"));
        }

        if kind == "histogram" && base != name {
            let check = hist_checks.entry(base.to_string()).or_default();
            let v: u64 = value
                .parse::<f64>()
                .map(|f| f as u64)
                .map_err(|_| format!("line {ln}: histogram series must be numeric"))?;
            match name.strip_prefix(base).unwrap_or("") {
                "_bucket" => {
                    let is_inf = labels.is_some_and(|l| l.contains("+Inf"));
                    if let Some(prev) = check.last_cumulative {
                        if v < prev {
                            return Err(format!(
                                "line {ln}: `{base}` buckets not cumulative ({v} < {prev})"
                            ));
                        }
                    }
                    check.last_cumulative = Some(v);
                    if is_inf {
                        check.inf_value = Some(v);
                    }
                }
                "_count" => check.count = Some(v),
                _ => {}
            }
        }
        samples += 1;
    }

    for (base, check) in &hist_checks {
        let inf = check
            .inf_value
            .ok_or(format!("histogram `{base}` missing +Inf bucket"))?;
        let count = check
            .count
            .ok_or(format!("histogram `{base}` missing _count"))?;
        if inf != count {
            return Err(format!(
                "histogram `{base}`: +Inf bucket {inf} != _count {count}"
            ));
        }
    }
    if samples == 0 {
        return Err("exposition has no samples".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn view_of(stats: &StatsSnapshot) -> MetricsView<'_> {
        MetricsView {
            stats,
            rolling: indigo_obs::RollingHist::new().snapshot_at(0),
            queue_depth: 2,
            live_flights: 1,
            parked_conns: 3,
            open_breakers: 0,
            recorder_pushed: 9,
            recorder_dumps: 1,
            slo_micros: 250_000,
        }
    }

    #[test]
    fn rendered_exposition_validates_and_covers_all_families() {
        let stats = Stats::new();
        stats.bump(crate::stats::ServeCounter::Requests);
        stats.record_latency(1_000);
        let snap = stats.snapshot();
        let body = render(&view_of(&snap));
        let samples = validate_exposition(&body).expect("own exposition must validate");
        assert!(samples > 100, "expected a rich exposition, got {samples}");
        // serve family agrees with the snapshot
        assert!(body.contains("indigo_serve_requests_total 1\n"));
        // every obs counter is present (40+ of them)
        for c in Counter::ALL {
            assert!(
                body.contains(&format!("indigo_obs_{}_total ", sanitize(c.name()))),
                "missing counter {}",
                c.name()
            );
        }
        for g in Gauge::ALL {
            assert!(body.contains(&format!("indigo_obs_{}", sanitize(g.name()))));
        }
        for h in Hist::ALL {
            assert!(body.contains(&format!("indigo_obs_{}_count", sanitize(h.name()))));
        }
        assert!(body.contains("indigo_serve_request_latency_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(body.contains("indigo_serve_queue_depth 2\n"));
        assert!(body.contains("indigo_serve_slo_threshold_us 250000\n"));
    }

    #[test]
    fn validator_accepts_well_formed_text() {
        let ok = "# HELP x_total things\n# TYPE x_total counter\nx_total 3\n\
                  # TYPE g gauge\ng{shard=\"a\",n=\"1\"} 2.5\n\
                  # TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n";
        assert_eq!(validate_exposition(ok).unwrap(), 6);
    }

    #[test]
    fn validator_rejects_malformed_text() {
        let cases: &[(&str, &str)] = &[
            ("x_total 3\n", "no preceding TYPE"),
            ("# TYPE x counter\nx nope\n", "bad sample value"),
            ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
            ("# TYPE x counter\nx 1\nx 1\n", "duplicate series"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
            ("# TYPE x counter\nx{l=unquoted} 1\n", "not quoted"),
            ("# TYPE x counter\nx{l=\"v\" 1\n", "unbalanced"),
            ("# TYPE x counter\nx 1", "end with a newline"),
            ("# TYPE x wat\nx 1\n", "unknown TYPE"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
                "not cumulative",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
                "missing +Inf",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
                "!= _count",
            ),
            ("", "empty"),
        ];
        for (text, want) in cases {
            let err = validate_exposition(text).expect_err(&format!("accepted: {text:?}"));
            assert!(
                err.contains(want),
                "error `{err}` should mention `{want}` for {text:?}"
            );
        }
    }

    #[test]
    fn log2_histogram_edges_are_inclusive_upper_bounds() {
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets[0] = 2; // value 0
        buckets[1] = 1; // value 1
        buckets[3] = 4; // values 4..8
        let mut out = String::new();
        render_log2_hist(&mut out, "t", "test", &buckets);
        assert!(out.contains("t_bucket{le=\"0\"} 2\n"));
        assert!(out.contains("t_bucket{le=\"1\"} 3\n"));
        assert!(out.contains("t_bucket{le=\"7\"} 7\n"));
        assert!(out.contains("t_bucket{le=\"+Inf\"} 7\n"));
        assert!(out.contains("t_count 7\n"));
        // floor-sum lower bound: 2*0 + 1*1 + 4*4 = 17
        assert!(out.contains("t_sum 17\n"));
        assert!(validate_exposition(&out).is_ok());
    }
}
