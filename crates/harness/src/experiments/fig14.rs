//! Figure 14: percentage of each style among the best-performing codes.
//!
//! For every (model, algorithm, input, target) cell, the highest-throughput
//! variant is selected; the figure reports, per model and per style option,
//! what share of those winners uses the option (paper §5.14). The six
//! dimensions are the pairs applicable to all three programming models.

use super::Dataset;
use crate::report::Report;
use indigo_styles::{Algorithm, Model};
use std::collections::HashMap;

/// The six pair-dimensions of the paper's Fig 14, with their option labels.
pub const DIMS: &[(&str, &[&str])] = &[
    ("direction", &["vertex", "edge"]),
    ("drive", &["topo", "data-dup", "data-nodup"]),
    ("flow", &["push", "pull"]),
    ("update", &["rw", "rmw"]),
    ("determinism", &["det", "nondet"]),
];

/// Winner variants per (model, algorithm, graph, target).
pub fn winners(ds: &Dataset, model: Model) -> Vec<crate::matrix::Measurement> {
    let mut best: HashMap<(Algorithm, &'static str, String), crate::matrix::Measurement> =
        HashMap::new();
    for m in ds.measurements.iter().filter(|m| m.cfg.model == model) {
        let key = (m.cfg.algorithm, m.graph, m.target.clone());
        match best.get(&key) {
            Some(cur) if cur.geps >= m.geps => {}
            _ => {
                best.insert(key, m.clone());
            }
        }
    }
    best.into_values().collect()
}

/// Builds the Fig 14 report.
pub fn fig14(ds: &Dataset) -> Report {
    let mut r = Report::new(
        "fig14",
        "Percentage of each style in the best-performing codes (§5.14)",
    );
    // header
    let mut header = format!("{:<12}", "model");
    for (_, opts) in DIMS {
        for opt in *opts {
            header.push_str(&format!(" {opt:>10}"));
        }
    }
    r.line(&header);
    r.csv_row("model,dimension,option,percent");
    for model in Model::ALL {
        let winners = winners(ds, model);
        let mut row = format!("{:<12}", model.display());
        for (dim, opts) in DIMS {
            // denominator: winners for which the dimension applies
            let applicable: Vec<_> = winners
                .iter()
                .filter(|m| m.cfg.dimension_label(dim).is_some())
                .collect();
            for opt in *opts {
                let hits = applicable
                    .iter()
                    .filter(|m| m.cfg.dimension_label(dim) == Some(opt))
                    .count();
                let pct = if applicable.is_empty() {
                    f64::NAN
                } else {
                    100.0 * hits as f64 / applicable.len() as f64
                };
                row.push_str(&format!(" {pct:>9.0}%"));
                r.csv_row(format!("{},{dim},{opt},{pct:.1}", model.label()));
            }
        }
        r.line(&row);
    }
    r
}
