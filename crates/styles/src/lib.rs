//! # indigo-styles
//!
//! The 13 parallelization/implementation style dimensions of the SC'23
//! Indigo2 study (paper §2), the per-algorithm applicability matrix
//! (Table 2), and the variant enumerator that combines the applicable styles
//! into the suite of "programs" (Table 3).
//!
//! A [`StyleConfig`] is one fully-specified program variant: an algorithm, a
//! programming model, and one choice for every dimension that applies to
//! that pair. [`enumerate::variants`] generates every *valid* combination —
//! the Rust analog of the paper's config-driven code generator — and
//! [`filter::VariantFilter`] selects subsets the way the paper's
//! configuration files do.
//!
//! ```
//! use indigo_styles::{enumerate, Algorithm, Model};
//!
//! let cuda_sssp = enumerate::variants(Algorithm::Sssp, Model::Cuda);
//! assert!(cuda_sssp.len() > 100); // hundreds of CUDA SSSP programs
//! for v in &cuda_sssp {
//!     assert!(v.check().is_ok());
//! }
//! ```

pub mod applicability;
pub mod config;
pub mod conformance;
pub mod dims;
pub mod enumerate;
pub mod filter;

pub use config::StyleConfig;
pub use conformance::StyleExpectation;
pub use dims::{
    Algorithm, AtomicKind, CppSchedule, CpuReduction, Determinism, Direction, Drive, Flow,
    GpuReduction, Granularity, Model, OmpSchedule, Persistence, Update, WorklistDup,
};
