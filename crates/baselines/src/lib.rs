//! # indigo-baselines
//!
//! Optimized "third-party" comparison codes for the paper's §5.17
//! experiment (Fig 16 / Table 6). The paper compares its style variants
//! against Lonestar (CPU) and Gardenia (GPU); both are C++/CUDA code bases
//! we cannot link, so this crate implements *the same documented
//! optimizations* from scratch:
//!
//! * [`bfs`] — direction-optimizing BFS (Beamer et al., the optimization
//!   behind both suites' BFS),
//! * [`sssp`] — delta-stepping bucket scheduling (Lonestar's priority
//!   scheduler that "processes the vertices in ascending distance"),
//! * [`cc`] — union-find with path-halving hooks (Afforest-style, far less
//!   work than label propagation),
//! * [`mis`] — priority MIS with early neighbor-max short-circuiting
//!   (CPU only — the paper notes MIS is missing from Gardenia),
//! * [`pr`] — pull PageRank with a precomputed reciprocal-degree table,
//! * [`tc`] — orientation (redundant-edge-removal) triangle counting, the
//!   Gardenia optimization the paper credits for its TC results.
//!
//! Each baseline produces output in the same shape as `indigo-core` so the
//! same verifiers apply, and each has a CPU entry point plus (where the
//! paper compares on GPUs) a simulated-GPU entry point.
//!
//! ## Zero steady-state allocation (DESIGN.md §7.7)
//!
//! Every CPU kernel leases its scratch (frontier, buckets, score/label
//! arrays, degree tables) from a process-wide [`indigo_exec::PoolRegistry`]
//! and retains capacity across levels, waves, iterations, *and* calls:
//! after a first warm-up call per shape, the kernels allocate nothing.
//! Each module's `cpu` wraps a `cpu_into` variant that also reuses the
//! caller's output buffer — the form the allocation-regression test and
//! the `cpu_perf` probe pin at exactly zero steady-state allocations.

pub mod bfs;
pub mod cc;
pub mod mis;
pub mod pr;
pub mod sssp;
pub mod tc;

use indigo_exec::{Lease, OmpPool, PoolRegistry};

static POOLS: PoolRegistry<OmpPool> = PoolRegistry::new();

/// Leases a worker pool with `threads` workers (min 1) from the process-wide
/// registry, so repeated fig16 cells reuse parked workers instead of
/// respawning a thread team per call.
pub(crate) fn pool(threads: usize) -> Lease<OmpPool> {
    let t = threads.max(1);
    POOLS.lease_guard(t, || OmpPool::new(t))
}
