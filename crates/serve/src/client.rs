//! A minimal blocking HTTP/1.1 GET client for tests and the chaos harness.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header value, when present.
    pub retry_after: Option<u64>,
    /// Response body.
    pub body: String,
}

/// Issues `GET {target}` and reads the full response. `timeout` bounds
/// connect, read, and write individually.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: indigo\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse(&raw)
}

fn parse(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let text = String::from_utf8_lossy(raw);
    let mut head_and_body = text.splitn(2, "\r\n\r\n");
    let head = head_and_body.next().unwrap_or("");
    let body = head_and_body.next().unwrap_or("").to_string();
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::other("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line}")))?;
    let retry_after = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, v)| v.trim().parse().ok());
    Ok(ClientResponse {
        status,
        retry_after,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_retry_after_and_body() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\n\
                    Content-Length: 2\r\n\r\n{}";
        let r = parse(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after, Some(7));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse(b"").is_err());
        assert!(parse(b"not http at all\r\n\r\nx").is_err());
    }
}
