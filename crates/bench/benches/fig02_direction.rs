//! Fig 2 bench: vertex- vs edge-based iteration, GPU (2a) and CPU (2b),
//! plus the thread-granularity TC subset (2c).

use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Direction, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let soc = input(SuiteGraph::SocialNetwork);
    for algo in [Algorithm::Sssp, Algorithm::Tc, Algorithm::Mis] {
        for dir in Direction::ALL {
            let mut gpu = StyleConfig::baseline(algo, Model::Cuda);
            gpu.direction = dir;
            if gpu.check().is_ok() {
                bench_gpu_variant(
                    &mut c,
                    "fig02_direction_gpu",
                    &format!("{}/{}", algo.label(), dir.label()),
                    &gpu,
                    &soc,
                    rtx3090(),
                );
            }
            let mut cpu = StyleConfig::baseline(algo, Model::Cpp);
            cpu.direction = dir;
            if cpu.check().is_ok() {
                bench_cpu_variant(
                    &mut c,
                    "fig02_direction_cpu",
                    &format!("{}/{}", algo.label(), dir.label()),
                    &cpu,
                    &soc,
                    4,
                );
            }
        }
    }
    c.final_summary();
}
