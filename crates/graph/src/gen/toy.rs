//! Tiny named graphs with hand-checkable solutions.
//!
//! Used across the workspace's unit tests to pin exact expected outputs
//! (levels, distances, component counts, triangle counts).

use crate::{Csr, GraphBuilder, NodeId};

/// Path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as NodeId, v as NodeId);
    }
    b.build(format!("path{n}"))
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
    }
    b.build(format!("cycle{n}"))
}

/// Star: center 0 connected to `1..n`.
pub fn star(n: usize) -> Csr {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as NodeId);
    }
    b.build(format!("star{n}"))
}

/// Complete graph K_n.
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for a in 0..n {
        for c in a + 1..n {
            b.add_edge(a as NodeId, c as NodeId);
        }
    }
    b.build(format!("k{n}"))
}

/// Two disjoint triangles: components {0,1,2} and {3,4,5}.
pub fn two_triangles() -> Csr {
    let mut b = GraphBuilder::new(6);
    for (a, c) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        b.add_edge(a, c);
    }
    b.build("two-triangles")
}

/// The weighted diamond used in SSSP tests:
///
/// ```text
///       1 ──(1)── 3
///  (1)/            \(1)
///   0               4      shortest 0→4 = 3 via either side? no:
///  (4)\            /(1)    via 1,3: 1+1+1 = 3;  via 2: 4+1 = 5
///       2 ────────┘
/// ```
pub fn weighted_diamond() -> Csr {
    let mut b = GraphBuilder::new_weighted(5);
    b.add_weighted_edge(0, 1, 1);
    b.add_weighted_edge(1, 3, 1);
    b.add_weighted_edge(3, 4, 1);
    b.add_weighted_edge(0, 2, 4);
    b.add_weighted_edge(2, 4, 1);
    b.build("weighted-diamond")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_degrees() {
        let g = path(5);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn cycle_uniform_degree() {
        let g = cycle(6);
        assert!((0..6u32).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_center() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_counts() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 5 * 4);
    }

    #[test]
    fn diamond_weights() {
        let g = weighted_diamond();
        assert!(g.is_weighted());
        assert_eq!(g.neighbor_weights(0), &[1, 4]);
    }
}
