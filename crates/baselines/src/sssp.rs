//! Optimized SSSP baselines.
//!
//! * CPU: delta-stepping (Meyer & Sanders) — Lonestar's approach of
//!   processing vertices in ascending-distance priority buckets.
//! * GPU: a near–far worklist split — Gardenia's "two extra arrays" scheme
//!   the paper describes in §5.17: relaxations below the moving threshold go
//!   to the near pile processed now, the rest to the far pile processed
//!   when the threshold advances.

use indigo_core::GraphInput;
use indigo_exec::frontier::{fill_atomic_u32, grained_for, PushBuffers};
use indigo_exec::sync::fetch_min;
use indigo_exec::{PoolRegistry, Schedule};
use indigo_gpusim::{Assign, Device, GpuBuf, Sim};
use indigo_graph::{scan_prefetched, NodeId, INF};
use std::sync::atomic::{AtomicU32, Ordering};

/// Bucket width for delta-stepping / threshold step for near–far
/// (synthetic weights are 1..=255; 64 gives a handful of buckets per wave).
const DELTA: u32 = 64;

/// Capacity-retained delta-stepping state, leased per call: the bucket
/// vectors, the drained-wave list, and the per-thread push piles all keep
/// their storage across waves and calls (DESIGN.md §7.7).
#[derive(Default)]
struct Scratch {
    dist: Vec<AtomicU32>,
    buckets: Vec<Vec<u32>>,
    active: Vec<u32>,
    /// `(bucket, vertex)` pairs relaxed by the current wave.
    pushed: PushBuffers<(u32, u32)>,
}

static SCRATCH: PoolRegistry<Scratch> = PoolRegistry::new();

/// CPU delta-stepping. Returns `(distances, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize, source: NodeId) -> (Vec<u32>, f64) {
    let mut out = Vec::new();
    let secs = cpu_into(input, threads, source, &mut out);
    (out, secs)
}

/// [`cpu`] writing the distances into a caller-owned buffer; with a warm
/// buffer the call is allocation-free.
pub fn cpu_into(input: &GraphInput, threads: usize, source: NodeId, out: &mut Vec<u32>) -> f64 {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    out.clear();
    if n == 0 {
        return start.elapsed().as_secs_f64();
    }
    let mut scratch = SCRATCH.lease_guard(0, Scratch::default);
    let Scratch {
        dist,
        buckets,
        active,
        pushed,
    } = &mut *scratch;
    fill_atomic_u32(dist, n, INF);
    for b in buckets.iter_mut() {
        b.clear(); // drained by the previous call; clear defensively
    }
    active.clear();
    pushed.reset(pool.num_threads());
    *dist[source as usize].get_mut() = 0;
    if buckets.is_empty() {
        buckets.push(Vec::new());
    }
    buckets[0].push(source);

    let mut current = 0usize;
    while current < buckets.len() {
        // settle the current bucket to a fixpoint (light-edge reinsertions)
        while !buckets[current].is_empty() {
            // copy (not swap) the wave out so every buffer's capacity grows
            // monotonically — swapping would shuffle capacities between
            // `active` and the buckets and cause steady-state reallocs
            active.clear();
            active.extend_from_slice(&buckets[current]);
            buckets[current].clear();
            let wave: &[u32] = active;
            let piles: &PushBuffers<(u32, u32)> = pushed;
            let dst: &[AtomicU32] = dist;
            grained_for(&pool, wave.len(), Schedule::Default, |ai, tid| {
                let v = wave[ai];
                let dv = dst[v as usize].load(Ordering::Relaxed);
                if dv == INF || (dv / DELTA) as usize != current {
                    // stale entry: v settled in an earlier bucket
                    if indigo_obs::enabled() {
                        indigo_obs::Counter::FrontierBucketReinsertions.incr();
                    }
                    return;
                }
                let range = g.neighbor_range(v);
                let weights = &g.weights()[range];
                scan_prefetched(g.neighbors(v), dst, |off, u| {
                    let nd = dv + weights[off];
                    if fetch_min(&dst[u as usize], nd) > nd {
                        if indigo_obs::enabled() {
                            indigo_obs::Counter::FrontierBucketPushes.incr();
                        }
                        // Safety: parallel_for/grained_for hand each worker
                        // a distinct tid.
                        unsafe { piles.push(tid, (nd / DELTA, u)) };
                    }
                });
            });
            active.clear();
            pushed.drain(|(b, u)| {
                let b = b as usize;
                if b >= buckets.len() {
                    buckets.resize(b + 1, Vec::new());
                }
                buckets[b].push(u);
            });
        }
        current += 1;
    }
    out.extend(dist.iter_mut().map(|c| *c.get_mut()));
    start.elapsed().as_secs_f64()
}

/// Simulated-GPU near–far SSSP. Returns `(distances, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device, source: NodeId) -> (Vec<u32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    let dist = GpuBuf::new(n, INF).with_kind(indigo_gpusim::BufKind::Atomic);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    dist.host_write(source as usize, 0);

    let cap = 4 * dg.m + 64;
    let near = GpuBuf::new(cap, 0);
    let near_size = GpuBuf::new(1, 1).with_kind(indigo_gpusim::BufKind::Atomic);
    let far = GpuBuf::new(cap, 0);
    let far_size = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    let spill = GpuBuf::new(cap, 0);
    let spill_size = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    near.host_write(0, source);
    let mut threshold = DELTA;

    loop {
        // drain the near pile, spilling beyond-threshold work to `far`
        while near_size.host_read(0) > 0 {
            let len = near_size.host_read(0) as usize;
            let t = threshold;
            spill_size.host_write(0, 0);
            sim.launch(len, Assign::WarpPerItem, false, |ctx, idx| {
                let v = ctx.ld(&near, idx);
                let dv = ctx.ld(&dist, v as usize);
                if dv == INF {
                    return;
                }
                let beg = ctx.ld(&dg.row, v as usize) as usize;
                let end = ctx.ld(&dg.row, v as usize + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                while i < end {
                    let u = ctx.ld(&dg.nbr, i);
                    let w = ctx.ld(&dg.wt, i);
                    let nd = dv + w;
                    if ctx.atomic_min(&dist, u as usize, nd) > nd {
                        if nd < t {
                            let s = ctx.atomic_add(&spill_size, 0, 1) as usize;
                            ctx.st(&spill, s % spill.len(), u);
                        } else {
                            let s = ctx.atomic_add(&far_size, 0, 1) as usize;
                            ctx.st(&far, s % far.len(), u);
                        }
                    }
                    i += lanes;
                }
            });
            // spill (still-near work) becomes the next near pile
            let sl = spill_size.host_read(0).min(spill.len() as u32);
            for i in 0..sl as usize {
                near.host_write(i, spill.host_read(i));
            }
            near_size.host_write(0, sl);
        }
        // advance the threshold and promote far work whose tentative
        // distance now qualifies
        let fl = far_size.host_read(0).min(far.len() as u32) as usize;
        if fl == 0 {
            break;
        }
        threshold += DELTA;
        let mut kept = 0usize;
        let mut promoted = 0usize;
        for i in 0..fl {
            let v = far.host_read(i);
            let dv = dist.host_read(v as usize);
            if dv < threshold {
                near.host_write(promoted, v);
                promoted += 1;
            } else {
                far.host_write(kept, v);
                kept += 1;
            }
        }
        near_size.host_write(0, promoted as u32);
        far_size.host_write(0, kept as u32);
        if promoted == 0 && kept == fl {
            // everything is far beyond the threshold; jump to the minimum
            let min_d = (0..fl)
                .map(|i| dist.host_read(far.host_read(i) as usize))
                .min()
                .unwrap_or(INF);
            if min_d == INF {
                break;
            }
            threshold = min_d / DELTA * DELTA + DELTA;
        }
    }
    (dist.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::titan_v;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn cpu_matches_dijkstra() {
        for g in [
            toy::weighted_diamond(),
            gen::gnp(150, 0.04, 3),
            gen::grid2d(10, 10),
            gen::road(30, 12, 5),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::sssp(&input.csr, 0);
            let (got, _) = cpu(&input, 3, 0);
            assert_eq!(got, expect, "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_dijkstra() {
        for g in [
            toy::weighted_diamond(),
            gen::gnp(120, 0.05, 3),
            gen::road(20, 10, 5),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::sssp(&input.csr, 0);
            let (got, secs) = gpu(&input, titan_v(), 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn disconnected_stays_inf() {
        let input = GraphInput::new(toy::two_triangles());
        let (got, _) = cpu(&input, 2, 0);
        assert!(got[3..].iter().all(|&d| d == INF));
        let (gg, _) = gpu(&input, titan_v(), 0);
        assert!(gg[3..].iter().all(|&d| d == INF));
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2, 0).0.is_empty());
        assert!(gpu(&input, titan_v(), 0).0.is_empty());
    }
}
