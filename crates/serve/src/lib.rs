//! `indigo-serve` — a fault-tolerant analytics query server (DESIGN.md
//! §7.8).
//!
//! Exposes the measurement matrix over hand-rolled HTTP/1.1 on std's
//! `TcpListener` (the workspace stays dependency-free): run one style
//! variant, sweep a style slice, or fetch a cached cell by fingerprint.
//! Robustness is the point, not an afterthought — the request pipeline is
//!
//! ```text
//! accept → admission (bounded queue, 429 + Retry-After on overflow)
//!        → deadline (absolute, stamped at accept; queue wait counts)
//!        → cache (fingerprint-keyed, journal-backed, crash-only restart)
//!        → breaker (per-graph-shard; open → degraded answers)
//!        → retry (missing-cells-only re-plan, capped backoff + jitter)
//!        → degrade (journal cache or serial oracle, `degraded: true`)
//! ```
//!
//! and the chaos harness ([`chaos::run_chaos`]) gates it all in CI.
//!
//! PR 8 adds the batched, event-driven serving path (DESIGN.md §7.9):
//! single-flight coalescing + continuous batching ([`batch`]), an epoll
//! readiness reactor with HTTP/1.1 keep-alive ([`reactor`], [`http`]), and
//! a coordinated-omission-safe open-loop load generator ([`loadgen`])
//! behind the `serve_perf` CI gate.
//!
//! PR 9 adds request-scoped observability (DESIGN.md §7.10): every request
//! carries a deterministic ID (echoed as `X-Request-Id`) and a per-stage
//! latency breakdown through coalescing and batching; `/metrics` exposes
//! the full counter/gauge/histogram surface in Prometheus text exposition
//! ([`metrics`]); and a lock-free flight recorder ([`flightrec`]) dumps
//! the recent request tail to `FLIGHT_*.jsonl` on any 5xx.

#![warn(missing_docs)]

pub mod admission;
pub mod advise;
pub mod batch;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod config;
pub mod engine;
pub mod flightrec;
pub mod http;
mod json;
pub mod loadgen;
pub mod metrics;
pub mod reactor;
pub mod retry;
pub mod server;
pub mod stats;

pub use chaos::{ChaosFault, ChaosOptions, ChaosReport};
pub use config::ServerConfig;
pub use server::Server;
