//! §5.13: correlation of style performance with graph properties.
//!
//! For each style option, the per-input *relative* performance (median
//! throughput of variants carrying the option divided by the median of all
//! variants carrying the option's dimension, on the same input/target) is
//! correlated against the input's properties across the five graphs.

use super::Dataset;
use crate::ratios::median_geps;
use crate::report::Report;
use crate::stats::pearson;
use indigo_graph::gen::{suite_graph, SUITE_GRAPHS};
use indigo_graph::stats::GraphStats;

/// The graph properties the paper checks (§5.13).
pub const PROPERTIES: &[&str] = &[
    "nodes",
    "edges",
    "avg_degree",
    "max_degree",
    "pct_ge32",
    "pct_ge512",
    "diameter",
];

fn property(stats: &GraphStats, name: &str) -> f64 {
    match name {
        "nodes" => stats.nodes as f64,
        "edges" => stats.edges as f64,
        "avg_degree" => stats.avg_degree,
        "max_degree" => stats.max_degree as f64,
        "pct_ge32" => stats.pct_deg_ge32,
        "pct_ge512" => stats.pct_deg_ge512,
        "diameter" => stats.diameter_lb as f64,
        _ => unreachable!("unknown property {name}"),
    }
}

/// Style options examined (dimension, option).
pub const OPTIONS: &[(&str, &str)] = &[
    ("granularity", "thread"),
    ("granularity", "warp"),
    ("granularity", "block"),
    ("direction", "vertex"),
    ("direction", "edge"),
    ("drive", "topo"),
    ("flow", "push"),
    ("determinism", "nondet"),
];

/// Builds the §5.13 correlation report.
pub fn correlation(ds: &Dataset) -> Report {
    let mut r = Report::new(
        "corr513",
        "Correlation of style performance with graph properties (§5.13)",
    );
    let stats: Vec<(&'static str, GraphStats)> = SUITE_GRAPHS
        .iter()
        .map(|&g| (g.label(), GraphStats::compute(&suite_graph(g, ds.scale))))
        .collect();

    let mut header = format!("{:<20}", "style \\ property");
    for p in PROPERTIES {
        header.push_str(&format!(" {p:>11}"));
    }
    r.line(&header);
    r.csv_row("dimension,option,property,correlation");

    let mut strongest: (f64, String) = (0.0, String::new());
    for &(dim, opt) in OPTIONS {
        // relative performance of the option per input
        let mut rel = Vec::new();
        let mut used_props: Vec<Vec<f64>> = vec![Vec::new(); PROPERTIES.len()];
        for (label, st) in &stats {
            let with = median_geps(&ds.measurements, |m| {
                m.graph == *label && m.cfg.dimension_label(dim) == Some(opt)
            });
            let all = median_geps(&ds.measurements, |m| {
                m.graph == *label && m.cfg.dimension_label(dim).is_some()
            });
            if with.is_finite() && all.is_finite() && all > 0.0 {
                rel.push(with / all);
                for (k, p) in PROPERTIES.iter().enumerate() {
                    used_props[k].push(property(st, p));
                }
            }
        }
        let mut row = format!("{:<20}", format!("{dim}:{opt}"));
        for (k, p) in PROPERTIES.iter().enumerate() {
            let c = pearson(&used_props[k], &rel);
            row.push_str(&format!(" {c:>11.2}"));
            r.csv_row(format!("{dim},{opt},{p},{c:.4}"));
            if c.abs() > strongest.0.abs() {
                strongest = (c, format!("{dim}:{opt} vs {p}"));
            }
        }
        r.line(&row);
    }
    r.line(format!(
        "strongest correlation: {:.2} ({})  [paper: 0.44, warp vs avg degree]",
        strongest.0, strongest.1
    ));
    r
}
