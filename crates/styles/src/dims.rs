//! The style dimensions (paper §2.1–§2.12) plus the algorithm and
//! programming-model axes.
//!
//! Every dimension is a small fieldless enum with an `ALL` constant (for the
//! enumerator) and a stable lowercase `label` (for reports and the filter
//! mini-language).

/// The six graph problems of the study (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// Breadth-first search (shortest path category).
    Bfs,
    /// Single-source shortest path, Bellman-Ford style (§2's running example).
    Sssp,
    /// Connected components via label propagation (connectivity).
    Cc,
    /// Maximal independent set, priority/Luby style (covering).
    Mis,
    /// PageRank (eigenvector).
    Pr,
    /// Triangle counting (substructure).
    Tc,
}

impl Algorithm {
    /// All algorithms, in the paper's Table 2/3 column order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Cc,
        Algorithm::Mis,
        Algorithm::Pr,
        Algorithm::Tc,
        Algorithm::Bfs,
        Algorithm::Sssp,
    ];

    /// Lowercase label (`"bfs"`, …).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Bfs => "bfs",
            Algorithm::Sssp => "sssp",
            Algorithm::Cc => "cc",
            Algorithm::Mis => "mis",
            Algorithm::Pr => "pr",
            Algorithm::Tc => "tc",
        }
    }

    /// Paper abbreviation (`"BFS"`, …).
    pub fn abbrev(self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Cc => "CC",
            Algorithm::Mis => "MIS",
            Algorithm::Pr => "PR",
            Algorithm::Tc => "TC",
        }
    }

    /// Whether the algorithm needs edge weights (only SSSP does).
    pub fn needs_weights(self) -> bool {
        matches!(self, Algorithm::Sssp)
    }
}

/// The three programming models of the study (paper §4.1, Table 3).
///
/// `Cuda` is realized by the `indigo-gpusim` execution-model simulator;
/// `Omp` and `Cpp` by the two CPU substrates in `indigo-exec`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// CUDA analog, executed on the GPU simulator.
    Cuda,
    /// OpenMP analog (`parallel_for` pool with schedules and critical sections).
    Omp,
    /// C++11-threads analog (explicit threads, blocked/cyclic distribution).
    Cpp,
}

impl Model {
    /// All models, Table 3 row order.
    pub const ALL: [Model; 3] = [Model::Cuda, Model::Omp, Model::Cpp];

    /// Lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Model::Cuda => "cuda",
            Model::Omp => "omp",
            Model::Cpp => "cpp",
        }
    }

    /// Display name used in the paper's tables.
    pub fn display(self) -> &'static str {
        match self {
            Model::Cuda => "CUDA",
            Model::Omp => "OpenMP",
            Model::Cpp => "C++ threads",
        }
    }

    /// True for the CPU models.
    pub fn is_cpu(self) -> bool {
        !matches!(self, Model::Cuda)
    }
}

/// §2.1 — iterate over vertices or over edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// One work item per vertex, loop over its neighbors (Listing 1a).
    VertexBased,
    /// One work item per directed edge (Listing 1b).
    EdgeBased,
}

impl Direction {
    pub const ALL: [Direction; 2] = [Direction::VertexBased, Direction::EdgeBased];

    pub fn label(self) -> &'static str {
        match self {
            Direction::VertexBased => "vertex",
            Direction::EdgeBased => "edge",
        }
    }
}

/// §2.3 — worklist duplicate policy (data-driven only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorklistDup {
    /// Threads push unconditionally (Listing 3a).
    Duplicates,
    /// An iteration-stamp check admits each vertex once (Listing 3b).
    NoDuplicates,
}

impl WorklistDup {
    pub const ALL: [WorklistDup; 2] = [WorklistDup::Duplicates, WorklistDup::NoDuplicates];

    pub fn label(self) -> &'static str {
        match self {
            WorklistDup::Duplicates => "dup",
            WorklistDup::NoDuplicates => "nodup",
        }
    }
}

/// §2.2 — process everything, or only a worklist of likely-active elements.
///
/// The duplicate policy only exists for data-driven codes, so it is embedded
/// here rather than being a free-floating dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Process every vertex/edge each iteration (Listing 2a).
    TopologyDriven,
    /// Process only the worklist (Listing 2b), with the given dup policy.
    DataDriven(WorklistDup),
}

impl Drive {
    pub const ALL: [Drive; 3] = [
        Drive::TopologyDriven,
        Drive::DataDriven(WorklistDup::Duplicates),
        Drive::DataDriven(WorklistDup::NoDuplicates),
    ];

    pub fn label(self) -> &'static str {
        match self {
            Drive::TopologyDriven => "topo",
            Drive::DataDriven(WorklistDup::Duplicates) => "data-dup",
            Drive::DataDriven(WorklistDup::NoDuplicates) => "data-nodup",
        }
    }

    /// True for either data-driven flavor.
    pub fn is_data_driven(self) -> bool {
        matches!(self, Drive::DataDriven(_))
    }
}

/// §2.4 — data-flow direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Flow {
    /// Vertex updates its neighbors (Listing 4a).
    Push,
    /// Vertex reads neighbors and updates itself (Listing 4b).
    Pull,
}

impl Flow {
    pub const ALL: [Flow; 2] = [Flow::Push, Flow::Pull];

    pub fn label(self) -> &'static str {
        match self {
            Flow::Push => "push",
            Flow::Pull => "pull",
        }
    }
}

/// §2.5 — how conditional updates are made.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Update {
    /// Separate atomic load, compare, atomic store (Listing 5a); only sound
    /// for monotonic updates.
    ReadWrite,
    /// A single atomic read-modify-write such as `fetch_min` (Listing 5b).
    ReadModifyWrite,
}

impl Update {
    pub const ALL: [Update; 2] = [Update::ReadWrite, Update::ReadModifyWrite];

    pub fn label(self) -> &'static str {
        match self {
            Update::ReadWrite => "rw",
            Update::ReadModifyWrite => "rmw",
        }
    }
}

/// §2.6 — internal determinism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Determinism {
    /// Reads and writes share one array (Listing 6a); the final result is
    /// still deterministic, the iteration count is not.
    NonDeterministic,
    /// Double-buffered arrays (Listing 6b); fully repeatable execution.
    Deterministic,
}

impl Determinism {
    pub const ALL: [Determinism; 2] = [Determinism::NonDeterministic, Determinism::Deterministic];

    pub fn label(self) -> &'static str {
        match self {
            Determinism::NonDeterministic => "nondet",
            Determinism::Deterministic => "det",
        }
    }
}

/// §2.7 — GPU-only: persistent threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Persistence {
    /// Launch only as many threads as are resident; grid-stride loop
    /// (Listing 7a).
    Persistent,
    /// Launch one thread per element (Listing 7b).
    NonPersistent,
}

impl Persistence {
    pub const ALL: [Persistence; 2] = [Persistence::Persistent, Persistence::NonPersistent];

    pub fn label(self) -> &'static str {
        match self {
            Persistence::Persistent => "persist",
            Persistence::NonPersistent => "nonpersist",
        }
    }
}

/// §2.8 — GPU-only: work-assignment granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Granularity {
    /// One thread per vertex (Listing 8a).
    Thread,
    /// One 32-lane warp per vertex (Listing 8b).
    Warp,
    /// One block per vertex (Listing 8c).
    Block,
}

impl Granularity {
    pub const ALL: [Granularity; 3] = [Granularity::Thread, Granularity::Warp, Granularity::Block];

    pub fn label(self) -> &'static str {
        match self {
            Granularity::Thread => "thread",
            Granularity::Warp => "warp",
            Granularity::Block => "block",
        }
    }
}

/// §2.9 — GPU-only: classic atomics vs the libcu++ `cuda::atomic` types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomicKind {
    /// `atomicMin()` and friends (Listing 9a).
    Atomic,
    /// `cuda::atomic<T>` with default (seq_cst, system-scope) settings
    /// (Listing 9b).
    CudaAtomic,
}

impl AtomicKind {
    pub const ALL: [AtomicKind; 2] = [AtomicKind::Atomic, AtomicKind::CudaAtomic];

    pub fn label(self) -> &'static str {
        match self {
            AtomicKind::Atomic => "atomic",
            AtomicKind::CudaAtomic => "cudaatomic",
        }
    }
}

/// §2.10.1 — GPU-only reduction styles (PR and TC only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuReduction {
    /// Every thread atomically updates the global accumulator (Listing 10a).
    GlobalAdd,
    /// Block-local shared-memory accumulator, one global update per block
    /// (Listing 10b).
    BlockAdd,
    /// Warp shuffle reduction, then block reduction, then one global update
    /// (Listing 10c).
    ReductionAdd,
}

impl GpuReduction {
    pub const ALL: [GpuReduction; 3] = [
        GpuReduction::GlobalAdd,
        GpuReduction::BlockAdd,
        GpuReduction::ReductionAdd,
    ];

    pub fn label(self) -> &'static str {
        match self {
            GpuReduction::GlobalAdd => "global-add",
            GpuReduction::BlockAdd => "block-add",
            GpuReduction::ReductionAdd => "reduction-add",
        }
    }
}

/// §2.10.2 — CPU reduction styles (PR and TC only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CpuReduction {
    /// `#pragma omp atomic` analog (Listing 11a).
    AtomicRed,
    /// `#pragma omp critical` analog — one global mutex (Listing 11b).
    CriticalRed,
    /// `reduction(+: …)` clause analog — privatized partials (Listing 11c).
    ClauseRed,
}

impl CpuReduction {
    pub const ALL: [CpuReduction; 3] = [
        CpuReduction::AtomicRed,
        CpuReduction::CriticalRed,
        CpuReduction::ClauseRed,
    ];

    pub fn label(self) -> &'static str {
        match self {
            CpuReduction::AtomicRed => "atomic-red",
            CpuReduction::CriticalRed => "critical-red",
            CpuReduction::ClauseRed => "clause-red",
        }
    }
}

/// §2.11 — OpenMP-only loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OmpSchedule {
    /// Static chunking (Listing 12a).
    Default,
    /// `schedule(dynamic)` (Listing 12b).
    Dynamic,
}

impl OmpSchedule {
    pub const ALL: [OmpSchedule; 2] = [OmpSchedule::Default, OmpSchedule::Dynamic];

    pub fn label(self) -> &'static str {
        match self {
            OmpSchedule::Default => "default",
            OmpSchedule::Dynamic => "dynamic",
        }
    }
}

/// §2.12 — C++-threads-only loop distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CppSchedule {
    /// Contiguous chunk per thread (Listing 13a).
    Blocked,
    /// Round-robin (Listing 13b).
    Cyclic,
}

impl CppSchedule {
    pub const ALL: [CppSchedule; 2] = [CppSchedule::Blocked, CppSchedule::Cyclic];

    pub fn label(self) -> &'static str {
        match self {
            CppSchedule::Blocked => "blocked",
            CppSchedule::Cyclic => "cyclic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_per_dimension() {
        fn check(labels: &[&str]) {
            let mut v = labels.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), labels.len(), "dup in {labels:?}");
        }
        check(&Algorithm::ALL.map(|a| a.label()));
        check(&Model::ALL.map(|m| m.label()));
        check(&Direction::ALL.map(|d| d.label()));
        check(&Drive::ALL.map(|d| d.label()));
        check(&Flow::ALL.map(|f| f.label()));
        check(&Update::ALL.map(|u| u.label()));
        check(&Determinism::ALL.map(|d| d.label()));
        check(&Persistence::ALL.map(|p| p.label()));
        check(&Granularity::ALL.map(|g| g.label()));
        check(&AtomicKind::ALL.map(|a| a.label()));
        check(&GpuReduction::ALL.map(|r| r.label()));
        check(&CpuReduction::ALL.map(|r| r.label()));
        check(&OmpSchedule::ALL.map(|s| s.label()));
        check(&CppSchedule::ALL.map(|s| s.label()));
    }

    #[test]
    fn drive_embeds_dup_policy() {
        assert!(Drive::DataDriven(WorklistDup::Duplicates).is_data_driven());
        assert!(!Drive::TopologyDriven.is_data_driven());
    }

    #[test]
    fn only_sssp_needs_weights() {
        assert!(Algorithm::Sssp.needs_weights());
        for a in Algorithm::ALL {
            if a != Algorithm::Sssp {
                assert!(!a.needs_weights());
            }
        }
    }

    #[test]
    fn model_cpu_split() {
        assert!(!Model::Cuda.is_cpu());
        assert!(Model::Omp.is_cpu());
        assert!(Model::Cpp.is_cpu());
    }
}
