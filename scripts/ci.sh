#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo test -q --workspace"
cargo test -q --workspace

echo "== fault-injection smoke (crash, resume, clean exits)"
cargo build -q --release -p indigo-harness --bin indigo-exp
exp=target/release/indigo-exp
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
journal="$smoke_dir/run.jsonl"

# an injected panic must complete the sweep with a structured crashed row
# and the completed-with-failed-cells exit code (2)
set +e
"$exp" --smoke --inject-fault panic@3 --journal "$journal" --out "$smoke_dir/fault" >/dev/null
code=$?
set -e
[ "$code" -eq 2 ] || { echo "fault run exited $code, want 2"; exit 1; }
grep -q '"outcome":"crashed"' "$journal" || { echo "no crashed row in journal"; exit 1; }

# SIGKILL emulation: truncate the journal mid-line, then --resume must
# replay the prefix and still finish with exit 2 (the crash is journaled)
head -c "$(($(wc -c <"$journal") / 2))" "$journal" >"$journal.cut"
set +e
"$exp" --smoke --inject-fault panic@3 --resume "$journal.cut" --out "$smoke_dir/resume" >/dev/null
code=$?
set -e
[ "$code" -eq 2 ] || { echo "resume run exited $code, want 2"; exit 1; }

# and a fault-free smoke run exits clean
"$exp" --smoke --out "$smoke_dir/clean" >/dev/null ||
    { echo "clean smoke run exited $?, want 0"; exit 1; }

echo "== simulator perf smoke (deterministic: cycles + allocation counts)"
# Wall-clock is deliberately NOT gated (shared runners flake); the probe
# compares simulated cycles, access counts, and steady-state allocation
# counts against the committed baseline — warn at 10%, fail at 30%.
cargo build -q --release -p indigo-bench --bin gpusim_perf
target/release/gpusim_perf --check results/BENCH_gpusim_baseline.json

echo "CI green."
