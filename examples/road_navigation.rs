//! Domain scenario: shortest-path queries on a road network.
//!
//! Road maps are the paper's high-diameter, uniform-low-degree regime —
//! exactly where §5.3 finds data-driven worklists to beat topology-driven
//! sweeps by orders of magnitude. This example runs both styles plus the
//! optimized delta-stepping baseline on a generated road network and prints
//! the comparison, then answers a few point-to-point queries.
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use indigo_core::{run_variant, GraphInput, Output, Target};
use indigo_graph::gen;
use indigo_styles::{enumerate, Algorithm, Drive, Model, WorklistDup};

fn main() {
    let graph = gen::road(220, 120, 7);
    println!(
        "road network: {} vertices, {} directed edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    let input = GraphInput::new(graph);
    let threads = 4;

    // pick one topology-driven and one data-driven (no-dup) SSSP variant
    // that agree on every other style
    let variants = enumerate::variants(Algorithm::Sssp, Model::Cpp);
    let topo = variants
        .iter()
        .find(|c| {
            c.drive == Drive::TopologyDriven && c.name().contains("vertex-topo-push-rmw-nondet")
        })
        .expect("topology-driven variant");
    let data = variants
        .iter()
        .find(|c| {
            c.drive == Drive::DataDriven(WorklistDup::NoDuplicates)
                && c.direction == topo.direction
                && c.flow == topo.flow
                && c.update == topo.update
                && c.determinism == topo.determinism
                && c.cpp_schedule == topo.cpp_schedule
        })
        .expect("data-driven twin");

    println!("\nSSSP styles on the high-diameter road map (§5.3's regime):");
    let mut dist = Vec::new();
    for cfg in [topo, data] {
        let r = run_variant(cfg, &input, &Target::cpu(threads));
        println!(
            "  {:<55} {:>8.4} GE/s  ({} iterations)",
            cfg.name(),
            r.gigaedges_per_sec(input.num_edges()),
            r.iterations
        );
        if let Output::Distances(d) = r.output {
            dist = d;
        }
    }

    let (base_dist, base_secs) = indigo_baselines::sssp::cpu(&input, threads, indigo_core::SOURCE);
    println!(
        "  {:<55} {:>8.4} GE/s  (delta-stepping baseline)",
        "lonestar-style delta-stepping",
        input.num_edges() as f64 / base_secs / 1e9
    );
    assert_eq!(dist, base_dist, "all routes must agree");

    // a few navigation queries from the depot (vertex 0)
    println!("\nsample routes from the depot (vertex 0):");
    let n = input.num_nodes() as u32;
    for target in [n / 7, n / 3, n / 2, n - 1] {
        let d = dist[target as usize];
        if d == indigo_graph::INF {
            println!("  -> intersection {target}: unreachable");
        } else {
            println!("  -> intersection {target}: total travel cost {d}");
        }
    }
    let reachable = dist.iter().filter(|&&d| d != indigo_graph::INF).count();
    println!(
        "\n{reachable}/{} intersections reachable from the depot",
        input.num_nodes()
    );
}
