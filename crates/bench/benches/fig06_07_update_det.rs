//! Figs 6/7 bench: read-write vs RMW (6) and deterministic vs
//! non-deterministic (7) SSSP on both model kinds.

use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_gpusim::titan_v;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Determinism, Model, StyleConfig, Update};

fn main() {
    let mut c = criterion();
    let rmat = input(SuiteGraph::Rmat);
    for update in Update::ALL {
        for det in Determinism::ALL {
            let mut gpu = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
            gpu.update = update;
            gpu.determinism = det;
            let name = format!("sssp/{}/{}", update.label(), det.label());
            if gpu.check().is_ok() {
                bench_gpu_variant(&mut c, "fig06_07_gpu", &name, &gpu, &rmat, titan_v());
            }
            let mut omp = StyleConfig::baseline(Algorithm::Sssp, Model::Omp);
            omp.update = update;
            omp.determinism = det;
            if omp.check().is_ok() {
                bench_cpu_variant(&mut c, "fig06_07_omp", &name, &omp, &rmat, 4);
            }
        }
    }
    c.final_summary();
}
