//! Pre-registered, allocation-free atomic counters.
//!
//! Registration is the enum itself: every counter the workspace ever bumps
//! is a [`Counter`] variant indexing static storage — there is nothing to
//! allocate, look up, or lock on the record path. Each counter owns
//! [`NUM_SHARDS`] cache-line-aligned `AtomicU64` slots; a thread picks its
//! shard once (round-robin, stored in a const-initialized thread-local
//! `Cell`, no lazy allocation) and every increment after that is one
//! relaxed `fetch_add` on a line it rarely shares. Reads sum the shards.
//!
//! Counters wrap on overflow (relaxed `fetch_add` semantics); consumers
//! take deltas with [`CounterSnapshot::delta_since`], which subtracts with
//! wrapping arithmetic so a wrapped counter still yields the right delta.

#[cfg(feature = "telemetry")]
use std::cell::Cell;
#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of registered counters (kept in sync with [`Counter::ALL`]).
pub const NUM_COUNTERS: usize = 42;

/// Every counter in the workspace, grouped by layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    // ---- gpusim: per-launch simulator counters ----
    /// Kernel launches simulated.
    SimLaunches,
    /// Simulated cycles accumulated across launches (rounded per launch).
    SimCycles,
    /// Global-memory accesses recorded by warp step tables.
    SimGlobalAccesses,
    /// Shared-memory (block-scope) atomic operations.
    SimSharedAtomics,
    /// Memory transactions from fully coalesced warp steps (one 128 B
    /// segment for the whole warp).
    SimCoalescedTxns,
    /// Memory transactions issued by non-coalesced warp steps (one per
    /// distinct 128 B segment).
    SimUncoalescedTxns,
    /// Global atomic RMW operations (classic and `cuda::atomic`).
    SimAtomicOps,
    /// Atomic operations that hit an address another lane of the same warp
    /// step already touched — the cost model's stand-in for contention
    /// retries.
    SimAtomicConflicts,
    /// Multi-threaded launch fan-outs through the block-execution pool.
    SimPoolJobs,
    /// Parked-worker engagements with a pool job (excludes the caller, who
    /// always participates).
    SimPoolEngagements,
    // ---- exec: CPU substrate counters ----
    /// Pool-cache leases served from an idle cached pool.
    ExecLeaseHits,
    /// Pool-cache leases that had to spawn a fresh pool.
    ExecLeaseMisses,
    /// OpenMP-analog parallel regions executed.
    ExecRegions,
    /// Wall nanoseconds workers spent inside region bodies (busy time).
    ExecWorkerBusyNanos,
    /// Wall nanoseconds workers spent waiting inside regions (region wall
    /// × team size − busy; approximate under concurrent regions).
    ExecWorkerIdleNanos,
    /// Worklist pushes that landed (including `try_push` successes).
    ExecWorklistPushes,
    /// `try_push` calls dropped at capacity.
    ExecWorklistDrops,
    /// Worklist item reads (`get`).
    ExecWorklistPops,
    /// Sparse-frontier pushes in the tuned CPU baselines (DESIGN.md §7.7).
    FrontierPushes,
    /// Direction switches taken by direction-optimizing BFS (top-down ↔
    /// bottom-up).
    FrontierDirectionSwitches,
    /// Delta-stepping bucket insertions (first placement and relocations).
    FrontierBucketPushes,
    /// Delta-stepping entries found stale at pop (vertex already settled in
    /// a lower bucket) — the reinsertion overhead of the bucket structure.
    FrontierBucketReinsertions,
    // ---- harness: supervision + journal counters ----
    /// Cells registered with the watchdog.
    WatchdogArmed,
    /// Wall-clock budgets the watchdog actually fired.
    WatchdogFired,
    /// Checkpoint-journal lines appended.
    JournalAppends,
    /// Wall nanoseconds spent appending+flushing journal lines.
    JournalAppendNanos,
    // ---- sanitizer: style-conformance findings (DESIGN.md §7.6) ----
    /// Conflicting addresses the sanitizer classified (benign or racy).
    SanitizeConflicts,
    /// Style-label violations the sanitizer confirmed.
    SanitizeViolations,
    // ---- serve: query-server robustness counters (DESIGN.md §7.8) ----
    /// HTTP requests accepted off the listener (includes later sheds).
    ServeRequests,
    /// Requests shed by admission control (429) or expired in queue.
    ServeShed,
    /// Cell re-executions after a transient crashed/timed-out attempt.
    ServeRetries,
    /// Requests that exhausted their deadline (504).
    ServeTimeouts,
    /// Requests answered from the degraded path (cache or serial oracle)
    /// while a shard's circuit breaker was open.
    ServeDegraded,
    /// Requests (or cells) answered from the fingerprint result cache.
    ServeCacheHits,
    /// Circuit-breaker transitions closed → open.
    ServeBreakerTrips,
    /// Circuit-breaker recoveries (half-open probe succeeded → closed).
    ServeBreakerRecoveries,
    /// Merged plans executed by the batch former (DESIGN.md §7.9).
    ServeBatches,
    /// Claimed cells resolved through batched plan executions.
    ServeBatchedCells,
    /// Requests that joined another request's in-flight cell instead of
    /// executing it themselves (single-flight coalescing).
    ServeCoalesced,
    /// Requests served over a reused keep-alive connection.
    ServeKeepAliveReuses,
    /// `/metrics` exposition scrapes served (DESIGN.md §7.10).
    ServeMetricsScrapes,
    /// Flight-recorder dumps written to `FLIGHT_*.jsonl` (5xx triggers and
    /// on-demand `/debug/flightrec` requests are counted separately; this
    /// counts files actually written).
    ServeFlightDumps,
}

impl Counter {
    /// Every counter, in storage order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::SimLaunches,
        Counter::SimCycles,
        Counter::SimGlobalAccesses,
        Counter::SimSharedAtomics,
        Counter::SimCoalescedTxns,
        Counter::SimUncoalescedTxns,
        Counter::SimAtomicOps,
        Counter::SimAtomicConflicts,
        Counter::SimPoolJobs,
        Counter::SimPoolEngagements,
        Counter::ExecLeaseHits,
        Counter::ExecLeaseMisses,
        Counter::ExecRegions,
        Counter::ExecWorkerBusyNanos,
        Counter::ExecWorkerIdleNanos,
        Counter::ExecWorklistPushes,
        Counter::ExecWorklistDrops,
        Counter::ExecWorklistPops,
        Counter::FrontierPushes,
        Counter::FrontierDirectionSwitches,
        Counter::FrontierBucketPushes,
        Counter::FrontierBucketReinsertions,
        Counter::WatchdogArmed,
        Counter::WatchdogFired,
        Counter::JournalAppends,
        Counter::JournalAppendNanos,
        Counter::SanitizeConflicts,
        Counter::SanitizeViolations,
        Counter::ServeRequests,
        Counter::ServeShed,
        Counter::ServeRetries,
        Counter::ServeTimeouts,
        Counter::ServeDegraded,
        Counter::ServeCacheHits,
        Counter::ServeBreakerTrips,
        Counter::ServeBreakerRecoveries,
        Counter::ServeBatches,
        Counter::ServeBatchedCells,
        Counter::ServeCoalesced,
        Counter::ServeKeepAliveReuses,
        Counter::ServeMetricsScrapes,
        Counter::ServeFlightDumps,
    ];

    /// Stable machine name (used in trace `counters` events and reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::SimLaunches => "sim.launches",
            Counter::SimCycles => "sim.cycles",
            Counter::SimGlobalAccesses => "sim.global_accesses",
            Counter::SimSharedAtomics => "sim.shared_atomics",
            Counter::SimCoalescedTxns => "sim.coalesced_txns",
            Counter::SimUncoalescedTxns => "sim.uncoalesced_txns",
            Counter::SimAtomicOps => "sim.atomic_ops",
            Counter::SimAtomicConflicts => "sim.atomic_conflicts",
            Counter::SimPoolJobs => "sim.pool_jobs",
            Counter::SimPoolEngagements => "sim.pool_engagements",
            Counter::ExecLeaseHits => "exec.lease_hits",
            Counter::ExecLeaseMisses => "exec.lease_misses",
            Counter::ExecRegions => "exec.regions",
            Counter::ExecWorkerBusyNanos => "exec.worker_busy_nanos",
            Counter::ExecWorkerIdleNanos => "exec.worker_idle_nanos",
            Counter::ExecWorklistPushes => "exec.worklist_pushes",
            Counter::ExecWorklistDrops => "exec.worklist_drops",
            Counter::ExecWorklistPops => "exec.worklist_pops",
            Counter::FrontierPushes => "frontier.pushes",
            Counter::FrontierDirectionSwitches => "frontier.direction_switches",
            Counter::FrontierBucketPushes => "frontier.bucket_pushes",
            Counter::FrontierBucketReinsertions => "frontier.bucket_reinsertions",
            Counter::WatchdogArmed => "harness.watchdog_armed",
            Counter::WatchdogFired => "harness.watchdog_fired",
            Counter::JournalAppends => "harness.journal_appends",
            Counter::JournalAppendNanos => "harness.journal_append_nanos",
            Counter::SanitizeConflicts => "sanitize.conflicts",
            Counter::SanitizeViolations => "sanitize.violations",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeShed => "serve.shed",
            Counter::ServeRetries => "serve.retries",
            Counter::ServeTimeouts => "serve.timeouts",
            Counter::ServeDegraded => "serve.degraded",
            Counter::ServeCacheHits => "serve.cache_hits",
            Counter::ServeBreakerTrips => "serve.breaker_trips",
            Counter::ServeBreakerRecoveries => "serve.breaker_recoveries",
            Counter::ServeBatches => "serve.batches",
            Counter::ServeBatchedCells => "serve.batch_cells",
            Counter::ServeCoalesced => "serve.coalesced",
            Counter::ServeKeepAliveReuses => "serve.keepalive_reuses",
            Counter::ServeMetricsScrapes => "serve.metrics_scrapes",
            Counter::ServeFlightDumps => "serve.flight_dumps",
        }
    }

    /// Adds `n` (wrapping). Compiles to nothing without `telemetry`.
    #[inline(always)]
    pub fn add(self, n: u64) {
        #[cfg(feature = "telemetry")]
        storage::shard()[self as usize].fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Adds 1.
    #[inline(always)]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value (sum over shards); always 0 without `telemetry`.
    #[must_use]
    pub fn get(self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            storage::sum(self as usize)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }
}

/// Shards per counter. Threads map round-robin onto shards, bounding the
/// worst-case contention on any one cache line to `threads / NUM_SHARDS`.
#[cfg(feature = "telemetry")]
pub const NUM_SHARDS: usize = 8;

#[cfg(feature = "telemetry")]
mod storage {
    use super::{AtomicU64, AtomicUsize, Cell, Ordering, NUM_COUNTERS, NUM_SHARDS};

    /// One shard: a full set of counters on its own cache-line boundary.
    /// A thread only ever touches its own shard, so intra-shard sharing is
    /// same-thread and free; cross-thread traffic lands on distinct shards.
    #[repr(align(64))]
    struct Shard([AtomicU64; NUM_COUNTERS]);

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_SHARD: Shard = {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Shard([Z; NUM_COUNTERS])
    };
    static SHARDS: [Shard; NUM_SHARDS] = [ZERO_SHARD; NUM_SHARDS];
    static NEXT: AtomicUsize = AtomicUsize::new(0);

    thread_local! {
        /// This thread's shard index; `usize::MAX` = not yet assigned.
        /// Const-initialized: no lazy TLS allocation on first touch.
        static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    /// The calling thread's shard (assigned round-robin on first use).
    #[inline]
    pub(super) fn shard() -> &'static [AtomicU64; NUM_COUNTERS] {
        let idx = MY_SHARD.with(|s| {
            let v = s.get();
            if v != usize::MAX {
                return v;
            }
            let v = NEXT.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
            s.set(v);
            v
        });
        &SHARDS[idx].0
    }

    /// Sum of one counter across all shards (wrapping).
    pub(super) fn sum(counter: usize) -> u64 {
        SHARDS.iter().fold(0u64, |acc, s| {
            acc.wrapping_add(s.0[counter].load(Ordering::Relaxed))
        })
    }
}

/// A point-in-time copy of every counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; NUM_COUNTERS],
}

impl CounterSnapshot {
    /// All-zero snapshot.
    #[must_use]
    pub fn zero() -> CounterSnapshot {
        CounterSnapshot {
            values: [0; NUM_COUNTERS],
        }
    }

    /// Value of one counter.
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Per-counter difference `self − earlier`, with wrapping subtraction
    /// so counters that overflowed between the snapshots stay correct.
    #[must_use]
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; NUM_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].wrapping_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }

    /// True when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }

    /// Sum of every counter (diagnostics; wrapping).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.values.iter().fold(0u64, |a, &v| a.wrapping_add(v))
    }
}

/// Snapshots every counter. Each counter is read atomically (per shard),
/// and successive snapshots are per-counter monotonic while increments run
/// concurrently; there is no cross-counter atomicity (nor does any
/// consumer need it — deltas are taken around quiesced windows).
#[must_use]
pub fn counters_snapshot() -> CounterSnapshot {
    let mut values = [0u64; NUM_COUNTERS];
    for (i, v) in values.iter_mut().enumerate() {
        *v = Counter::ALL[i].get();
    }
    CounterSnapshot { values }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_complete_and_names_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "storage order mismatch for {c:?}");
        }
    }

    /// `Counter::ALL` order, `NUM_COUNTERS`, and the name table must stay
    /// in lockstep: drift here silently mislabels every exported metric
    /// (the `/metrics` exposition indexes storage by `ALL` position).
    #[test]
    fn all_num_counters_and_name_table_stay_in_sync() {
        // ALL's length is NUM_COUNTERS by type, but assert it anyway so a
        // future refactor to a Vec keeps the invariant visible.
        assert_eq!(Counter::ALL.len(), NUM_COUNTERS);
        // the enum discriminants are exactly 0..NUM_COUNTERS in ALL order,
        // so `ALL[c as usize] == c` round-trips for every variant
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(Counter::ALL[*c as usize], *c);
            assert_eq!(*c as usize, i);
        }
        // every name is `layer.snake_case` — non-empty, one dot, and only
        // characters that survive the Prometheus sanitization (`.` → `_`)
        for c in Counter::ALL {
            let name = c.name();
            assert!(!name.is_empty(), "{c:?} has an empty name");
            assert_eq!(
                name.matches('.').count(),
                1,
                "{c:?} name `{name}` must be layer.metric"
            );
            assert!(
                name.chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || "._".contains(ch)),
                "{c:?} name `{name}` has characters invalid for exposition"
            );
        }
    }

    #[test]
    fn snapshot_delta_is_wrapping() {
        // a counter that wrapped past u64::MAX between two snapshots must
        // still produce the true (small) delta
        let mut before = CounterSnapshot::zero();
        let mut after = CounterSnapshot::zero();
        before.values[0] = u64::MAX - 2;
        after.values[0] = 5; // wrapped: 3 to reach MAX+1(=0), then 5 more
        assert_eq!(after.delta_since(&before).values[0], 8);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_build_records_nothing() {
        Counter::SimLaunches.add(1_000);
        Counter::ExecWorklistPushes.incr();
        assert_eq!(Counter::SimLaunches.get(), 0);
        assert!(counters_snapshot().is_zero());
        assert!(!crate::enabled());
    }

    #[cfg(feature = "telemetry")]
    mod live {
        use super::super::*;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // Counter storage is process-global and Rust runs tests on separate
        // threads, so the live tests use disjoint counters per test.

        #[test]
        fn increments_are_visible_and_wrap() {
            let base = Counter::JournalAppendNanos.get();
            Counter::JournalAppendNanos.add(3);
            Counter::JournalAppendNanos.incr();
            assert_eq!(Counter::JournalAppendNanos.get(), base.wrapping_add(4));
            // overflow: adding u64::MAX wraps rather than panicking, and a
            // snapshot delta across the wrap still reads as u64::MAX
            let before = counters_snapshot();
            Counter::JournalAppendNanos.add(u64::MAX);
            let after = counters_snapshot();
            assert_eq!(
                after.delta_since(&before).get(Counter::JournalAppendNanos),
                u64::MAX
            );
        }

        #[test]
        fn snapshots_are_monotonic_under_concurrent_increments() {
            let stop = Arc::new(AtomicBool::new(false));
            let base = Counter::WatchdogArmed.get();
            const PER_THREAD: u64 = 50_000;
            let writers: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(move || {
                        for _ in 0..PER_THREAD {
                            Counter::WatchdogArmed.incr();
                        }
                    })
                })
                .collect();
            // while writers hammer, successive snapshots never go backwards
            let reader = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let now = counters_snapshot().get(Counter::WatchdogArmed);
                        assert!(now >= last, "snapshot regressed: {now} < {last}");
                        last = now;
                    }
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            reader.join().unwrap();
            // and the settled total is exact: no lost increments
            assert_eq!(Counter::WatchdogArmed.get(), base + 4 * PER_THREAD);
        }
    }
}
