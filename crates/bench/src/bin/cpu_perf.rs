//! Deterministic CPU-baseline perf probe (DESIGN.md §7.7).
//!
//! Runs the six tuned CPU baselines (`indigo-baselines`) over three suite
//! graphs and reports, per (kernel, graph) workload:
//!
//! * `pushes` — sparse-frontier pushes (`frontier.pushes`),
//! * `dir_switches` — direction-optimizing BFS switches
//!   (`frontier.direction_switches`),
//! * `bucket_pushes` / `bucket_reinserts` — delta-stepping bucket traffic
//!   (`frontier.bucket_pushes` / `frontier.bucket_reinsertions`),
//! * `steady_allocs` — heap allocations in a warm kernel call (the §7.7
//!   zero-allocation discipline makes this exactly 0; counted by a local
//!   `#[global_allocator]`, de-flaked by taking the min over attempts),
//! * `host_ms` — kernel wall-clock milliseconds, min over repetitions
//!   (informational only; never compared, it is wall-clock).
//!
//! The counter fields are measured with a **1-thread** pool, where the
//! kernels are fully deterministic; `steady_allocs` and `host_ms` use 3
//! threads, the fig16 smoke configuration. The probe requires a
//! `--features telemetry` build and refuses to run without it.
//!
//! `cpu_perf` prints the JSON record to stdout. With `--check
//! <baseline.json>` it compares the deterministic fields against a
//! committed baseline: relative deviation above 10% warns, above 30% exits
//! nonzero, and any steady-state allocation where the baseline had none
//! fails — a flake-free CI perf gate (wall-clock deliberately excluded).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use indigo_core::{GraphInput, SOURCE};
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph};
use indigo_obs::{counters_snapshot, Counter};

/// Counting allocator: every allocation path bumps one relaxed counter.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

/// Threads for the steady-state (allocation + wall-clock) window — the
/// fig16 smoke configuration.
const STEADY_THREADS: usize = 3;
/// Attempts for the min-over-attempts allocation window (PR 5 de-flaking:
/// per-thread buffer watermarks grow monotonically, so the min converges).
const ALLOC_ATTEMPTS: usize = 3;
/// Repetitions for the min-of-N wall-clock field.
const TIME_REPS: usize = 5;

struct Record {
    name: String,
    pushes: u64,
    dir_switches: u64,
    bucket_pushes: u64,
    bucket_reinserts: u64,
    steady_allocs: u64,
    host_ms: f64,
}

/// Probes one kernel: `run(threads)` executes it once end to end (reusing
/// warm output buffers) and returns the kernel's own elapsed seconds.
fn probe(name: String, mut run: impl FnMut(usize) -> f64) -> Record {
    // deterministic pass: 1 thread, warm-up then one counted call
    run(1);
    let before = counters_snapshot();
    run(1);
    let delta = counters_snapshot().delta_since(&before);
    // steady pass: fig16 threads; warm-up twice (pool spawn + scratch
    // growth, then std lazy init), then min-over-attempts allocations and
    // min-of-N wall-clock
    run(STEADY_THREADS);
    run(STEADY_THREADS);
    let mut steady_allocs = u64::MAX;
    for _ in 0..ALLOC_ATTEMPTS {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        run(STEADY_THREADS);
        steady_allocs = steady_allocs.min(ALLOCS.load(Ordering::Relaxed) - a0);
    }
    let mut host_ms = f64::INFINITY;
    for _ in 0..TIME_REPS {
        host_ms = host_ms.min(run(STEADY_THREADS) * 1e3);
    }
    Record {
        name,
        pushes: delta.get(Counter::FrontierPushes),
        dir_switches: delta.get(Counter::FrontierDirectionSwitches),
        bucket_pushes: delta.get(Counter::FrontierBucketPushes),
        bucket_reinserts: delta.get(Counter::FrontierBucketReinsertions),
        steady_allocs,
        host_ms,
    }
}

fn workloads() -> Vec<Record> {
    let graphs = [
        ("social", SuiteGraph::SocialNetwork),
        ("road", SuiteGraph::RoadMap),
        ("grid", SuiteGraph::Grid2d),
    ];
    let mut out = Vec::new();
    for (tag, which) in graphs {
        let input = GraphInput::new(suite_graph(which, Scale::Small));
        // per-kernel warm output buffers, reused across every probe call so
        // the steady window sees zero output allocations
        let mut levels = Vec::new();
        out.push(probe(format!("bfs:{tag}"), |t| {
            indigo_baselines::bfs::cpu_into(&input, t, SOURCE, &mut levels)
        }));
        let mut dists = Vec::new();
        out.push(probe(format!("sssp:{tag}"), |t| {
            indigo_baselines::sssp::cpu_into(&input, t, SOURCE, &mut dists)
        }));
        let mut labels = Vec::new();
        out.push(probe(format!("cc:{tag}"), |t| {
            indigo_baselines::cc::cpu_into(&input, t, &mut labels)
        }));
        let mut members = Vec::new();
        out.push(probe(format!("mis:{tag}"), |t| {
            indigo_baselines::mis::cpu_into(&input, t, &mut members)
        }));
        let mut ranks = Vec::new();
        out.push(probe(format!("pr:{tag}"), |t| {
            indigo_baselines::pr::cpu_into(&input, t, &mut ranks)
        }));
        out.push(probe(format!("tc:{tag}"), |t| {
            indigo_baselines::tc::cpu(&input, t).1
        }));
    }
    out
}

fn emit(records: &[Record]) -> String {
    let mut s = String::from("{\n  \"version\": 1,\n  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"pushes\": {}, \"dir_switches\": {}, \
             \"bucket_pushes\": {}, \"bucket_reinserts\": {}, \
             \"steady_allocs\": {}, \"host_ms\": {:.3}}}{}\n",
            r.name,
            r.pushes,
            r.dir_switches,
            r.bucket_pushes,
            r.bucket_reinserts,
            r.steady_allocs,
            r.host_ms,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pulls `"field": <number>` off a JSON line (the workspace is
/// dependency-free, so no serde).
fn field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn name_of(line: &str) -> Option<&str> {
    let at = line.find("\"name\": \"")? + 9;
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Compares deterministic fields against the baseline file. Returns the
/// number of hard failures (relative deviation > 30%, or any steady-state
/// allocation where the baseline had none).
fn check(records: &[Record], baseline_path: &str) -> usize {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpu_perf: cannot read baseline {baseline_path}: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    for r in records {
        let Some(line) = baseline
            .lines()
            .find(|l| name_of(l) == Some(r.name.as_str()))
        else {
            eprintln!("WARN  {}: not in baseline (new workload?)", r.name);
            continue;
        };
        let mut compare = |what: &str, old: f64, new: f64| {
            if old == 0.0 {
                if new != 0.0 {
                    eprintln!("FAIL  {}: {what} was 0, now {new}", r.name);
                    failures += 1;
                }
                return;
            }
            let dev = (new - old).abs() / old;
            if dev > 0.30 {
                eprintln!(
                    "FAIL  {}: {what} deviates {:.1}% (baseline {old}, now {new})",
                    r.name,
                    dev * 100.0
                );
                failures += 1;
            } else if dev > 0.10 {
                eprintln!(
                    "WARN  {}: {what} deviates {:.1}% (baseline {old}, now {new})",
                    r.name,
                    dev * 100.0
                );
            }
        };
        if let Some(old) = field(line, "pushes") {
            compare("pushes", old, r.pushes as f64);
        }
        if let Some(old) = field(line, "dir_switches") {
            compare("dir_switches", old, r.dir_switches as f64);
        }
        if let Some(old) = field(line, "bucket_pushes") {
            compare("bucket_pushes", old, r.bucket_pushes as f64);
        }
        if let Some(old) = field(line, "bucket_reinserts") {
            compare("bucket_reinserts", old, r.bucket_reinserts as f64);
        }
        if let Some(old) = field(line, "steady_allocs") {
            // the min-over-attempts window makes 0 stable; gate any drift
            compare("steady_allocs", old, r.steady_allocs as f64);
        }
    }
    failures
}

fn main() {
    if !indigo_obs::enabled() {
        eprintln!(
            "cpu_perf: this probe reads telemetry counter deltas; \
             rebuild with `--features telemetry`"
        );
        std::process::exit(1);
    }
    let args: Vec<String> = std::env::args().collect();
    let records = workloads();
    match args.get(1).map(String::as_str) {
        None => print!("{}", emit(&records)),
        Some("--check") => {
            let Some(baseline) = args.get(2) else {
                eprintln!("usage: cpu_perf [--check baseline.json]");
                std::process::exit(1);
            };
            let failures = check(&records, baseline);
            if failures > 0 {
                eprintln!("cpu_perf: {failures} perf regression(s) past the 30% gate");
                std::process::exit(2);
            }
            eprintln!("cpu_perf: deterministic perf within gates");
        }
        Some(other) => {
            eprintln!("cpu_perf: unknown argument {other}");
            std::process::exit(1);
        }
    }
}
