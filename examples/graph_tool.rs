//! A small graph utility: generate any of the suite families (or load a
//! file) and export it as a DIMACS `.gr`, printing its Table-4/5 row.
//!
//! ```text
//! cargo run --release --example graph_tool -- gen rmat 12 out.gr
//! cargo run --release --example graph_tool -- gen road 100x60 out.gr
//! cargo run --release --example graph_tool -- stats path/to/input.gr
//! ```

use indigo_graph::stats::GraphStats;
use indigo_graph::{gen, io, Csr};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let (family, param, out) = (
                args.get(1).map(String::as_str).unwrap_or("rmat"),
                args.get(2).map(String::as_str).unwrap_or("10"),
                args.get(3).map(String::as_str).unwrap_or("out.gr"),
            );
            let g = generate(family, param);
            describe(&g);
            let file = std::fs::File::create(out).expect("create output file");
            io::write_dimacs_gr(&g, std::io::BufWriter::new(file)).expect("write DIMACS");
            println!("wrote {out}");
        }
        Some("stats") => {
            let path = args.get(1).expect("stats needs a file path");
            let g = load(path);
            describe(&g);
        }
        _ => {
            eprintln!(
                "usage:\n  graph_tool gen <grid|road|rmat|social|copapers|gnp> <param> <out.gr>\n  \
                 graph_tool stats <file.gr|.txt|.mtx>"
            );
            std::process::exit(2);
        }
    }
}

fn generate(family: &str, param: &str) -> Csr {
    let seed = 42;
    match family {
        "grid" => {
            let side: usize = param.parse().expect("grid side");
            gen::grid2d(side, side)
        }
        "road" => {
            let (w, h) = param.split_once('x').expect("road WxH");
            gen::road(w.parse().unwrap(), h.parse().unwrap(), seed)
        }
        "rmat" => gen::rmat(param.parse().expect("rmat scale"), 8, seed),
        "social" => gen::preferential_attachment(param.parse().expect("n"), 9, seed),
        "copapers" => gen::clique_overlap(param.parse().expect("n"), 0.8, seed),
        "gnp" => {
            let n: usize = param.parse().expect("n");
            gen::gnp(n, 8.0 / n as f64, seed)
        }
        other => {
            eprintln!("unknown family {other}");
            std::process::exit(2);
        }
    }
}

fn load(path: &str) -> Csr {
    let result = if path.ends_with(".gr") {
        io::load_dimacs_gr(path)
    } else if path.ends_with(".mtx") {
        io::load_matrix_market(path)
    } else {
        io::load_edge_list(path)
    };
    result.unwrap_or_else(|e| {
        eprintln!("failed to load {path}: {e}");
        std::process::exit(1);
    })
}

fn describe(g: &Csr) {
    let s = GraphStats::compute(g);
    println!("name | nodes | edges | size | d_avg | d_max | d>=32 | d>=512 | diam(lb) | comps");
    println!("{}", s.table_row(g.name()));
}
