//! `indigo-exp` — regenerates the paper's tables and figures.
//!
//! ```text
//! indigo-exp all                        # every table and figure
//! indigo-exp fig05 fig16               # a subset
//! indigo-exp tables                    # Tables 1-5 only (no measuring)
//! indigo-exp --smoke                   # small fixed slice, outcome reports
//! indigo-exp sanitize --smoke          # style-conformance verdicts
//!                                      # (needs --features sanitize)
//! indigo-exp serve --port 8080         # fault-tolerant query server
//! indigo-exp serve --chaos             # chaos gate + BENCH_serve.json
//! options:
//!   --scale tiny|small|default|large   # input instance size (default: small)
//!   --reps N                           # CPU wall-clock repetitions (default: 3)
//!   --jobs N                           # host threads for GPU-sim cells
//!                                      # (default: all hardware threads)
//!   --sim-workers N                    # threads inside each deterministic
//!                                      # GPU-sim launch (default: 1)
//!   --out DIR                          # report directory (default: results)
//! fault tolerance (DESIGN.md §7.3):
//!   --cell-timeout SECS                # per-cell wall-clock budget (watchdog)
//!   --cell-cycle-budget CYCLES         # per-cell simulated-cycle budget (GPU)
//!   --journal PATH                     # checkpoint completed cells to PATH
//!   --resume PATH                      # skip cells already in PATH's journal
//!   --inject-fault KIND@CELL           # panic|stall|corrupt at a slot index
//! ```
//!
//! Exit codes: **0** — every cell measured clean; **2** — the run completed
//! but some cells crashed, timed out, or were quarantined (see the
//! `outcomes` report); **1** — harness error (bad arguments, unusable
//! journal, I/O failure).
//!
//! Measurement runs also drop `BENCH_harness.json` in the output directory:
//! suite wall-clock, aggregate cells/sec, job counts, the per-phase
//! breakdown, and the cell outcome counts, for tracking harness throughput
//! across commits. A plain `--smoke` run additionally times the same slice
//! with supervision disabled and records the isolation/watchdog overhead.

use indigo_graph::gen::{Scale, SuiteGraph};
use indigo_harness::experiments::{
    self, correlation, fig14, fig15, fig16, outcomes, tables, throughput,
};
use indigo_harness::matrix::RunPlan;
use indigo_harness::{
    FaultSpec, ProgressEvent, Report, Resilience, RunOptions, RunPhase, RunSummary,
};
use indigo_obs::{console_line, Counter, TraceEvent};
use indigo_serve::ChaosOptions;
use indigo_styles::{Algorithm, Model};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match real_main(args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            console_line(&format!("indigo-exp: {e}"));
            std::process::exit(1);
        }
    }
}

/// Everything parsed from the command line.
struct Cli {
    scale: Scale,
    /// Whether `--scale` was given explicitly (smoke defaults down to Tiny
    /// only when it wasn't).
    scale_set: bool,
    reps: usize,
    out_dir: String,
    options: RunOptions,
    res: Resilience,
    smoke: bool,
    selected: Vec<String>,
    /// `trace`/`profile`: explicit input trace (default: newest
    /// `TRACE_*.jsonl` in the output directory).
    trace_in: Option<String>,
    /// `profile`: rows in each top-N table.
    top: usize,
    /// `trace`: validate the trace instead of exporting it.
    check: bool,
    /// `sanitize`: force RMW update sites onto the unsynchronized split
    /// (mutation testing — the run must end in violations).
    mutate: bool,
    /// `serve`: TCP port (0 = ephemeral).
    port: u16,
    /// `serve`: worker threads executing requests.
    serve_workers: usize,
    /// `serve`: admission-queue capacity.
    queue: usize,
    /// `serve`: default per-request deadline, milliseconds.
    deadline_ms: u64,
    /// `serve --chaos`: concurrent synthetic clients.
    clients: usize,
    /// `serve --chaos`: requests per chaos phase.
    requests: usize,
    /// `serve`: run the chaos gate instead of serving in the foreground.
    chaos: bool,
    /// `serve`: batch-former merge cap (0 disables batching).
    batch: usize,
    /// `serve`: batch-former window, milliseconds.
    batch_window_ms: u64,
    /// `loadgen`: offered request rate.
    rps: f64,
    /// `loadgen`: concurrent client connections.
    conns: usize,
    /// `loadgen`: paced-phase duration, milliseconds.
    duration_ms: u64,
    /// `loadgen`: traffic mix (cached|sweep|mixed).
    mix: String,
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli {
        scale: Scale::Small,
        scale_set: false,
        reps: 3,
        out_dir: "results".to_string(),
        options: RunOptions::auto(),
        res: Resilience::none(),
        smoke: false,
        selected: Vec::new(),
        trace_in: None,
        top: 10,
        check: false,
        mutate: false,
        port: 0,
        serve_workers: 2,
        queue: 16,
        deadline_ms: 2_000,
        clients: 4,
        requests: 32,
        chaos: false,
        batch: 8,
        batch_window_ms: 1,
        rps: 300.0,
        conns: 4,
        duration_ms: 2_000,
        mix: "mixed".to_string(),
    };
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                cli.scale_set = true;
                cli.scale = match it.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("default") => Scale::Default,
                    Some("large") => Scale::Large,
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--reps" => cli.reps = parse_num(it.next(), "--reps")?,
            "--jobs" => {
                let n = parse_num(it.next(), "--jobs")?;
                cli.options = cli.options.with_jobs(n);
            }
            "--sim-workers" => {
                let n = parse_num(it.next(), "--sim-workers")?;
                cli.options = cli.options.with_sim_workers(n);
            }
            "--out" => {
                cli.out_dir = it.next().ok_or("--out needs a directory")?;
            }
            "--cell-timeout" => {
                let secs: f64 = parse_num(it.next(), "--cell-timeout")?;
                if secs.is_nan() || secs <= 0.0 {
                    return Err("--cell-timeout needs a positive number of seconds".into());
                }
                cli.res.cell_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--cell-cycle-budget" => {
                let cycles: f64 = parse_num(it.next(), "--cell-cycle-budget")?;
                if cycles.is_nan() || cycles <= 0.0 {
                    return Err("--cell-cycle-budget needs a positive cycle count".into());
                }
                cli.res.cycle_budget = Some(cycles);
            }
            "--journal" => {
                let path = it.next().ok_or("--journal needs a path")?;
                cli.res = cli.res.with_journal(path);
            }
            "--resume" => {
                let path = it.next().ok_or("--resume needs a journal path")?;
                cli.res = cli.res.resuming(path);
            }
            "--inject-fault" => {
                let spec = it.next().ok_or("--inject-fault needs kind@cell")?;
                cli.res.fault = Some(FaultSpec::parse(&spec)?);
            }
            "--smoke" => cli.smoke = true,
            "--in" => {
                cli.trace_in = Some(it.next().ok_or("--in needs a trace path")?);
            }
            "--top" => cli.top = parse_num(it.next(), "--top")?,
            "--check" => cli.check = true,
            "--mutate-drop-atomics" => cli.mutate = true,
            "--port" => cli.port = parse_num(it.next(), "--port")?,
            "--serve-workers" => cli.serve_workers = parse_num(it.next(), "--serve-workers")?,
            "--queue" => cli.queue = parse_num(it.next(), "--queue")?,
            "--deadline-ms" => cli.deadline_ms = parse_num(it.next(), "--deadline-ms")?,
            "--clients" => cli.clients = parse_num(it.next(), "--clients")?,
            "--requests" => cli.requests = parse_num(it.next(), "--requests")?,
            "--chaos" => cli.chaos = true,
            "--batch" => cli.batch = parse_num(it.next(), "--batch")?,
            "--batch-window-ms" => cli.batch_window_ms = parse_num(it.next(), "--batch-window-ms")?,
            "--rps" => cli.rps = parse_num(it.next(), "--rps")?,
            "--conns" => cli.conns = parse_num(it.next(), "--conns")?,
            "--duration-ms" => cli.duration_ms = parse_num(it.next(), "--duration-ms")?,
            "--mix" => cli.mix = it.next().ok_or("--mix needs cached|sweep|mixed")?,
            "--help" | "-h" => {
                cli.selected.clear();
                cli.selected.push("--help".to_string());
                return Ok(cli);
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => cli.selected.push(other.to_string()),
        }
    }
    Ok(cli)
}

fn parse_num<T: std::str::FromStr>(v: Option<String>, flag: &str) -> Result<T, String> {
    v.and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{flag} needs a number"))
}

fn real_main(args: Vec<String>) -> Result<i32, String> {
    let cli = parse_args(args)?;
    if cli.selected.iter().any(|s| s == "--help") {
        println!("{}", HELP);
        return Ok(0);
    }
    if cli.selected.is_empty() && !cli.smoke {
        println!("{}", HELP);
        return Ok(0);
    }
    match cli.selected.first().map(String::as_str) {
        Some("trace") => return cmd_trace(&cli),
        Some("profile") => return cmd_profile(&cli),
        Some("sanitize") => return cmd_sanitize(&cli),
        Some("serve") => return cmd_serve(&cli),
        Some("loadgen") => return cmd_loadgen(&cli),
        Some("advise") => return cmd_advise(&cli),
        _ => {}
    }

    // cells are isolated: a panicking cell is recorded, not fatal — keep
    // its default panic banner off stderr (cancellations doubly so)
    if resilience_armed(&cli.res) {
        std::panic::set_hook(Box::new(|info| {
            if info
                .payload()
                .downcast_ref::<indigo_cancel::Cancelled>()
                .is_some()
            {
                return;
            }
            console_line(&format!("[cell panic] {info}"));
        }));
    }

    let mut summary: Option<RunSummary> = None;
    let mut reports: Vec<Report> = Vec::new();

    if cli.smoke {
        summary = Some(run_smoke(&cli, &mut reports)?);
    } else {
        let wants = |id: &str| {
            cli.selected.iter().any(|s| s == id)
                || cli.selected.iter().any(|s| s == "all")
                || (id.starts_with("table") && cli.selected.iter().any(|s| s == "tables"))
        };

        // tables need no measurements
        if wants("table1") {
            reports.push(tables::table1());
        }
        if wants("table2") {
            reports.push(tables::table2());
        }
        if wants("table3") {
            reports.push(tables::table3());
        }
        if wants("table45") {
            reports.push(tables::tables45(cli.scale));
        }

        let needs_dataset = experiments::PAIR_SPECS.iter().any(|s| wants(s.id))
            || [
                "fig09", "fig10", "fig11", "fig14", "fig15", "fig16", "corr513",
            ]
            .iter()
            .any(|id| wants(id));
        if needs_dataset {
            console_line(&format!(
                "measuring full suite at {:?} scale ({} CPU reps, {} jobs, {} sim \
                 workers); this runs all 1098 programs on 5 inputs...",
                cli.scale, cli.reps, cli.options.jobs, cli.options.sim_workers
            ));
            start_trace(&cli, "suite", cli.scale);
            let mut reporter = PhaseReporter::new();
            let suite_started = Instant::now();
            let (ds, run) = experiments::Dataset::collect_cells(
                cli.scale,
                cli.reps,
                &cli.options,
                &cli.res,
                |ev| reporter.on_event(ev),
            )?;
            let suite_secs = suite_started.elapsed().as_secs_f64();
            finish_trace("suite", suite_secs);
            let s = run.summary();
            console_line(&format!("matrix complete: {s}"));
            reporter.print_summary(suite_secs);
            if let Err(e) = write_bench_json(&cli, &reporter, suite_secs, &s, None) {
                console_line(&format!("failed to write BENCH_harness.json: {e}"));
            }
            reports.push(outcomes::cells_report(&run));
            reports.push(outcomes::outcomes_report(&run));
            summary = Some(s);

            for spec in experiments::PAIR_SPECS {
                if wants(spec.id) {
                    reports.push(experiments::pair_report(spec, &ds));
                }
            }
            if wants("fig09") {
                reports.push(throughput::fig09(&ds));
            }
            if wants("fig10") {
                reports.push(throughput::fig10(&ds));
            }
            if wants("fig11") {
                reports.push(throughput::fig11(&ds));
            }
            if wants("fig14") {
                reports.push(fig14::fig14(&ds));
            }
            if wants("fig15") {
                reports.push(fig15::fig15(&ds));
            }
            if wants("corr513") {
                reports.push(correlation::correlation(&ds));
            }
            if wants("fig16") {
                console_line("running baselines for fig16...");
                reports.push(fig16::fig16(&ds));
            }
        }
    }

    for r in &reports {
        println!("{}", r.render());
        r.write_to(&cli.out_dir)
            .map_err(|e| format!("failed to write {}: {e}", r.id))?;
    }
    console_line(&format!(
        "wrote {} reports to {}/",
        reports.len(),
        cli.out_dir
    ));
    Ok(summary.map_or(0, |s| s.exit_code()))
}

/// Installs the run's trace sink (`TRACE_<run>.jsonl` in the output
/// directory, fresh per run) and emits the opening `run-start` event.
/// No-op in telemetry-off builds.
fn start_trace(cli: &Cli, run: &str, scale: Scale) {
    if !indigo_obs::enabled() {
        return;
    }
    let path = Path::new(&cli.out_dir).join(format!("TRACE_{run}.jsonl"));
    if std::fs::create_dir_all(&cli.out_dir).is_err() {
        return;
    }
    let _ = std::fs::remove_file(&path); // one trace per run, not an archive
    match indigo_obs::install_trace(&path) {
        Ok(true) => {
            indigo_obs::emit(
                &TraceEvent::instant("run-start", run, indigo_obs::now_micros())
                    .with_arg("jobs", cli.options.jobs.to_string())
                    .with_arg("sim_workers", cli.options.sim_workers.to_string())
                    .with_arg("scale", format!("{scale:?}")),
            );
            console_line(&format!("recording trace to {}", path.display()));
        }
        Ok(false) => {}
        Err(e) => console_line(&format!("cannot open trace {}: {e}", path.display())),
    }
}

/// Emits the closing `counters` snapshot and `run-end` event. Readers
/// treat `run-end` as the end of the run: any later events (e.g. the smoke
/// overhead re-runs) are ignored by `trace`/`profile`.
fn finish_trace(run: &str, suite_secs: f64) {
    if !indigo_obs::enabled() || !indigo_obs::trace_installed() {
        return;
    }
    let snap = indigo_obs::counters_snapshot();
    let mut ev = TraceEvent::instant("counters", "run totals", indigo_obs::now_micros());
    for c in Counter::ALL {
        ev = ev.with_arg(c.name(), snap.get(c).to_string());
    }
    indigo_obs::emit(&ev);
    indigo_obs::emit(
        &TraceEvent::instant("run-end", run, indigo_obs::now_micros())
            .with_arg("suite_secs", format!("{suite_secs:.3}")),
    );
}

fn resilience_armed(res: &Resilience) -> bool {
    res.cell_timeout.is_some()
        || res.cycle_budget.is_some()
        || res.fault.is_some()
        || res.journal.is_some()
}

/// The fixed smoke slice: BFS + TC under the CUDA and C++ models on two
/// inputs, thinned to the thread-granularity / blocked-schedule variants.
/// Small enough for CI, but it exercises both scheduler phases (GPU-sim
/// fan-out and exclusive CPU wall-clock) and every outcome path.
fn smoke_plan(scale: Scale, reps: usize) -> RunPlan {
    RunPlan::for_algorithms(
        &[Algorithm::Bfs, Algorithm::Tc],
        &[Model::Cuda, Model::Cpp],
        scale,
        reps,
    )
    .filter(|c| match c.model {
        Model::Cuda => {
            c.granularity == Some(indigo_styles::Granularity::Thread)
                && c.atomic != Some(indigo_styles::AtomicKind::CudaAtomic)
        }
        _ => c.cpp_schedule == Some(indigo_styles::CppSchedule::Blocked),
    })
    .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat])
}

/// Runs the smoke slice under the configured resilience, writing the cell
/// and outcome reports plus the bench record. A plain smoke run (no fault,
/// no journal) also times an unsupervised pass of the same slice to record
/// the isolation/watchdog overhead.
fn run_smoke(cli: &Cli, reports: &mut Vec<Report>) -> Result<RunSummary, String> {
    let scale = if cli.scale_set {
        cli.scale
    } else {
        Scale::Tiny // smoke defaults down to tiny unless --scale was given
    };
    let plan = smoke_plan(scale, 1);
    console_line(&format!(
        "smoke slice: {} variants × {} graphs at {scale:?} scale ({} jobs)",
        plan.variants.len(),
        plan.graphs.len(),
        cli.options.jobs
    ));
    start_trace(cli, "smoke", scale);
    let mut reporter = PhaseReporter::new();
    let started = Instant::now();
    let run = plan.run_cells(&cli.options, &cli.res, |ev| reporter.on_event(ev))?;
    let suite_secs = started.elapsed().as_secs_f64();
    finish_trace("smoke", suite_secs);
    let s = run.summary();
    console_line(&format!("smoke complete: {s}"));
    reporter.print_summary(suite_secs);

    // overhead check: same slice, supervision off (only when this run is
    // itself clean — fault/journal runs aren't comparable). One pass each
    // way is dominated by warmup noise (several percent run-to-run on this
    // slice), so both modes are timed twice, alternating, and the per-mode
    // *minimum* — the standard noise-robust wall-clock estimator — is
    // compared. The report run above serves as the untimed warmup.
    let overhead = if cli.res.fault.is_none() && cli.res.journal.is_none() {
        let timed = |res: &Resilience| -> Result<f64, String> {
            let t = Instant::now();
            plan.run_cells(&cli.options, res, |_| {})?;
            Ok(t.elapsed().as_secs_f64())
        };
        let bare = Resilience::none();
        let mut base_secs = f64::INFINITY;
        let mut sup_secs = f64::INFINITY;
        for _ in 0..2 {
            base_secs = base_secs.min(timed(&bare)?);
            sup_secs = sup_secs.min(timed(&cli.res)?);
        }
        let pct = if base_secs > 0.0 {
            100.0 * (sup_secs - base_secs) / base_secs
        } else {
            0.0
        };
        console_line(&format!(
            "resilience overhead: supervised {} vs bare {} ({pct:+.2}%, min of 2)",
            fmt_secs(sup_secs),
            fmt_secs(base_secs)
        ));
        Some((base_secs, pct))
    } else {
        None
    };

    if let Err(e) = write_bench_json(cli, &reporter, suite_secs, &s, overhead) {
        console_line(&format!("failed to write BENCH_harness.json: {e}"));
    }
    reports.push(outcomes::cells_report(&run));
    reports.push(outcomes::outcomes_report(&run));
    Ok(s)
}

/// One finished phase, for the final summary and the bench JSON.
struct PhaseRecord {
    phase: RunPhase,
    cells: usize,
    secs: f64,
}

/// Turns [`ProgressEvent`]s into rate/ETA lines on stderr and collects the
/// per-phase timing breakdown.
struct PhaseReporter {
    phase_started: Instant,
    last_line: Instant,
    finished: Vec<PhaseRecord>,
}

impl PhaseReporter {
    fn new() -> PhaseReporter {
        let now = Instant::now();
        PhaseReporter {
            phase_started: now,
            last_line: now,
            finished: Vec::new(),
        }
    }

    fn on_event(&mut self, ev: ProgressEvent) {
        match ev {
            ProgressEvent::PhaseStart { phase, total } => {
                self.phase_started = Instant::now();
                self.last_line = self.phase_started;
                console_line(&format!("[{}] starting: {total} cells", phase.label()));
            }
            ProgressEvent::Cell { phase, done, total } => {
                // throttle: at most ~1 line/sec, but always print the last
                let now = Instant::now();
                if done < total && now.duration_since(self.last_line).as_secs_f64() < 1.0 {
                    return;
                }
                self.last_line = now;
                let elapsed = now.duration_since(self.phase_started).as_secs_f64();
                let rate = if elapsed > 0.0 {
                    done as f64 / elapsed
                } else {
                    0.0
                };
                let eta = if rate > 0.0 {
                    (total - done) as f64 / rate
                } else {
                    f64::NAN
                };
                console_line(&format!(
                    "[{}] {done}/{total} cells  {rate:.1} cells/s  elapsed {}  eta {}",
                    phase.label(),
                    fmt_secs(elapsed),
                    fmt_secs(eta),
                ));
            }
            ProgressEvent::PhaseEnd { phase, total, secs } => {
                let rate = if secs > 0.0 { total as f64 / secs } else { 0.0 };
                console_line(&format!(
                    "[{}] done: {total} cells in {} ({rate:.1} cells/s)",
                    phase.label(),
                    fmt_secs(secs),
                ));
                self.finished.push(PhaseRecord {
                    phase,
                    cells: total,
                    secs,
                });
            }
        }
    }

    fn total_cells(&self) -> usize {
        // prepare units are graphs, not measurement cells
        self.finished
            .iter()
            .filter(|r| r.phase != RunPhase::Prepare)
            .map(|r| r.cells)
            .sum()
    }

    fn print_summary(&self, suite_secs: f64) {
        console_line("phase breakdown:");
        for r in &self.finished {
            console_line(&format!(
                "  {:8} {:6} units  {:>9}  ({:.1}% of wall)",
                r.phase.label(),
                r.cells,
                fmt_secs(r.secs),
                if suite_secs > 0.0 {
                    100.0 * r.secs / suite_secs
                } else {
                    0.0
                },
            ));
        }
        let cells = self.total_cells();
        let rate = if suite_secs > 0.0 {
            cells as f64 / suite_secs
        } else {
            0.0
        };
        console_line(&format!(
            "  total    {cells:6} cells  {:>9}  ({rate:.1} cells/s)",
            fmt_secs(suite_secs)
        ));
    }
}

/// Writes the machine-readable benchmark record for this run.
fn write_bench_json(
    cli: &Cli,
    reporter: &PhaseReporter,
    suite_secs: f64,
    summary: &RunSummary,
    overhead: Option<(f64, f64)>,
) -> std::io::Result<()> {
    let cells = reporter.total_cells();
    let rate = if suite_secs > 0.0 {
        cells as f64 / suite_secs
    } else {
        0.0
    };
    let mut phases = String::new();
    for (i, r) in reporter.finished.iter().enumerate() {
        if i > 0 {
            phases.push_str(",\n");
        }
        phases.push_str(&format!(
            "    {{\"phase\": \"{}\", \"units\": {}, \"secs\": {}}}",
            r.phase.label(),
            r.cells,
            json_f64(r.secs)
        ));
    }
    let resilience = format!(
        "{{\n    \"cell_timeout_secs\": {},\n    \"cycle_budget\": {},\n    \
         \"outcomes\": {{\"ok\": {}, \"crashed\": {}, \"timed_out\": {}, \
         \"wrong_answer\": {}, \"resumed\": {}}}{}\n  }}",
        cli.res
            .cell_timeout
            .map_or("null".to_string(), |d| json_f64(d.as_secs_f64())),
        cli.res.cycle_budget.map_or("null".to_string(), json_f64),
        summary.ok,
        summary.crashed,
        summary.timed_out,
        summary.wrong_answer,
        summary.resumed,
        overhead.map_or(String::new(), |(base_secs, pct)| format!(
            ",\n    \"bare_secs\": {},\n    \"overhead_pct\": {}",
            json_f64(base_secs),
            json_f64(pct)
        )),
    );
    let body = format!(
        "{{\n  \"suite_secs\": {},\n  \"cells\": {},\n  \"cells_per_sec\": {},\n  \
         \"jobs\": {},\n  \"sim_workers\": {},\n  \"scale\": \"{:?}\",\n  \"reps\": {},\n  \
         \"telemetry_enabled\": {},\n  \"sanitize_enabled\": {},\n  \
         \"resilience\": {},\n  \"phases\": [\n{}\n  ]\n}}\n",
        json_f64(suite_secs),
        cells,
        json_f64(rate),
        cli.options.jobs,
        cli.options.sim_workers,
        cli.scale,
        cli.reps,
        indigo_obs::enabled(),
        indigo_exec::sanitize::enabled(),
        resilience,
        phases
    );
    std::fs::create_dir_all(&cli.out_dir)?;
    let path = std::path::Path::new(&cli.out_dir).join("BENCH_harness.json");
    std::fs::write(&path, body)?;
    console_line(&format!("wrote {}", path.display()));
    Ok(())
}

// ---- serve subcommand ----------------------------------------------------

/// `indigo-exp serve [--port P] [--serve-workers N] [--queue N]
/// [--deadline-ms MS] [--journal PATH] [--scale S]` — runs the
/// fault-tolerant query server (DESIGN.md §7.8) in the foreground until
/// killed. With `--chaos`, runs the chaos gate instead: synthetic
/// multi-client traffic with injected faults (`--clients`, `--requests`,
/// `--inject-fault KIND@EVERY` — every EVERY-th storm request faults)
/// against an in-process server, asserts the robustness invariants, and
/// writes `BENCH_serve.json` to the output directory. Exit code 0 only if
/// every invariant held.
fn cmd_serve(cli: &Cli) -> Result<i32, String> {
    // cells crash by injected panic in chaos mode; keep their banners (and
    // watchdog cancellations) off stderr, but let real bugs through
    std::panic::set_hook(Box::new(|info| {
        if info
            .payload()
            .downcast_ref::<indigo_cancel::Cancelled>()
            .is_some()
        {
            return;
        }
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_default();
        if msg.starts_with("injected fault") {
            return;
        }
        console_line(&format!("[serve panic] {info}"));
    }));

    if cli.chaos {
        let fault = match &cli.res.fault {
            Some(f) => Some(indigo_serve::ChaosFault {
                kind: f.kind,
                every: f.cell.max(1),
            }),
            None => ChaosOptions::default().fault,
        };
        std::fs::create_dir_all(&cli.out_dir)
            .map_err(|e| format!("cannot create {}: {e}", cli.out_dir))?;
        let opts = ChaosOptions {
            clients: cli.clients.max(1),
            requests: cli.requests.max(4),
            fault,
            journal: cli.res.journal.clone(),
            deadline: Duration::from_millis(cli.deadline_ms.max(1)),
            flightrec_dir: Some(PathBuf::from(&cli.out_dir)),
        };
        console_line(&format!(
            "chaos: {} clients × {} requests/phase, fault {}, deadline {} ms",
            opts.clients,
            opts.requests,
            opts.fault
                .map(|f| format!("{}@{}", f.kind.label(), f.every))
                .unwrap_or_else(|| "none".into()),
            cli.deadline_ms
        ));
        let report = indigo_serve::chaos::run_chaos(&opts)?;
        let path = Path::new(&cli.out_dir).join("BENCH_serve.json");
        std::fs::write(&path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        console_line(&format!(
            "chaos OK: {} requests ({} ok, {} shed, {} timed out, {} failed), \
             {} retries, breaker {}/{} trip/recover, p99 {:.1} ms, {:.0} rps cached",
            report.requests,
            report.ok,
            report.shed,
            report.timed_out,
            report.failed,
            report.retries,
            report.breaker_trips,
            report.breaker_recoveries,
            report.latency_ms.p99,
            report.saturation_rps
        ));
        console_line(&format!(
            "observability: {} /metrics series validated, flight recorder \
             {} records / {} dump(s), telemetry {}",
            report.metrics_series,
            report.flight_pushed,
            report.flight_dumps,
            if report.telemetry_enabled {
                "on"
            } else {
                "off"
            }
        ));
        console_line(&format!("wrote {}", path.display()));
        return Ok(0);
    }

    let cfg = indigo_serve::ServerConfig {
        addr: format!("127.0.0.1:{}", cli.port),
        workers: cli.serve_workers.max(1),
        queue: cli.queue.max(1),
        jobs: cli.options.jobs,
        default_deadline: Duration::from_millis(cli.deadline_ms.max(1)),
        default_scale: if cli.scale_set {
            cli.scale
        } else {
            Scale::Tiny
        },
        reps: cli.reps.clamp(1, 9),
        journal: cli.res.journal.clone(),
        batch: cli.batch,
        batch_window: Duration::from_millis(cli.batch_window_ms),
        flightrec_dir: Some(PathBuf::from(&cli.out_dir)),
        ..indigo_serve::ServerConfig::default()
    };
    let server =
        indigo_serve::Server::start(cfg).map_err(|e| format!("cannot start server: {e}"))?;
    console_line(&format!(
        "serving on http://{} — routes: /health /stats /metrics /cell /advise \
         /run /sweep /debug/flightrec ({} recovered cells); ctrl-c to stop",
        server.addr(),
        server.recovered_cells()
    ));
    loop {
        std::thread::park(); // foreground until killed
    }
}

// ---- loadgen subcommand --------------------------------------------------

/// `indigo-exp loadgen [--rps R] [--conns N] [--duration-ms MS]
/// [--mix cached|sweep|mixed] [--serve-workers N] [--queue N] [--out DIR]`
/// — open-loop load generator (DESIGN.md §7.9). Drives the same traffic
/// through an unbatched (pre-PR-8) and a batched server, reports
/// coordinated-omission-safe latency percentiles and saturation
/// throughput for each, and writes `BENCH_loadgen.json`.
fn cmd_loadgen(cli: &Cli) -> Result<i32, String> {
    let mix = indigo_serve::loadgen::LoadMix::parse(&cli.mix)?;
    let opts = indigo_serve::loadgen::LoadgenOptions {
        rps: if cli.rps >= 1.0 { cli.rps } else { 1.0 },
        conns: cli.conns.max(1),
        duration: Duration::from_millis(cli.duration_ms.max(100)),
        mix,
        workers: cli.serve_workers.max(1),
        queue: cli.queue.max(1),
        ..Default::default()
    };
    console_line(&format!(
        "loadgen: {} rps × {} ms over {} conns, mix {}",
        opts.rps,
        opts.duration.as_millis(),
        opts.conns,
        opts.mix.label()
    ));
    let report = indigo_serve::loadgen::run_loadgen(&opts)?;
    std::fs::create_dir_all(&cli.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", cli.out_dir))?;
    let path = Path::new(&cli.out_dir).join("BENCH_loadgen.json");
    std::fs::write(&path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    for m in [&report.unbatched, &report.batched] {
        console_line(&format!(
            "{}: {:.0}/{:.0} rps achieved/offered, p50 {:.2} ms, p99 {:.2} ms, \
             p999 {:.2} ms, saturation {:.0} rps ({} coalesced, {} batches, \
             {} keep-alive reuses)",
            m.label,
            m.achieved_rps,
            m.offered_rps,
            m.p50_ms,
            m.p99_ms,
            m.p999_ms,
            m.saturation_rps,
            m.coalesced,
            m.batches,
            m.keepalive_reuses
        ));
        let s = &m.stage_latency_us;
        console_line(&format!(
            "{} stages (p50/p99 µs): queue {}/{}, batch-wait {}/{}, \
             execute {}/{}",
            m.label,
            s.queue.p50_us,
            s.queue.p99_us,
            s.batch_wait.p50_us,
            s.batch_wait.p99_us,
            s.execute.p50_us,
            s.execute.p99_us
        ));
    }
    console_line(&format!(
        "speedup: {:.2}x saturation throughput (batched vs unbatched)",
        report.speedup
    ));
    console_line(&format!("wrote {}", path.display()));
    Ok(0)
}

/// `indigo-exp advise --journal PATH [--out DIR]` — fits the style advisor
/// from a measured sweep journal (DESIGN.md §7.11), validates it against
/// deterministic ground-truth sweeps on held-out generated graphs, prints
/// the fitted §5.16-style guidelines, and writes `BENCH_advisor.json`.
fn cmd_advise(cli: &Cli) -> Result<i32, String> {
    let Some(journal) = &cli.res.journal else {
        return Err("advise needs --journal PATH (a sweep journal to fit from)".into());
    };
    let set = indigo_harness::advise::training_from_journal(journal)
        .map_err(|e| format!("cannot fit from {}: {e}", journal.display()))?;
    console_line(&format!(
        "advise: {} completed cells in {} ({} unmappable skipped), \
         detected scale {:?} reps {}",
        set.total_ok,
        journal.display(),
        set.skipped,
        set.scale,
        set.reps
    ));
    let advisor = indigo_advisor::Advisor::fit(&set.cells);
    console_line(&format!(
        "advisor: fitted {} cells over {} graphs into {} (algo, model) groups",
        advisor.num_cells(),
        advisor.num_graphs(),
        advisor.num_groups()
    ));
    if advisor.num_groups() == 0 {
        return Err("journal has no cells the advisor can learn from".into());
    }
    for (algo, model) in advisor.fitted_groups() {
        for r in advisor.guidelines(algo, model).iter().take(4) {
            console_line(&format!(
                "  [{}/{}] prefer {}={} when {} is {} (corr {:+.2})",
                algo.label(),
                model.label(),
                r.dimension,
                r.option,
                r.property,
                if r.correlation >= 0.0 { "high" } else { "low" },
                r.correlation
            ));
        }
    }

    console_line("validating on held-out graphs (deterministic CUDA-sim ground truth)...");
    let mut bench = indigo_harness::advise::evaluate(&advisor, set.scale);
    bench.reps = set.reps;
    for c in &bench.cases {
        console_line(&format!(
            "  {} {}/{}: predicted {} via {} — regret top-1 {:.1}%, top-3 {:.1}% \
             ({} candidates, best {})",
            c.graph,
            c.algo.label(),
            c.model.label(),
            c.predicted,
            c.method.label(),
            100.0 * c.regret_top1,
            100.0 * c.regret_top3,
            c.candidates,
            c.best
        ));
    }
    console_line(&format!(
        "regret over {} held-out cases: top-1 mean {:.1}% / max {:.1}%, \
         top-3 mean {:.1}% / max {:.1}%",
        bench.cases.len(),
        100.0 * bench.mean_regret_top1,
        100.0 * bench.max_regret_top1,
        100.0 * bench.mean_regret_top3,
        100.0 * bench.max_regret_top3
    ));

    std::fs::create_dir_all(&cli.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", cli.out_dir))?;
    let path = Path::new(&cli.out_dir).join("BENCH_advisor.json");
    indigo_harness::advise::write_bench(&path, &bench)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    console_line(&format!("wrote {}", path.display()));
    Ok(if bench.cases.is_empty() { 2 } else { 0 })
}

// ---- trace / profile subcommands ----------------------------------------

/// Resolves the input trace: `--in PATH`, else the newest `TRACE_*.jsonl`
/// in the output directory.
fn resolve_trace_input(cli: &Cli) -> Result<PathBuf, String> {
    if let Some(p) = &cli.trace_in {
        return Ok(PathBuf::from(p));
    }
    let dir = Path::new(&cli.out_dir);
    let mut newest: Option<(std::time::SystemTime, PathBuf)> = None;
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.starts_with("TRACE_") || !name.ends_with(".jsonl") {
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        if newest.as_ref().is_none_or(|(t, _)| modified > *t) {
            newest = Some((modified, entry.path()));
        }
    }
    newest.map(|(_, p)| p).ok_or_else(|| {
        format!(
            "no TRACE_*.jsonl in {}; record one with a telemetry build \
             (cargo run --features telemetry --bin indigo-exp -- --smoke)",
            dir.display()
        )
    })
}

/// Loads a trace and truncates it at the first `run-end`: events past it
/// (the smoke overhead re-runs) are not part of the reported run.
fn load_run(path: &Path) -> Result<(Vec<TraceEvent>, usize), String> {
    let (mut events, skipped) =
        indigo_obs::load_trace(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if let Some(end) = events.iter().position(|e| e.kind == "run-end") {
        events.truncate(end + 1);
    }
    Ok((events, skipped))
}

/// `indigo-exp trace [--in PATH] [--out FILE|DIR] [--check]` — exports the
/// recorded trace as chrome://tracing JSON, or validates it with `--check`.
fn cmd_trace(cli: &Cli) -> Result<i32, String> {
    let input = resolve_trace_input(cli)?;
    let (events, skipped) = load_run(&input)?;
    if cli.check {
        if events.is_empty() {
            return Err(format!("{}: no valid trace events", input.display()));
        }
        if skipped > 0 {
            return Err(format!(
                "{}: {skipped} malformed line(s) in a completed run",
                input.display()
            ));
        }
        for required in ["run-start", "phase", "run-end"] {
            if !events.iter().any(|e| e.kind == required) {
                return Err(format!(
                    "{}: missing required `{required}` event",
                    input.display()
                ));
            }
        }
        console_line(&format!(
            "trace OK: {} events in {}",
            events.len(),
            input.display()
        ));
        return Ok(0);
    }
    let out = if cli.out_dir.ends_with(".json") {
        PathBuf::from(&cli.out_dir)
    } else {
        std::fs::create_dir_all(&cli.out_dir)
            .map_err(|e| format!("cannot create {}: {e}", cli.out_dir))?;
        Path::new(&cli.out_dir).join("trace.json")
    };
    let json = indigo_obs::chrome::to_chrome_json(&events);
    std::fs::write(&out, json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    console_line(&format!(
        "wrote {} ({} events{}; load in chrome://tracing or Perfetto)",
        out.display(),
        events.len(),
        if skipped > 0 {
            format!(", {skipped} torn line(s) skipped")
        } else {
            String::new()
        }
    ));
    Ok(0)
}

/// `indigo-exp sanitize [--smoke] [--scale S] [--out DIR]
/// [--mutate-drop-atomics]` — runs the style-conformance sanitizer
/// (DESIGN.md §7.6) over a plan's cells, serially, and writes the verdict
/// report. Needs a `--features sanitize` build to observe anything.
/// `--smoke` checks the fixed CI slice; without it the full suite is swept
/// (slow: every access goes through the collector). Exit code 2 when any
/// label is violated or a cell crashes, 0 otherwise.
fn cmd_sanitize(cli: &Cli) -> Result<i32, String> {
    if !indigo_exec::sanitize::enabled() {
        return Err(
            "the sanitizer is compiled out of this build; rebuild with --features sanitize"
                .to_string(),
        );
    }
    let scale = if cli.scale_set {
        cli.scale
    } else {
        Scale::Tiny // conformance is scale-independent; default small and fast
    };
    let plan = if cli.smoke {
        smoke_plan(scale, 1)
    } else {
        RunPlan::for_algorithms(&Algorithm::ALL, &Model::ALL, scale, 1)
    };
    console_line(&format!(
        "sanitizing {} variants × {} graphs at {scale:?} scale (serial; \
         one target per model){}",
        plan.variants.len(),
        plan.graphs.len(),
        if cli.mutate {
            " with atomics dropped at RMW update sites"
        } else {
            ""
        }
    ));
    indigo_exec::sanitize::set_mutation_drop_atomics(cli.mutate);
    let started = Instant::now();
    let mut last = Instant::now();
    let run = indigo_harness::sanitize::run_plan(&plan, |done, total| {
        if last.elapsed() >= Duration::from_secs(5) {
            last = Instant::now();
            console_line(&format!("  {done}/{total} cells"));
        }
    });
    indigo_exec::sanitize::set_mutation_drop_atomics(false);
    console_line(&format!(
        "sanitize complete in {}: {}",
        fmt_secs(started.elapsed().as_secs_f64()),
        run.summary()
    ));
    let report = indigo_harness::sanitize::sanitize_report(&run);
    println!("{}", report.render());
    report
        .write_to(&cli.out_dir)
        .map_err(|e| format!("failed to write {}: {e}", report.id))?;
    console_line(&format!("wrote report to {}/", cli.out_dir));
    Ok(run.exit_code())
}

/// `indigo-exp profile [--in PATH] [--top N]` — renders a plain-text
/// profile report from a recorded trace and writes it to `profile.txt`.
fn cmd_profile(cli: &Cli) -> Result<i32, String> {
    let input = resolve_trace_input(cli)?;
    let (events, skipped) = load_run(&input)?;
    if events.is_empty() {
        return Err(format!("{}: no valid trace events", input.display()));
    }
    let text = profile_text(&events, skipped, cli.top, &input);
    println!("{text}");
    let out_dir = if cli.out_dir.ends_with(".json") {
        "results".to_string()
    } else {
        cli.out_dir.clone()
    };
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let out = Path::new(&out_dir).join("profile.txt");
    std::fs::write(&out, &text).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    console_line(&format!("wrote {}", out.display()));
    Ok(0)
}

/// One aggregated row of the per-target table.
#[derive(Default)]
struct TargetAgg {
    cells: usize,
    wall_us: u64,
    sim_cycles: f64,
}

fn profile_text(events: &[TraceEvent], skipped: usize, top: usize, input: &Path) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();
    out.push_str(&format!("profile of {}\n", input.display()));
    out.push_str(&format!(
        "{} events{}\n",
        events.len(),
        if skipped > 0 {
            format!(" ({skipped} torn line(s) skipped)")
        } else {
            String::new()
        }
    ));
    if let Some(start) = events.iter().find(|e| e.kind == "run-start") {
        out.push_str(&format!(
            "run: {} (jobs {}, sim workers {}, scale {})\n",
            start.name,
            start.arg("jobs").unwrap_or("?"),
            start.arg("sim_workers").unwrap_or("?"),
            start.arg("scale").unwrap_or("?"),
        ));
    }
    if let Some(end) = events.iter().find(|e| e.kind == "run-end") {
        out.push_str(&format!(
            "wall: {}s\n",
            end.arg("suite_secs").unwrap_or("?")
        ));
    }

    out.push_str("\nphases:\n");
    for ev in events.iter().filter(|e| e.kind == "phase") {
        out.push_str(&format!(
            "  {:8} {:>6} units  {:>10.3}s\n",
            ev.name,
            ev.arg("cells").unwrap_or("?"),
            ev.dur_us as f64 / 1e6,
        ));
    }

    let cells: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == "cell").collect();
    let mut outcomes: BTreeMap<&str, usize> = BTreeMap::new();
    let mut targets: BTreeMap<String, TargetAgg> = BTreeMap::new();
    for ev in &cells {
        *outcomes
            .entry(ev.arg("outcome").unwrap_or("?"))
            .or_default() += 1;
        // cell names are `variant|graph|target`
        let target = ev.name.rsplit('|').next().unwrap_or("?").to_string();
        let agg = targets.entry(target).or_default();
        agg.cells += 1;
        agg.wall_us += ev.dur_us;
        agg.sim_cycles += ev.arg_f64("sim_cycles").unwrap_or(0.0);
    }
    out.push_str("\noutcomes:");
    for (label, n) in &outcomes {
        out.push_str(&format!("  {label}={n}"));
    }
    out.push('\n');
    out.push_str("\nby target:\n");
    for (target, agg) in &targets {
        out.push_str(&format!(
            "  {:16} {:>6} cells  {:>10.3}s wall  {:>14.0} sim cycles\n",
            target,
            agg.cells,
            agg.wall_us as f64 / 1e6,
            agg.sim_cycles,
        ));
    }

    let mut by_cycles: Vec<&&TraceEvent> = cells
        .iter()
        .filter(|e| e.arg_f64("sim_cycles").is_some())
        .collect();
    by_cycles.sort_by(|a, b| {
        b.arg_f64("sim_cycles")
            .unwrap_or(0.0)
            .total_cmp(&a.arg_f64("sim_cycles").unwrap_or(0.0))
    });
    if !by_cycles.is_empty() {
        out.push_str(&format!("\ntop {} cells by sim cycles:\n", top));
        for ev in by_cycles.iter().take(top) {
            out.push_str(&format!(
                "  {:>14.0} cycles  {:>4} launches  {}\n",
                ev.arg_f64("sim_cycles").unwrap_or(0.0),
                ev.arg("sim_launches").unwrap_or("?"),
                ev.name,
            ));
        }
    }

    let mut by_wall: Vec<&&TraceEvent> = cells.iter().collect();
    by_wall.sort_by_key(|ev| std::cmp::Reverse(ev.dur_us));
    if !by_wall.is_empty() {
        out.push_str(&format!("\ntop {} cells by wall time:\n", top));
        for ev in by_wall.iter().take(top) {
            out.push_str(&format!(
                "  {:>10.3}s  {}\n",
                ev.dur_us as f64 / 1e6,
                ev.name,
            ));
        }
    }

    if let Some(counters) = events.iter().rev().find(|e| e.kind == "counters") {
        out.push_str("\ncounters:\n");
        for (k, v) in &counters.args {
            if v != "0" {
                out.push_str(&format!("  {k:32} {v}\n"));
            }
        }
    }
    let fires = events.iter().filter(|e| e.kind == "watchdog-fire").count();
    if fires > 0 {
        out.push_str(&format!("\nwatchdog fired {fires} time(s)\n"));
    }
    out
}

/// JSON has no NaN/Infinity literals; clamp to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// `73s` / `4m05s` / `2h07m` style durations.
fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "--".to_string();
    }
    let s = secs.round() as u64;
    if s < 100 {
        format!("{s}s")
    } else if s < 6000 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

const HELP: &str = "indigo-exp — regenerate the Indigo2 paper's tables and figures

usage: indigo-exp <ids...> [--scale tiny|small|default|large] [--reps N]
                  [--jobs N] [--sim-workers N] [--out DIR]
                  [--cell-timeout SECS] [--cell-cycle-budget CYCLES]
                  [--journal PATH] [--resume PATH]
                  [--inject-fault panic|stall|corrupt@CELL] [--smoke]
       indigo-exp trace   [--in TRACE.jsonl] [--out FILE.json|DIR] [--check]
       indigo-exp profile [--in TRACE.jsonl] [--top N] [--out DIR]
       indigo-exp sanitize [--smoke] [--scale S] [--out DIR]
                  [--mutate-drop-atomics]
       indigo-exp serve   [--port P] [--serve-workers N] [--queue N]
                  [--deadline-ms MS] [--journal PATH] [--scale S]
                  [--batch N] [--batch-window-ms MS]
       indigo-exp serve --chaos [--clients N] [--requests N]
                  [--inject-fault panic|stall|corrupt@EVERY] [--out DIR]
       indigo-exp loadgen [--rps R] [--conns N] [--duration-ms MS]
                  [--mix cached|sweep|mixed] [--out DIR]
       indigo-exp advise  --journal PATH [--out DIR]

ids: all, tables, table1 table2 table3 table45,
     fig01 fig02 fig02c fig03 fig04 fig05 fig06 fig07 fig08,
     fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16, corr513

--jobs defaults to the machine's hardware thread count; GPU-sim cells
fan out across jobs while CPU wall-clock cells always run exclusively,
and results are bit-identical to --jobs 1 at any setting.

fault tolerance: every cell runs isolated — a crash, timeout, or wrong
answer becomes a structured row in the cells/outcomes reports instead of
aborting the sweep. --journal checkpoints completed cells as JSONL;
--resume replays a journal (byte-identical results) and keeps appending
to it. --smoke runs a small fixed slice for CI and overhead tracking.

observability: builds with `--features telemetry` record zero-alloc
counters and phase/cell spans to TRACE_<run>.jsonl in the output dir.
`trace` exports the newest trace as chrome://tracing JSON (`--check`
validates it instead); `profile` prints per-phase/per-target breakdowns,
top-N cells, and counter totals. Both read traces from any build.

conformance: builds with `--features sanitize` can run `sanitize`, the
dynamic style-conformance checker (DESIGN.md 7.6): it replays cells with
a shadow-memory race/atomicity collector armed and judges observed
behavior against each variant's style labels (Deterministic => no
value-changing races; Rmw/Rw => fused-atomic vs split updates;
Atomic/CudaAtomic => the issued atomic class). --mutate-drop-atomics
deliberately breaks RMW sites to prove violations are caught.

serving: `serve` exposes the measurement matrix over HTTP (DESIGN.md 7.8)
with admission control, per-request deadlines, retries, per-graph circuit
breakers, degraded fallbacks, and a crash-only journal-backed cache.
`serve --chaos` runs the CI chaos gate — synthetic multi-client traffic
with injected faults — asserts every robustness invariant, and writes
BENCH_serve.json. In chaos mode --inject-fault's index is the storm
stride: panic@3 faults every third storm request.

Requests for the same cell coalesce into one execution (single-flight)
and distinct queries merge into batched plans (--batch, --batch-window-ms;
--batch 0 disables). Connections are keep-alive and, on Linux, served
through an epoll readiness reactor. `loadgen` measures that path: an
open-loop generator (latency from intended start times, so coordinated
omission cannot hide server stalls) drives an unbatched and a batched
in-process server and writes BENCH_loadgen.json with the saturation
speedup; scripts/ci.sh gates it against results/BENCH_serve_baseline.json.

advising: `advise` productizes the paper's 5.13/5.16 payoff (DESIGN.md
7.11): it fits an interpretable predictor (nearest-neighbor over the
journal-measured sweep + refitted correlation rules for out-of-
distribution graphs) from a `--journal` sweep, prints the fitted style
guidelines, validates top-1/top-3 regret against deterministic ground-
truth sweeps on held-out generated graphs, and writes BENCH_advisor.json.
The server consumes the same model: `/run?...&style=auto` resolves to the
predicted-best variant (bit-identical to requesting it explicitly) and
`/advise` returns features + ranked prediction without executing.

exit codes: 0 all cells clean; 2 run completed with failed cells;
1 harness error.";
