//! A fixed-size, lock-free ring of POD records (seqlock per slot).
//!
//! The flight recorder (DESIGN.md §7.10) needs "the last N request
//! records, always writable, never blocking the serving path": writers
//! claim a slot with one `fetch_add` on the head and publish through a
//! per-slot version word (odd = write in progress, even = stable), so a
//! push is wait-free, allocation-free, and safe from any thread. Readers
//! are rare (a 5xx dump, a `/debug/flightrec` request); they retry slots
//! caught mid-write and skip slots that stay unstable. The payload must be
//! `Copy` — records are fixed-size structs with inline byte arrays, no
//! heap — which is what makes the racing reads recoverable: a torn read is
//! detected by the version recheck and thrown away, never dereferenced.
//!
//! A writer that laps the ring into a slot still being written (the other
//! writer is `capacity` pushes behind — pathological) drops its record
//! rather than spin: the recorder favors boundedness over completeness.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

struct Slot<T> {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// even ≥ 2 = stable.
    version: AtomicU64,
    data: UnsafeCell<T>,
}

/// Fixed-capacity lock-free ring buffer of `Copy` records.
pub struct SeqRing<T: Copy> {
    head: AtomicU64,
    slots: Box<[Slot<T>]>,
}

// Safety: slots are only mutated under the odd-version claim, readers
// validate versions around their copy, and T is plain old data.
unsafe impl<T: Copy + Send> Sync for SeqRing<T> {}
unsafe impl<T: Copy + Send> Send for SeqRing<T> {}

impl<T: Copy> SeqRing<T> {
    /// A ring of `capacity` slots, each seeded with `fill` (never exposed:
    /// unwritten slots are skipped by [`SeqRing::collect`]).
    #[must_use]
    pub fn new(capacity: usize, fill: T) -> SeqRing<T> {
        assert!(capacity > 0, "ring capacity must be positive");
        let slots = (0..capacity)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                data: UnsafeCell::new(fill),
            })
            .collect();
        SeqRing {
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records pushed over the ring's lifetime (≥ live records).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Live records currently readable.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.pushed() as usize).min(self.capacity())
    }

    /// True when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pushed() == 0
    }

    /// Pushes one record, overwriting the oldest once full. Wait-free; the
    /// record is silently dropped in the pathological lap-collision case
    /// (see module docs).
    pub fn push(&self, record: T) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[idx];
        let v = slot.version.load(Ordering::Relaxed);
        if v & 1 == 1 {
            return; // another writer is lapped into this slot mid-write
        }
        if slot
            .version
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return; // lost the claim race to a lapping writer
        }
        // claimed (odd): publish the payload, then flip to the next even
        unsafe { std::ptr::write_volatile(slot.data.get(), record) };
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Copies out every stable record, oldest slot order not guaranteed —
    /// callers sort by a key inside the record. Slots never written, or
    /// caught mid-write through all retries, are skipped. Allocates (the
    /// returned `Vec`); only dump/debug paths call this.
    #[must_use]
    pub fn collect(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for slot in self.slots.iter() {
            for _attempt in 0..64 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 {
                    break; // never written
                }
                if v1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress
                }
                let copy = unsafe { std::ptr::read_volatile(slot.data.get()) };
                fence(Ordering::Acquire);
                if slot.version.load(Ordering::Relaxed) == v1 {
                    out.push(copy);
                    break;
                }
                // version moved under us: torn copy, retry
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Rec {
        seq: u64,
        payload: [u8; 24],
    }

    fn rec(seq: u64) -> Rec {
        Rec {
            seq,
            payload: [seq as u8; 24],
        }
    }

    #[test]
    fn keeps_the_most_recent_capacity_records() {
        let ring = SeqRing::new(4, rec(0));
        assert!(ring.is_empty());
        for i in 1..=10 {
            ring.push(rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 10);
        let mut seqs: Vec<u64> = ring.collect().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
    }

    #[test]
    fn unwritten_slots_are_invisible() {
        let ring = SeqRing::new(8, rec(99));
        ring.push(rec(1));
        ring.push(rec(2));
        let got = ring.collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.seq == 1 || r.seq == 2));
    }

    #[test]
    fn concurrent_pushers_never_produce_torn_records() {
        let ring = Arc::new(SeqRing::new(16, rec(0)));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        ring.push(rec(t * 10_000 + i));
                    }
                })
            })
            .collect();
        // read concurrently: every observed record must be internally
        // consistent (payload bytes all equal to the low byte of seq)
        for _ in 0..200 {
            for r in ring.collect() {
                assert!(
                    r.payload.iter().all(|&b| b == r.seq as u8),
                    "torn record observed: {r:?}"
                );
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(ring.pushed(), 20_000);
        assert_eq!(ring.len(), 16);
    }
}
