//! Property-based tests for the style taxonomy.

use indigo_styles::{
    enumerate, Algorithm, AtomicKind, CppSchedule, CpuReduction, Determinism, Direction, Drive,
    Flow, GpuReduction, Granularity, Model, OmpSchedule, Persistence, StyleConfig, Update,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    proptest::sample::select(Algorithm::ALL.to_vec())
}

fn arb_model() -> impl Strategy<Value = Model> {
    proptest::sample::select(Model::ALL.to_vec())
}

/// An arbitrary (mostly invalid) style configuration.
fn arb_config() -> impl Strategy<Value = StyleConfig> {
    (
        arb_algorithm(),
        arb_model(),
        proptest::sample::select(Direction::ALL.to_vec()),
        proptest::sample::select(Drive::ALL.to_vec()),
        proptest::option::of(proptest::sample::select(Flow::ALL.to_vec())),
        proptest::sample::select(Update::ALL.to_vec()),
        proptest::sample::select(Determinism::ALL.to_vec()),
        (
            proptest::option::of(proptest::sample::select(Persistence::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(Granularity::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(AtomicKind::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(GpuReduction::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(CpuReduction::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(OmpSchedule::ALL.to_vec())),
            proptest::option::of(proptest::sample::select(CppSchedule::ALL.to_vec())),
        ),
    )
        .prop_map(
            |(
                algorithm,
                model,
                direction,
                drive,
                flow,
                update,
                determinism,
                (persistence, granularity, atomic, gpu_reduction, cpu_reduction, omp_schedule, cpp_schedule),
            )| StyleConfig {
                algorithm,
                model,
                direction,
                drive,
                flow,
                update,
                determinism,
                persistence,
                granularity,
                atomic,
                gpu_reduction,
                cpu_reduction,
                omp_schedule,
                cpp_schedule,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `check()` and enumeration membership agree: a config is valid if and
    /// only if the enumerator produces it.
    #[test]
    fn check_agrees_with_enumeration(cfg in arb_config()) {
        let enumerated: HashSet<StyleConfig> =
            enumerate::variants(cfg.algorithm, cfg.model).into_iter().collect();
        prop_assert_eq!(
            cfg.check().is_ok(),
            enumerated.contains(&cfg),
            "{} check={:?}",
            cfg.name(),
            cfg.check()
        );
    }

    /// Names round-trip uniquely: name equality implies config equality
    /// within the valid suite.
    #[test]
    fn names_injective_for_valid_configs(a in arb_config(), b in arb_config()) {
        if a.check().is_ok() && b.check().is_ok() && a.name() == b.name() {
            prop_assert_eq!(a, b);
        }
    }

    /// peer_key(dim) equality means the configs differ at most in `dim`.
    #[test]
    fn peer_key_erases_exactly_one_dimension(a in arb_config(), b in arb_config()) {
        for dim in StyleConfig::DIMENSIONS {
            if a.peer_key(dim) == b.peer_key(dim) {
                for other in StyleConfig::DIMENSIONS {
                    if other != dim {
                        prop_assert_eq!(
                            a.dimension_label(other),
                            b.dimension_label(other),
                            "peer_key({}) matched but {} differs",
                            dim,
                            other
                        );
                    }
                }
            }
        }
    }

    /// Every dimension label reported by a valid config parses back through
    /// the filter language and re-selects the config. (Valid configs are
    /// sampled from the enumerated suite — random configs are almost never
    /// valid.)
    #[test]
    fn labels_round_trip_through_filter(pick in 0usize..usize::MAX) {
        let suite = enumerate::full_suite();
        let cfg = suite[pick % suite.len()];
        for dim in StyleConfig::DIMENSIONS {
            if let Some(label) = cfg.dimension_label(dim) {
                let f = indigo_styles::filter::VariantFilter::parse(
                    &format!("{dim}={label}")
                ).unwrap();
                prop_assert!(f.matches(&cfg), "{dim}={label} must match {}", cfg.name());
            }
        }
    }
}
