//! Variant dispatch: one entry point that runs any of the 1098 programs.
//!
//! [`run_variant`] takes a fully-specified [`StyleConfig`], a prepared
//! [`GraphInput`], and a [`Target`], and returns the output plus the run
//! time: wall-clock for the CPU models (as in the paper) and simulated
//! device time for the GPU model. Graph preparation/upload is excluded from
//! timing, matching the paper's kernel-throughput methodology (§4.5).

use crate::cpu::{self, relax::RelaxKind, CpuExec};
use crate::gpu::{self, DeviceGraph};
use crate::{GraphInput, Output, SOURCE};
use indigo_cancel::CancelToken;
use indigo_gpusim::{Device, FaultPlan, Sim};
use indigo_styles::{Algorithm, StyleConfig};

/// Everything the fault-tolerant harness threads into one variant run:
/// a cooperative cancellation token (fired by the watchdog), a simulated-
/// cycle budget (GPU only), and an optional injected fault (GPU only; CPU
/// faults are injected at the harness layer). `Supervision::none()` is the
/// zero-overhead default every legacy entry point uses.
#[derive(Clone, Default)]
pub struct Supervision {
    /// Cancellation token polled at launch/iteration boundaries.
    pub cancel: Option<CancelToken>,
    /// Simulated-cycle cap for GPU runs.
    pub sim_cycle_budget: Option<f64>,
    /// Deterministic injected fault for GPU runs.
    pub fault: Option<FaultPlan>,
}

impl Supervision {
    /// No supervision: behaves exactly like the unsupervised entry points.
    pub fn none() -> Supervision {
        Supervision::default()
    }

    /// Supervision with just a cancellation token.
    pub fn with_cancel(token: CancelToken) -> Supervision {
        Supervision {
            cancel: Some(token),
            ..Supervision::default()
        }
    }
}

/// Where to run a variant.
pub enum Target {
    /// One of the simulated GPUs.
    Gpu(Device),
    /// A CPU model with the given worker count.
    Cpu {
        /// Worker threads for the pool / thread team.
        threads: usize,
    },
}

impl Target {
    /// CPU target helper.
    pub fn cpu(threads: usize) -> Target {
        Target::Cpu { threads }
    }

    /// GPU target helper.
    pub fn gpu(device: Device) -> Target {
        Target::Gpu(device)
    }
}

/// Simulator-side statistics for one GPU run (absent for CPU runs).
/// Read off the `Sim` at the end of the run, so they are per-cell exact
/// even when the harness executes many cells concurrently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles across all kernel launches.
    pub cycles: f64,
    /// Number of kernel launches.
    pub launches: usize,
    /// Total priced memory accesses.
    pub accesses: u64,
}

/// The outcome of one program run.
pub struct RunResult {
    /// Algorithm output (verify with [`crate::verify::check`]).
    pub output: Output,
    /// Measured time: wall-clock (CPU) or simulated seconds (GPU).
    pub secs: f64,
    /// Parallel iterations/rounds the variant took to converge.
    pub iterations: usize,
    /// Simulator statistics (GPU runs only).
    pub sim: Option<SimStats>,
}

impl RunResult {
    /// The paper's §4.5 metric: giga-edges per second.
    pub fn gigaedges_per_sec(&self, num_edges: usize) -> f64 {
        if self.secs <= 0.0 {
            return 0.0;
        }
        num_edges as f64 / self.secs / 1e9
    }
}

/// Runs `cfg` on `input` at `target`.
pub fn run_variant(cfg: &StyleConfig, input: &GraphInput, target: &Target) -> RunResult {
    run_variant_supervised(cfg, input, target, &Supervision::none())
}

/// [`run_variant`] under harness supervision: the token/budget/fault in
/// `sup` are threaded into the simulator (GPU) or the CPU pools, making the
/// run cancellable at launch/iteration boundaries.
pub fn run_variant_supervised(
    cfg: &StyleConfig,
    input: &GraphInput,
    target: &Target,
    sup: &Supervision,
) -> RunResult {
    cfg.check()
        .unwrap_or_else(|e| panic!("invalid variant {}: {e}", cfg.name()));
    match target {
        Target::Cpu { threads } => run_cpu(cfg, input, *threads, sup),
        Target::Gpu(device) => {
            let dg = DeviceGraph::upload(input);
            run_gpu_supervised(cfg, &dg, *device, 1, sup)
        }
    }
}

/// GPU path against an already-uploaded graph (lets callers amortize the
/// upload over many variants). Single-threaded simulation.
pub fn run_gpu(cfg: &StyleConfig, dg: &DeviceGraph, device: Device) -> RunResult {
    run_gpu_with(cfg, dg, device, 1)
}

/// [`run_gpu`] with `sim_workers` host threads simulating each launch that
/// carries the `deterministic_parallel` capability. Results — cycles,
/// outputs, reductions — are bit-identical for any worker count; this is
/// purely a wall-clock speedup for the measurement harness.
pub fn run_gpu_with(
    cfg: &StyleConfig,
    dg: &DeviceGraph,
    device: Device,
    sim_workers: usize,
) -> RunResult {
    run_gpu_supervised(cfg, dg, device, sim_workers, &Supervision::none())
}

/// [`run_gpu_with`] under harness supervision (see [`Supervision`]).
/// Without supervision knobs set this is identical to the plain entry
/// points — supervision never perturbs simulated cycles, only whether the
/// run is allowed to finish.
pub fn run_gpu_supervised(
    cfg: &StyleConfig,
    dg: &DeviceGraph,
    device: Device,
    sim_workers: usize,
    sup: &Supervision,
) -> RunResult {
    assert!(!cfg.model.is_cpu(), "run_gpu needs a CUDA-model variant");
    let mut sim = Sim::new(device);
    sim.set_workers(sim_workers);
    if let Some(token) = &sup.cancel {
        sim.set_cancel(token.clone());
    }
    if let Some(budget) = sup.sim_cycle_budget {
        sim.set_cycle_budget(budget);
    }
    if let Some(fault) = sup.fault {
        sim.arm_fault(fault);
    }
    let (output, iterations) = match cfg.algorithm {
        Algorithm::Bfs => {
            let (v, i) = gpu::relax::run(RelaxKind::Bfs, cfg, dg, &mut sim, SOURCE);
            (Output::Levels(v), i)
        }
        Algorithm::Sssp => {
            let (v, i) = gpu::relax::run(RelaxKind::Sssp, cfg, dg, &mut sim, SOURCE);
            (Output::Distances(v), i)
        }
        Algorithm::Cc => {
            let (v, i) = gpu::relax::run(RelaxKind::Cc, cfg, dg, &mut sim, SOURCE);
            (Output::Labels(v), i)
        }
        Algorithm::Mis => {
            let (v, i) = gpu::mis::run(cfg, dg, &mut sim);
            (Output::MisSet(v), i)
        }
        Algorithm::Pr => {
            let (v, i) = gpu::pr::run(cfg, dg, &mut sim);
            (Output::Ranks(v), i)
        }
        Algorithm::Tc => {
            let (c, i) = gpu::tc::run(cfg, dg, &mut sim);
            (Output::Triangles(c), i)
        }
    };
    RunResult {
        output,
        secs: sim.elapsed_secs(),
        iterations,
        sim: Some(SimStats {
            cycles: sim.elapsed_cycles(),
            launches: sim.launches(),
            accesses: sim.accesses(),
        }),
    }
}

fn run_cpu(cfg: &StyleConfig, input: &GraphInput, threads: usize, sup: &Supervision) -> RunResult {
    // pool spawn-up is setup, not kernel time
    let mut exec = CpuExec::new(cfg, threads);
    if let Some(token) = &sup.cancel {
        exec = exec.with_cancel(token.clone());
    }
    let start = std::time::Instant::now();
    let (output, iterations) = match cfg.algorithm {
        Algorithm::Bfs => {
            let (v, i) = cpu::relax::run(RelaxKind::Bfs, cfg, input, &exec, SOURCE);
            (Output::Levels(v), i)
        }
        Algorithm::Sssp => {
            let (v, i) = cpu::relax::run(RelaxKind::Sssp, cfg, input, &exec, SOURCE);
            (Output::Distances(v), i)
        }
        Algorithm::Cc => {
            let (v, i) = cpu::relax::run(RelaxKind::Cc, cfg, input, &exec, SOURCE);
            (Output::Labels(v), i)
        }
        Algorithm::Mis => {
            let (v, i) = cpu::mis::run(cfg, input, &exec);
            (Output::MisSet(v), i)
        }
        Algorithm::Pr => {
            let (v, i) = cpu::pr::run(cfg, input, &exec);
            (Output::Ranks(v), i)
        }
        Algorithm::Tc => {
            let (c, i) = cpu::tc::run(cfg, input, &exec);
            (Output::Triangles(c), i)
        }
    };
    RunResult {
        output,
        secs: start.elapsed().as_secs_f64(),
        iterations,
        sim: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen;
    use indigo_styles::Model;

    #[test]
    fn runs_every_algorithm_on_both_target_kinds() {
        let input = GraphInput::new(gen::gnp(30, 0.15, 2));
        for algo in Algorithm::ALL {
            for (model, target) in [
                (Model::Cpp, Target::cpu(2)),
                (Model::Cuda, Target::gpu(rtx3090())),
            ] {
                let cfg = StyleConfig::baseline(algo, model);
                let r = run_variant(&cfg, &input, &target);
                assert!(r.secs > 0.0, "{}", cfg.name());
                assert!(
                    crate::verify::check(&cfg, &input, &r.output).is_ok(),
                    "{}",
                    cfg.name()
                );
            }
        }
    }

    #[test]
    fn throughput_metric_sane() {
        let r = RunResult {
            output: Output::Triangles(1),
            secs: 2.0,
            iterations: 1,
            sim: None,
        };
        assert_eq!(r.gigaedges_per_sec(4_000_000_000), 2.0);
        let z = RunResult {
            output: Output::Triangles(1),
            secs: 0.0,
            iterations: 1,
            sim: None,
        };
        assert_eq!(z.gigaedges_per_sec(100), 0.0);
    }

    #[test]
    #[should_panic(expected = "CUDA-model")]
    fn run_gpu_rejects_cpu_variants() {
        let input = GraphInput::new(gen::gnp(10, 0.2, 1));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Omp);
        run_gpu(&cfg, &dg, rtx3090());
    }
}
