//! Cost-model ablations.
//!
//! DESIGN.md §6 calls out the calibrated constants of the GPU model; this
//! module provides controlled knock-outs so their influence on the
//! reproduced findings can be measured (the `ablation_cost_model` bench and
//! EXPERIMENTS.md record the outcomes):
//!
//! * [`no_coalescing`] — memory transactions are free, so coalesced and
//!   scattered patterns tie: kills the §2.12 cyclic-vs-blocked and
//!   edge-vs-vertex memory effects,
//! * [`no_atomic_contention`] — atomics cost a flat rate regardless of
//!   address distribution: kills the reduction-style ordering of Fig 10,
//! * [`no_latency_hiding`] — an SM runs one warp at a time
//!   (`warp_parallelism = 1`): inflates every kernel uniformly,
//! * [`free_launches`] — zero launch/block-scheduling overhead: removes the
//!   persistent-style trade-off of Fig 8 and flattens small-input runs.

use crate::device::Device;

/// Removes memory-transaction pricing entirely: loads/stores cost only the
/// issue cycle regardless of how many segments a warp touches, so
/// coalesced and scattered patterns tie. (The knockout for "does finding X
/// depend on the coalescing model?")
pub fn no_coalescing(mut d: Device) -> Device {
    d.cost.mem_segment = 0.0;
    d.name = "ablate-no-coalescing";
    d
}

/// Atomics cost a flat rate independent of how many distinct addresses the
/// warp touches.
pub fn no_atomic_contention(mut d: Device) -> Device {
    d.cost.atomic_per_addr = 0.0;
    d.cost.atomic_aggregate = 0.0;
    d.cost.shared_serial = 0.0;
    d.cost.atomic_issue *= 8.0; // flat, address-independent
    d.name = "ablate-no-atomic-contention";
    d
}

/// The SM executes one warp at a time — no latency hiding.
pub fn no_latency_hiding(mut d: Device) -> Device {
    d.warp_parallelism = 1.0;
    d.name = "ablate-no-latency-hiding";
    d
}

/// Kernel launches and block scheduling are free.
pub fn free_launches(mut d: Device) -> Device {
    d.cost.launch = 0.0;
    d.cost.block_sched = 0.0;
    d.name = "ablate-free-launches";
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::titan_v;
    use crate::launch::{Assign, Sim};
    use crate::GpuBuf;

    /// Under `no_coalescing`, coalesced and scattered loads cost the same —
    /// the ablation really removes the effect the base model prices.
    #[test]
    fn no_coalescing_removes_the_gap() {
        let run = |dev, stride: usize| {
            let n = 1 << 20; // large enough that work dominates the launch cost
            let data = GpuBuf::new(n, 0);
            let mut s = Sim::new(dev);
            s.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.ld(&data, (i * stride) % n);
            });
            s.elapsed_cycles()
        };
        let base_gap = run(titan_v(), 64) / run(titan_v(), 1);
        let ablated_gap = run(no_coalescing(titan_v()), 64) / run(no_coalescing(titan_v()), 1);
        assert!(
            base_gap > 3.0,
            "base model must price coalescing: {base_gap}"
        );
        assert!(ablated_gap < 1.1, "ablation must flatten it: {ablated_gap}");
    }

    /// Under `no_atomic_contention`, scattered and same-address atomics tie.
    #[test]
    fn no_atomic_contention_flattens_addresses() {
        let run = |dev, same: bool| {
            let n = 1 << 14;
            let data = GpuBuf::new(n, 0).with_kind(crate::BufKind::Atomic);
            let mut s = Sim::new(dev);
            s.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.atomic_add(&data, if same { 0 } else { i }, 1);
            });
            s.elapsed_cycles()
        };
        let ablated = no_atomic_contention(titan_v());
        let gap = run(ablated, false) / run(ablated, true);
        assert!((0.9..1.1).contains(&gap), "ablated gap {gap}");
    }

    /// `no_latency_hiding` slows everything down, monotonically.
    #[test]
    fn no_latency_hiding_slows_down() {
        let run = |dev| {
            let n = 1 << 16;
            let data = GpuBuf::new(n, 0);
            let mut s = Sim::new(dev);
            s.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
                ctx.ld(&data, i);
            });
            s.elapsed_cycles()
        };
        assert!(run(no_latency_hiding(titan_v())) > run(titan_v()));
    }

    /// `free_launches` makes a many-launch workload cheaper but leaves a
    /// single big kernel nearly unchanged.
    #[test]
    fn free_launches_amortize_iteration_loops() {
        let many = |dev| {
            let data = GpuBuf::new(256, 0);
            let mut s = Sim::new(dev);
            for _ in 0..50 {
                s.launch(256, Assign::ThreadPerItem, false, |ctx, i| {
                    ctx.ld(&data, i);
                });
            }
            s.elapsed_cycles()
        };
        let base = many(titan_v());
        let free = many(free_launches(titan_v()));
        assert!(
            free < base / 3.0,
            "50 launches must get much cheaper: {free} vs {base}"
        );
    }
}
