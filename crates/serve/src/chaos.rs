//! Chaos harness: synthetic multi-client traffic against an in-process
//! server, with injected faults, and hard invariants (DESIGN.md §7.8).
//!
//! Six phases, each exercising one leg of the robustness pipeline:
//!
//! 1. **baseline** — clean mixed traffic, repeated queries → cache hits;
//! 2. **storm** — every Nth request carries a transient injected fault;
//! 3. **breaker** — one shard is failed until its breaker trips, degraded
//!    answers are observed, then recovery via a half-open probe;
//! 4. **saturation** — stalled requests pin the worker pool while a burst
//!    overflows the admission queue → load shedding;
//! 5. **throughput** — cached-query requests per second, then the style
//!    advisor: `/advise` must name a variant and `style=auto` on `/run`
//!    must answer bit-identically to requesting that variant explicitly;
//! 6. **restart** — the server is torn down and restarted on the same
//!    journal; previously served cells must come back bit-exact.
//!
//! The gate: the process never dies, every request gets a structured
//! answer (or a structured shed), client-measured p99 stays within the
//! deadline plus a fixed overhead allowance, and breaker trips/recoveries
//! are observable in the stats.

use crate::client::{self, ClientResponse};
use crate::config::ServerConfig;
use crate::json;
use crate::server::Server;
use indigo_harness::CellFaultKind;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which injected fault the storm phase uses, striking every `every`-th
/// request (the breaker phase always uses `panic` so its invariants stay
/// deterministic).
#[derive(Clone, Copy, Debug)]
pub struct ChaosFault {
    /// Fault kind for storm-phase requests.
    pub kind: CellFaultKind,
    /// Stride: request indices `every, 2·every, …` carry the fault.
    pub every: usize,
}

/// Chaos-run tuning.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Concurrent synthetic clients in baseline/storm phases.
    pub clients: usize,
    /// Requests per phase (baseline and storm).
    pub requests: usize,
    /// Storm-phase fault; `None` skips the storm phase.
    pub fault: Option<ChaosFault>,
    /// Journal path (required for the restart phase; `None` creates a
    /// scratch journal under the system temp dir).
    pub journal: Option<PathBuf>,
    /// Per-request deadline for the synthetic traffic.
    pub deadline: Duration,
    /// Where the server dumps `FLIGHT_*.jsonl` on 5xx responses (`None`
    /// disables dumping; the in-memory ring stays live).
    pub flightrec_dir: Option<PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            clients: 4,
            requests: 32,
            fault: Some(ChaosFault {
                kind: CellFaultKind::Panic,
                every: 3,
            }),
            journal: None,
            deadline: Duration::from_secs(2),
            flightrec_dir: None,
        }
    }
}

/// What a chaos run produced; `to_json` is the `BENCH_serve.json` schema.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Requests issued by the harness (all phases).
    pub requests: u64,
    /// 2xx responses (degraded included).
    pub ok: u64,
    /// Responses answered from the cache.
    pub cached: u64,
    /// Degraded (breaker-open) responses.
    pub degraded: u64,
    /// 429 sheds.
    pub shed: u64,
    /// 504 deadline exhaustions.
    pub timed_out: u64,
    /// 5xx structured failures.
    pub failed: u64,
    /// Server-side retry count.
    pub retries: u64,
    /// Server-side breaker trips.
    pub breaker_trips: u64,
    /// Server-side breaker recoveries.
    pub breaker_recoveries: u64,
    /// Cells recovered from the journal after the restart phase.
    pub recovered_cells: u64,
    /// Client-measured latency percentiles, milliseconds.
    pub latency_ms: LatencySummary,
    /// Cached-query throughput (phase 5).
    pub saturation_rps: f64,
    /// Samples in the validated `/metrics` exposition (phase 5b).
    pub metrics_series: u64,
    /// Style-advisor answers (`/advise` queries + `style=auto` runs).
    pub advised: u64,
    /// Requests the flight recorder retained over the run.
    pub flight_pushed: u64,
    /// `FLIGHT_*.jsonl` dumps the server wrote (5xx-triggered).
    pub flight_dumps: u64,
    /// Whether the `telemetry` feature was compiled in.
    pub telemetry_enabled: bool,
    /// Echo of the run configuration.
    pub config: String,
}

/// Client-side latency percentiles (exact, from the sorted sample vec).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst request.
    pub max: f64,
}

impl ChaosReport {
    /// Renders the report as the `BENCH_serve.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"bench-serve-v1\",\n  \"requests\": {},\n  \"ok\": {},\n  \
             \"cached\": {},\n  \"degraded\": {},\n  \"shed\": {},\n  \"timed_out\": {},\n  \
             \"failed\": {},\n  \"retries\": {},\n  \"breaker_trips\": {},\n  \
             \"breaker_recoveries\": {},\n  \"recovered_cells\": {},\n  \
             \"latency_ms\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n  \
             \"saturation_rps\": {},\n  \"metrics_series\": {},\n  \"advised\": {},\n  \
             \"flight_pushed\": {},\n  \
             \"flight_dumps\": {},\n  \"telemetry_enabled\": {},\n  \"config\": {}\n}}\n",
            self.requests,
            self.ok,
            self.cached,
            self.degraded,
            self.shed,
            self.timed_out,
            self.failed,
            self.retries,
            self.breaker_trips,
            self.breaker_recoveries,
            self.recovered_cells,
            json::num(self.latency_ms.p50),
            json::num(self.latency_ms.p90),
            json::num(self.latency_ms.p99),
            json::num(self.latency_ms.max),
            json::num(self.saturation_rps),
            self.metrics_series,
            self.advised,
            self.flight_pushed,
            self.flight_dumps,
            self.telemetry_enabled,
            json::str_lit(&self.config),
        )
    }
}

/// Clean traffic mix: (algo, graph) pairs cycled by request index. All
/// tiny-scale so a chaos run stays CI-sized.
const MIX: &[(&str, &str)] = &[
    ("tc", "2d-grid"),
    ("bfs", "copapers"),
    ("cc", "rmat"),
    ("tc", "copapers"),
    ("bfs", "2d-grid"),
];

/// Graph reserved for the breaker phase (kept out of [`MIX`] so baseline
/// and storm traffic can't pollute its breaker state).
const BREAKER_GRAPH: &str = "road";
/// Graph reserved for the saturation phase's worker-pinning stalls.
const PIN_GRAPH: &str = "soc-net";

/// Shared per-request bookkeeping across client threads.
#[derive(Default)]
struct Recorder {
    latencies_us: Mutex<Vec<u64>>,
    transport_errors: AtomicUsize,
    unstructured: AtomicUsize,
    missing_echo: AtomicUsize,
    cells: Mutex<Vec<(String, String)>>, // (fp, geps_bits) pairs served
}

impl Recorder {
    fn observe(&self, r: &std::io::Result<ClientResponse>, started: Instant) {
        match r {
            Ok(resp) => {
                self.latencies_us
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
                if !resp.body.contains("\"status\"") {
                    self.unstructured.fetch_add(1, Ordering::Relaxed);
                }
                if resp.request_id.is_none() {
                    self.missing_echo.fetch_add(1, Ordering::Relaxed);
                }
                let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
                cells.extend(extract_cells(&resp.body));
            }
            Err(_) => {
                self.transport_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// First integer value of `"key":` in a flat JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = body.find(&pat)? + pat.len();
    let rest = body[i..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First string value of `"key":"…"` in a flat JSON body.
fn json_str(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let i = body.find(&pat)? + pat.len();
    let rest = &body[i..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Value of the un-labeled Prometheus sample named exactly `name`.
fn prom_u64(text: &str, name: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v.trim().parse().ok();
            }
        }
    }
    None
}

/// Pulls `(fp, geps_bits)` pairs out of a success body.
fn extract_cells(body: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(i) = rest.find("\"fp\":\"") {
        let fp_start = &rest[i + 6..];
        let Some(fp_end) = fp_start.find('"') else {
            break;
        };
        let fp = fp_start[..fp_end].to_string();
        rest = &fp_start[fp_end..];
        let Some(j) = rest.find("\"geps_bits\":\"") else {
            continue;
        };
        let gb_start = &rest[j + 13..];
        let Some(gb_end) = gb_start.find('"') else {
            break;
        };
        out.push((fp, gb_start[..gb_end].to_string()));
        rest = &gb_start[gb_end..];
    }
    out
}

fn clean_target(i: usize, deadline_ms: u64) -> String {
    let (algo, graph) = MIX[i % MIX.len()];
    format!("/run?algo={algo}&graph={graph}&scale=tiny&deadline_ms={deadline_ms}")
}

/// Fans `n` requests across `clients` threads, each holding one keep-alive
/// connection; `target_of(i)` names each request.
fn fan_out<F>(addr: SocketAddr, rec: &Recorder, clients: usize, n: usize, target_of: F)
where
    F: Fn(usize) -> String + Sync,
{
    let next = AtomicUsize::new(0);
    let timeout = Duration::from_secs(30);
    std::thread::scope(|s| {
        for _ in 0..clients.max(1) {
            s.spawn(|| {
                let mut conn = client::Client::new(addr, timeout);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let started = Instant::now();
                    let r = conn.get(&target_of(i));
                    rec.observe(&r, started);
                }
            });
        }
    });
}

/// Runs the full chaos scenario. `Err` is a violated invariant — the CI
/// gate fails on it.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let scratch;
    let journal = match &opts.journal {
        Some(p) => p.clone(),
        None => {
            scratch = std::env::temp_dir()
                .join(format!("indigo-serve-chaos-{}.jsonl", std::process::id()));
            let _ = std::fs::remove_file(&scratch);
            scratch.clone()
        }
    };
    let deadline_ms = opts.deadline.as_millis() as u64;
    let mut cfg = ServerConfig {
        journal: Some(journal.clone()),
        allow_fault_param: true,
        workers: 2,
        queue: 4,
        default_deadline: opts.deadline,
        flightrec_dir: opts.flightrec_dir.clone(),
        ..ServerConfig::default()
    };
    cfg.breaker.threshold = 3;
    cfg.breaker.cooldown = Duration::from_millis(300);
    let timeout = Duration::from_secs(30);

    let rec = Recorder::default();
    let mut server = Server::start(cfg.clone()).map_err(|e| format!("server start: {e}"))?;
    let addr = server.addr();

    // ---- phase 1: baseline (second half repeats the first → cache hits)
    fan_out(addr, &rec, opts.clients, opts.requests, |i| {
        clean_target(i % (opts.requests / 2).max(1), deadline_ms)
    });

    // ---- phase 2: storm
    if let Some(fault) = opts.fault {
        let every = fault.every.max(1);
        fan_out(addr, &rec, opts.clients, opts.requests, |i| {
            let mut t = clean_target(i, deadline_ms);
            if i % every == every - 1 {
                t.push_str(&format!("&fault={}&fault_attempts=1", fault.kind.label()));
            }
            t
        });
    }

    // ---- phase 3: breaker trip → degraded → recovery (sequential, on a
    // shard no other phase touches)
    let trip = format!(
        "/run?algo=tc&graph={BREAKER_GRAPH}&scale=tiny&deadline_ms={deadline_ms}\
         &fault=panic&fault_attempts=9"
    );
    for _ in 0..cfg.breaker.threshold {
        let started = Instant::now();
        let r = client::get(addr, &trip, timeout);
        rec.observe(&r, started);
        let resp = r.map_err(|e| format!("breaker phase transport error: {e}"))?;
        if resp.status != 500 {
            return Err(format!(
                "expected 500 while tripping the breaker, got {} ({})",
                resp.status, resp.body
            ));
        }
    }
    let probe_target =
        format!("/run?algo=tc&graph={BREAKER_GRAPH}&scale=tiny&deadline_ms={deadline_ms}");
    let started = Instant::now();
    let r = client::get(addr, &probe_target, timeout);
    rec.observe(&r, started);
    let resp = r.map_err(|e| format!("breaker phase transport error: {e}"))?;
    if resp.status != 200 || !resp.body.contains("\"degraded\":true") {
        return Err(format!(
            "expected a degraded 200 from the open breaker, got {} ({})",
            resp.status, resp.body
        ));
    }
    if resp.retry_after.is_none() {
        return Err("degraded response is missing Retry-After".into());
    }
    // wait out the cooldown, then poll (bounded) until the half-open probe
    // recovers the shard
    std::thread::sleep(cfg.breaker.cooldown + Duration::from_millis(50));
    let mut recovered = false;
    for _ in 0..20 {
        let started = Instant::now();
        let r = client::get(addr, &probe_target, timeout);
        rec.observe(&r, started);
        let resp = r.map_err(|e| format!("breaker recovery transport error: {e}"))?;
        if resp.status == 200 && !resp.body.contains("\"degraded\":true") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !recovered {
        return Err("breaker never recovered after cooldown".into());
    }

    // ---- phase 4: saturation — pin both workers with stalls, then burst
    let pin = format!(
        "/run?algo=cc&graph={PIN_GRAPH}&scale=tiny&deadline_ms=700\
         &fault=stall&fault_attempts=9"
    );
    std::thread::scope(|s| {
        let rec = &rec;
        let pin = &pin;
        let mut pinners = Vec::new();
        for _ in 0..cfg.workers {
            pinners.push(s.spawn(move || {
                let started = Instant::now();
                let r = client::get(addr, pin, timeout);
                rec.observe(&r, started);
            }));
        }
        std::thread::sleep(Duration::from_millis(200)); // let workers pop them
        let burst = cfg.queue + 8;
        let mut clients_v = Vec::new();
        for _ in 0..burst {
            clients_v.push(s.spawn(move || {
                let started = Instant::now();
                let r = client::get(addr, &clean_target(0, deadline_ms), timeout);
                rec.observe(&r, started);
            }));
        }
        for h in clients_v.into_iter().chain(pinners) {
            let _ = h.join();
        }
    });

    // ---- phase 5: throughput over cached queries
    let tput_n = 50usize;
    let tput_target = clean_target(0, deadline_ms);
    let tput_started = Instant::now();
    let mut tput_conn = client::Client::new(addr, timeout);
    for _ in 0..tput_n {
        let started = Instant::now();
        let r = tput_conn.get(&tput_target);
        rec.observe(&r, started);
    }
    drop(tput_conn);
    let tput_secs = tput_started.elapsed().as_secs_f64().max(1e-9);
    let saturation_rps = tput_n as f64 / tput_secs;

    // ---- phase 5a: style advisor. `/advise` predicts from the cells the
    // run has cached so far; `style=auto` on `/run` must then serve exactly
    // what an explicit `variant=` request for the advised style serves —
    // tc/2d-grid is fully cached from phase 1, so both answers are pure
    // cache hits and the bodies must agree byte-for-byte once the
    // per-request observability splice (`,"rid":…`) is stripped.
    let advise_resp = client::get(addr, "/advise?algo=tc&graph=2d-grid&scale=tiny", timeout)
        .map_err(|e| format!("/advise transport error: {e}"))?;
    if advise_resp.status != 200 || !advise_resp.body.contains("\"status\":\"ok\"") {
        return Err(format!(
            "/advise returned {} ({})",
            advise_resp.status, advise_resp.body
        ));
    }
    let style = json_str(&advise_resp.body, "style")
        .ok_or_else(|| format!("/advise body has no \"style\": {}", advise_resp.body))?;
    let advised_pair = [
        format!("/run?algo=tc&graph=2d-grid&scale=tiny&style=auto&deadline_ms={deadline_ms}"),
        format!("/run?algo=tc&graph=2d-grid&scale=tiny&variant={style}&deadline_ms={deadline_ms}"),
    ]
    .map(|target| -> Result<String, String> {
        let started = Instant::now();
        let r = client::get(addr, &target, timeout);
        rec.observe(&r, started);
        let resp = r.map_err(|e| format!("{target}: transport error: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{target}: status {} ({})", resp.status, resp.body));
        }
        Ok(resp.body)
    });
    let [auto_body, explicit_body] = advised_pair;
    let (auto_body, explicit_body) = (auto_body?, explicit_body?);
    if !auto_body.contains(&format!("\"variant\":\"{style}\"")) {
        return Err(format!(
            "style=auto body does not echo the advised variant {style}: {auto_body}"
        ));
    }
    let strip = |b: &str| b.split(",\"rid\":").next().unwrap_or(b).to_string();
    if strip(&auto_body) != strip(&explicit_body) {
        return Err(format!(
            "style=auto body diverges from explicit variant {style}:\n{auto_body}\n{explicit_body}"
        ));
    }

    // ---- phase 5b: /metrics exposition agrees with /stats. The server is
    // quiet now, and the scrapes themselves only bump requests/ok, so the
    // cross-checked counters cannot move between the two reads.
    let stats_resp =
        client::get(addr, "/stats", timeout).map_err(|e| format!("/stats scrape failed: {e}"))?;
    let metrics_resp = client::get(addr, "/metrics", timeout)
        .map_err(|e| format!("/metrics scrape failed: {e}"))?;
    if metrics_resp.status != 200 {
        return Err(format!("/metrics returned {}", metrics_resp.status));
    }
    let metrics_series = crate::metrics::validate_exposition(&metrics_resp.body)
        .map_err(|e| format!("/metrics exposition invalid: {e}"))? as u64;
    for key in ["shed", "cache_hits", "breaker_trips", "advised"] {
        let from_stats = json_u64(&stats_resp.body, key)
            .ok_or_else(|| format!("/stats body is missing \"{key}\""))?;
        let name = format!("indigo_serve_{key}_total");
        let from_metrics = prom_u64(&metrics_resp.body, &name)
            .ok_or_else(|| format!("/metrics exposition is missing {name}"))?;
        if from_stats != from_metrics {
            return Err(format!(
                "counter drift: /stats {key}={from_stats} but /metrics {name}={from_metrics}"
            ));
        }
    }
    let flightrec_resp = client::get(addr, "/debug/flightrec", timeout)
        .map_err(|e| format!("/debug/flightrec scrape failed: {e}"))?;
    if flightrec_resp.status != 200 || !flightrec_resp.body.contains("\"records\":") {
        return Err(format!(
            "/debug/flightrec returned {} without a records array",
            flightrec_resp.status
        ));
    }
    let flight_pushed = json_u64(&flightrec_resp.body, "pushed").unwrap_or(0);
    let flight_dumps = json_u64(&flightrec_resp.body, "dumps_written").unwrap_or(0);

    // ---- collect server stats, then tear down for the restart phase
    let health = client::get(addr, "/health", timeout)
        .map_err(|e| format!("final health check failed: {e}"))?;
    if health.status != 200 {
        return Err(format!("final health check returned {}", health.status));
    }
    let snap = server.stats();
    server.shutdown();
    drop(server);

    // ---- phase 6: crash-only restart — same journal, bit-exact replay
    let server2 = Server::start(cfg).map_err(|e| format!("restart failed: {e}"))?;
    let addr2 = server2.addr();
    if server2.recovered_cells() == 0 {
        return Err("restart recovered 0 cells from the journal".into());
    }
    let mut seen = std::collections::HashMap::new();
    {
        let cells = rec.cells.lock().unwrap_or_else(|e| e.into_inner());
        for (fp, bits) in cells.iter() {
            seen.entry(fp.clone()).or_insert_with(|| bits.clone());
        }
    }
    if seen.is_empty() {
        return Err("no served cells recorded — nothing to verify after restart".into());
    }
    for (fp, bits) in seen.iter().take(10) {
        let r = client::get(addr2, &format!("/cell?fp={fp}"), timeout)
            .map_err(|e| format!("restart /cell transport error: {e}"))?;
        if r.status != 200 {
            return Err(format!(
                "cell {fp} lost across restart (status {})",
                r.status
            ));
        }
        if !r.body.contains(&format!("\"geps_bits\":\"{bits}\"")) {
            return Err(format!("cell {fp} changed bits across restart: {}", r.body));
        }
    }
    let recovered_cells = server2.recovered_cells() as u64;
    drop(server2);
    if opts.journal.is_none() {
        let _ = std::fs::remove_file(&journal);
        let _ = std::fs::remove_file({
            let mut l = journal.clone().into_os_string();
            l.push(".lock");
            PathBuf::from(l)
        });
    }

    // ---- invariants over the whole run
    let transport_errors = rec.transport_errors.load(Ordering::Relaxed);
    if transport_errors != 0 {
        return Err(format!(
            "{transport_errors} request(s) died at the transport layer — \
             every request must be answered or shed"
        ));
    }
    let unstructured = rec.unstructured.load(Ordering::Relaxed);
    if unstructured != 0 {
        return Err(format!(
            "{unstructured} response(s) lacked a structured status"
        ));
    }
    let missing_echo = rec.missing_echo.load(Ordering::Relaxed);
    if missing_echo != 0 {
        return Err(format!(
            "{missing_echo} response(s) lacked an X-Request-Id echo"
        ));
    }
    if flight_pushed == 0 {
        return Err("flight recorder retained no records over the run".into());
    }
    if let Some(dir) = &opts.flightrec_dir {
        if snap.failed > 0 || snap.timeouts > 0 {
            if flight_dumps == 0 {
                return Err(format!(
                    "{} failure(s) and {} timeout(s) produced no flight-recorder dump",
                    snap.failed, snap.timeouts
                ));
            }
            let on_disk = std::fs::read_dir(dir)
                .map_err(|e| format!("flightrec dir {}: {e}", dir.display()))?
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy();
                    n.starts_with("FLIGHT_") && n.ends_with(".jsonl")
                })
                .count();
            if on_disk == 0 {
                return Err(format!(
                    "flight recorder reported {flight_dumps} dump(s) but no \
                     FLIGHT_*.jsonl exists in {}",
                    dir.display()
                ));
            }
        }
    }
    let mut lat = rec
        .latencies_us
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * lat.len() as f64).ceil().max(1.0) as usize;
        lat[rank.min(lat.len()) - 1] as f64 / 1_000.0
    };
    let latency_ms = LatencySummary {
        p50: pct(50.0),
        p90: pct(90.0),
        p99: pct(99.0),
        max: lat.last().copied().unwrap_or(0) as f64 / 1_000.0,
    };
    // p99 within the deadline plus a fixed allowance for connection setup,
    // queue admission, and response serialization
    let allowance_ms = 1_000.0;
    if latency_ms.p99 > deadline_ms as f64 + allowance_ms {
        return Err(format!(
            "p99 latency {:.1} ms exceeds deadline {deadline_ms} ms + {allowance_ms} ms allowance",
            latency_ms.p99
        ));
    }
    if snap.breaker_trips == 0 || snap.breaker_recoveries == 0 {
        return Err(format!(
            "breaker lifecycle not observed (trips {}, recoveries {})",
            snap.breaker_trips, snap.breaker_recoveries
        ));
    }
    if snap.shed == 0 {
        return Err("saturation produced no load shedding".into());
    }
    if snap.advised < 2 {
        return Err(format!(
            "advise phase should have counted one /advise and one style=auto \
             resolution, saw {}",
            snap.advised
        ));
    }
    if opts.fault.is_some() && snap.retries == 0 {
        return Err("fault storm produced no retries".into());
    }

    Ok(ChaosReport {
        requests: snap.requests,
        ok: snap.ok,
        cached: snap.cache_hits,
        degraded: snap.degraded,
        shed: snap.shed,
        timed_out: snap.timeouts,
        failed: snap.failed,
        retries: snap.retries,
        breaker_trips: snap.breaker_trips,
        breaker_recoveries: snap.breaker_recoveries,
        recovered_cells,
        latency_ms,
        saturation_rps,
        metrics_series,
        advised: snap.advised,
        flight_pushed,
        flight_dumps,
        telemetry_enabled: indigo_obs::enabled(),
        config: format!(
            "clients={} requests={} fault={} deadline_ms={deadline_ms} workers={} queue={}",
            opts.clients,
            opts.requests,
            opts.fault
                .map(|f| format!("{}@{}", f.kind.label(), f.every))
                .unwrap_or_else(|| "none".into()),
            2,
            4
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_cells_pairs_fp_with_bits() {
        let body =
            r#"{"cells":[{"fp":"00ab","geps_bits":"11cd"},{"fp":"22ef","geps_bits":"33aa"}]}"#;
        assert_eq!(
            extract_cells(body),
            vec![
                ("00ab".into(), "11cd".into()),
                ("22ef".into(), "33aa".into())
            ]
        );
        assert!(extract_cells("{\"status\":\"ok\"}").is_empty());
    }

    #[test]
    fn report_json_carries_the_schema_marker() {
        let r = ChaosReport::default();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"bench-serve-v1\""));
        assert!(j.contains("\"breaker_trips\""));
        assert!(j.contains("\"latency_ms\""));
    }
}
