//! Edge-accumulating graph builder.
//!
//! All generators and loaders funnel through [`GraphBuilder`]: it collects
//! undirected edges, drops self-loops, deduplicates, symmetrizes (every
//! undirected edge becomes two directed edges, per paper §4.2), sorts each
//! adjacency list ascending, and emits a validated [`Csr`].

use crate::{Csr, NodeId, Weight};

/// Accumulates undirected edges and finalizes them into a [`Csr`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Undirected edges, stored once in arbitrary endpoint order.
    edges: Vec<(NodeId, NodeId)>,
    weighted: bool,
    weights: Vec<Weight>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `num_nodes` vertices (ids `0..n`).
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes <= NodeId::MAX as usize,
            "node count exceeds u32 id space"
        );
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            weighted: false,
            weights: Vec::new(),
        }
    }

    /// Starts a builder that records a weight per undirected edge.
    pub fn new_weighted(num_nodes: usize) -> Self {
        let mut b = Self::new(num_nodes);
        b.weighted = true;
        b
    }

    /// Number of vertices the builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges added so far (before dedup).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self-loops are silently dropped (the paper's
    /// inputs contain none); duplicates are removed at [`Self::build`] time.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            !self.weighted,
            "weighted builder requires add_weighted_edge"
        );
        self.push(a, b);
    }

    /// Adds an undirected weighted edge. If the same edge is added twice the
    /// weight of the first occurrence (after normalization ordering) wins.
    pub fn add_weighted_edge(&mut self, a: NodeId, b: NodeId, w: Weight) {
        assert!(self.weighted, "unweighted builder; use add_edge");
        let before = self.edges.len();
        self.push(a, b);
        if self.edges.len() > before {
            self.weights.push(w);
        }
    }

    fn push(&mut self, a: NodeId, b: NodeId) {
        assert!(
            (a as usize) < self.num_nodes && (b as usize) < self.num_nodes,
            "edge endpoint out of range"
        );
        if a == b {
            return;
        }
        // normalize so dedup treats (a,b) and (b,a) as the same edge
        self.edges.push(if a < b { (a, b) } else { (b, a) });
    }

    /// Finalizes into a CSR: dedup, symmetrize, sort adjacencies.
    pub fn build(self, name: impl Into<String>) -> Csr {
        let n = self.num_nodes;
        // sort undirected edges (keeping weights parallel) and dedup
        let mut order: Vec<usize> = (0..self.edges.len()).collect();
        order.sort_unstable_by_key(|&i| self.edges[i]);
        let mut uniq: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.edges.len());
        let mut uniq_w: Vec<Weight> = Vec::new();
        for &i in &order {
            let e = self.edges[i];
            if uniq.last() == Some(&e) {
                continue;
            }
            uniq.push(e);
            if self.weighted {
                uniq_w.push(self.weights[i]);
            }
        }

        // counting pass for the symmetrized degree of every vertex
        let mut deg = vec![0usize; n];
        for &(a, b) in &uniq {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut row_start = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        row_start.push(0);
        for d in &deg {
            acc += d;
            row_start.push(acc);
        }

        // scatter pass
        let mut cursor = row_start[..n].to_vec();
        let mut nbr_list = vec![0 as NodeId; acc];
        let mut weight = if self.weighted {
            vec![0 as Weight; acc]
        } else {
            Vec::new()
        };
        for (k, &(a, b)) in uniq.iter().enumerate() {
            let (ia, ib) = (cursor[a as usize], cursor[b as usize]);
            nbr_list[ia] = b;
            nbr_list[ib] = a;
            if self.weighted {
                weight[ia] = uniq_w[k];
                weight[ib] = uniq_w[k];
            }
            cursor[a as usize] += 1;
            cursor[b as usize] += 1;
        }

        // each adjacency list must be sorted ascending (TC relies on it);
        // sort weights along with neighbors
        for v in 0..n {
            let r = row_start[v]..row_start[v + 1];
            if self.weighted {
                let mut pairs: Vec<(NodeId, Weight)> = nbr_list[r.clone()]
                    .iter()
                    .copied()
                    .zip(weight[r.clone()].iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|p| p.0);
                for (off, (u, w)) in pairs.into_iter().enumerate() {
                    nbr_list[r.start + off] = u;
                    weight[r.start + off] = w;
                }
            } else {
                nbr_list[r].sort_unstable();
            }
        }

        Csr::from_raw(row_start, nbr_list, weight, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_symmetrize() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in reverse order
        b.add_edge(0, 1); // exact duplicate
        b.add_edge(2, 3);
        b.add_edge(1, 1); // self loop, dropped
        let g = b.build("t");
        assert_eq!(g.num_edges(), 4); // two undirected edges -> 4 directed
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert!(g.is_symmetric());
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new(5);
        for u in [4, 2, 3, 1] {
            b.add_edge(0, u);
        }
        let g = b.build("star");
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn weights_follow_neighbors() {
        let mut b = GraphBuilder::new_weighted(3);
        b.add_weighted_edge(0, 2, 20);
        b.add_weighted_edge(0, 1, 10);
        let g = b.build("w");
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_weights(0), &[10, 20]);
        assert_eq!(g.neighbor_weights(2), &[20]);
    }

    #[test]
    fn duplicate_weighted_edge_keeps_one() {
        let mut b = GraphBuilder::new_weighted(2);
        b.add_weighted_edge(0, 1, 7);
        b.add_weighted_edge(1, 0, 9);
        let g = b.build("dupw");
        assert_eq!(g.num_edges(), 2);
        // both directions carry the same surviving weight
        assert_eq!(g.neighbor_weights(0), g.neighbor_weights(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let b = GraphBuilder::new(10);
        let g = b.build("iso");
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(9), 0);
    }
}
