//! # indigo-bench
//!
//! Criterion benchmarks, one target per table/figure of the paper (see
//! DESIGN.md §5 for the full index). Two measurement styles:
//!
//! * CPU-model benches measure wall-clock directly;
//! * GPU-model benches feed the simulator's *simulated* kernel time into
//!   Criterion through `iter_custom`, so `cargo bench` reports the same
//!   quantity the paper's GPU figures plot (throughput shape, not host
//!   overhead of running the simulation).
//!
//! Benchmarks run at `Scale::Tiny` by default so `cargo bench` terminates
//! quickly; set `INDIGO_BENCH_SCALE=small|default` for larger instances.

use criterion::Criterion;
use indigo_core::{run_gpu, run_variant, GraphInput, Target};
use indigo_gpusim::Device;
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph};
use indigo_styles::StyleConfig;
use std::time::Duration;

/// Benchmark instance scale (`INDIGO_BENCH_SCALE` env override).
pub fn bench_scale() -> Scale {
    match std::env::var("INDIGO_BENCH_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        Ok("default") => Scale::Default,
        Ok("large") => Scale::Large,
        _ => Scale::Tiny,
    }
}

/// Criterion tuned for suite-scale runs: small sample count, short warmup.
pub fn criterion() -> Criterion {
    Criterion::default()
        .without_plots() // simulated durations are exact; plot ranges collapse
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}

/// Prepares one suite input (cached per call site by the caller).
pub fn input(which: SuiteGraph) -> GraphInput {
    GraphInput::new(suite_graph(which, bench_scale()))
}

/// Registers a CPU-model variant as a wall-clock benchmark.
pub fn bench_cpu_variant(
    c: &mut Criterion,
    group: &str,
    name: &str,
    cfg: &StyleConfig,
    input: &GraphInput,
    threads: usize,
) {
    let mut g = c.benchmark_group(group);
    g.bench_function(name, |b| {
        b.iter(|| run_variant(cfg, input, &Target::cpu(threads)).secs)
    });
    g.finish();
}

/// Registers a GPU-model variant: Criterion records the *simulated* kernel
/// duration per iteration via `iter_custom`.
pub fn bench_gpu_variant(
    c: &mut Criterion,
    group: &str,
    name: &str,
    cfg: &StyleConfig,
    input: &GraphInput,
    device: Device,
) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let mut g = c.benchmark_group(group);
    g.bench_function(name, |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let r = run_gpu(cfg, &dg, device);
                total += Duration::from_secs_f64(r.secs.max(1e-12));
            }
            total
        })
    });
    g.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_tiny() {
        // (environment-dependent overrides are tested manually)
        if std::env::var("INDIGO_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), Scale::Tiny);
        }
    }

    #[test]
    fn input_prepares_weighted_graphs() {
        let i = input(SuiteGraph::RoadMap);
        assert!(i.csr.is_weighted());
    }
}
