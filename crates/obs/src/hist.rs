//! Pre-registered, allocation-free log₂ histograms.
//!
//! Same registration model as [`crate::counter`]: every histogram is a
//! [`Hist`] variant indexing a static bucket array, so recording is one
//! relaxed `fetch_add` with no allocation. Buckets are powers of two:
//! bucket 0 holds the value 0, bucket `k ≥ 1` holds `[2^(k−1), 2^k)`, and
//! the last bucket absorbs everything above `2^(NUM_BUCKETS−2)`.
//! Histograms are recorded at coarse boundaries (per launch, per journal
//! append), so they use plain unsharded storage.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per histogram.
pub const NUM_BUCKETS: usize = 32;

/// Number of registered histograms.
pub const NUM_HISTS: usize = 11;

/// Every histogram in the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Simulated cycles per kernel launch.
    LaunchCycles,
    /// Per-launch SM load imbalance: max-SM work over mean-SM work, in
    /// permille (1000 = perfectly balanced).
    SmImbalancePermille,
    /// Checkpoint-journal append+flush latency, microseconds.
    JournalAppendMicros,
    /// Wall time per executed measurement cell, microseconds.
    CellMicros,
    /// Sparse-frontier size at each level flip in the tuned CPU baselines
    /// (DESIGN.md §7.7).
    FrontierOccupancy,
    /// End-to-end request latency in the query server, microseconds
    /// (accept → response flushed; DESIGN.md §7.8).
    ServeRequestMicros,
    /// Admission-queue depth sampled at each enqueue.
    ServeQueueDepth,
    /// Time a request sat in the admission queue before a worker picked it
    /// up, microseconds (DESIGN.md §7.10 stage attribution).
    ServeQueueWaitMicros,
    /// Time between a cell claim entering the batch former and its merged
    /// plan starting to execute, microseconds.
    ServeBatchWaitMicros,
    /// Engine execution time (route entry → response body assembled),
    /// microseconds.
    ServeExecuteMicros,
    /// Response serialization + socket write time, microseconds.
    ServeWriteMicros,
}

impl Hist {
    /// Every histogram, in storage order.
    pub const ALL: [Hist; NUM_HISTS] = [
        Hist::LaunchCycles,
        Hist::SmImbalancePermille,
        Hist::JournalAppendMicros,
        Hist::CellMicros,
        Hist::FrontierOccupancy,
        Hist::ServeRequestMicros,
        Hist::ServeQueueDepth,
        Hist::ServeQueueWaitMicros,
        Hist::ServeBatchWaitMicros,
        Hist::ServeExecuteMicros,
        Hist::ServeWriteMicros,
    ];

    /// Stable machine name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::LaunchCycles => "sim.launch_cycles",
            Hist::SmImbalancePermille => "sim.sm_imbalance_permille",
            Hist::JournalAppendMicros => "harness.journal_append_micros",
            Hist::CellMicros => "harness.cell_micros",
            Hist::FrontierOccupancy => "frontier.occupancy",
            Hist::ServeRequestMicros => "serve.request_micros",
            Hist::ServeQueueDepth => "serve.queue_depth",
            Hist::ServeQueueWaitMicros => "serve.queue_wait_micros",
            Hist::ServeBatchWaitMicros => "serve.batch_wait_micros",
            Hist::ServeExecuteMicros => "serve.execute_micros",
            Hist::ServeWriteMicros => "serve.write_micros",
        }
    }

    /// Records one value. Compiles to nothing without `telemetry`.
    #[inline(always)]
    pub fn record(self, v: u64) {
        #[cfg(feature = "telemetry")]
        storage::BUCKETS[self as usize][bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        #[cfg(not(feature = "telemetry"))]
        let _ = v;
    }
}

/// The bucket index `v` lands in.
#[inline]
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Lower edge of bucket `i` (inclusive).
#[inline]
#[must_use]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

#[cfg(feature = "telemetry")]
mod storage {
    use super::{AtomicU64, NUM_BUCKETS, NUM_HISTS};

    #[allow(clippy::declare_interior_mutable_const)]
    const Z: AtomicU64 = AtomicU64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ROW: [AtomicU64; NUM_BUCKETS] = [Z; NUM_BUCKETS];
    pub(super) static BUCKETS: [[AtomicU64; NUM_BUCKETS]; NUM_HISTS] = [ROW; NUM_HISTS];
}

/// A point-in-time copy of every histogram's buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: [[u64; NUM_BUCKETS]; NUM_HISTS],
}

impl HistSnapshot {
    /// All-zero snapshot.
    #[must_use]
    pub fn zero() -> HistSnapshot {
        HistSnapshot {
            counts: [[0; NUM_BUCKETS]; NUM_HISTS],
        }
    }

    /// Bucket counts of one histogram.
    #[must_use]
    pub fn buckets(&self, h: Hist) -> &[u64; NUM_BUCKETS] {
        &self.counts[h as usize]
    }

    /// Total samples recorded into one histogram.
    #[must_use]
    pub fn count(&self, h: Hist) -> u64 {
        self.counts[h as usize].iter().sum()
    }

    /// Bucket-floor estimate of the `p`-th percentile (`0.0..=100.0`):
    /// the lower edge of the bucket where the cumulative count crosses.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile_floor(&self, h: Hist, p: f64) -> u64 {
        let total = self.count(h);
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts[h as usize].iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }
}

/// Snapshots every histogram (all zeros without `telemetry`).
#[must_use]
pub fn hists_snapshot() -> HistSnapshot {
    #[cfg(feature = "telemetry")]
    {
        let mut counts = [[0u64; NUM_BUCKETS]; NUM_HISTS];
        for (h, row) in counts.iter_mut().enumerate() {
            for (b, v) in row.iter_mut().enumerate() {
                *v = storage::BUCKETS[h][b].load(Ordering::Relaxed);
            }
        }
        HistSnapshot { counts }
    }
    #[cfg(not(feature = "telemetry"))]
    {
        HistSnapshot::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        // every bucket's floor lands in its own bucket, and floor−1 in the
        // previous one — the edges are tight
        for i in 2..NUM_BUCKETS {
            let lo = bucket_floor(i);
            assert_eq!(bucket_of(lo), i, "floor of bucket {i}");
            assert_eq!(bucket_of(lo - 1), i - 1, "below floor of bucket {i}");
        }
        // the last bucket absorbs everything huge
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 40), NUM_BUCKETS - 1);
    }

    #[test]
    fn names_unique_and_order_stable() {
        let mut names: Vec<&str> = Hist::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_HISTS);
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn percentile_floor_on_empty_is_zero() {
        let snap = HistSnapshot::zero();
        assert_eq!(snap.percentile_floor(Hist::LaunchCycles, 50.0), 0);
        assert_eq!(snap.count(Hist::LaunchCycles), 0);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_build_records_nothing() {
        Hist::LaunchCycles.record(123);
        assert_eq!(hists_snapshot().count(Hist::LaunchCycles), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn recording_fills_the_right_buckets() {
        // Hist storage is process-global; this is the only test that
        // records into CellMicros, so its deltas are self-consistent.
        let before = hists_snapshot();
        Hist::CellMicros.record(0);
        Hist::CellMicros.record(1);
        Hist::CellMicros.record(1000); // bucket_of(1000) = 10
        let after = hists_snapshot();
        let b = |i: usize| after.buckets(Hist::CellMicros)[i] - before.buckets(Hist::CellMicros)[i];
        assert_eq!(b(0), 1);
        assert_eq!(b(1), 1);
        assert_eq!(b(10), 1);
        assert_eq!(
            after.count(Hist::CellMicros) - before.count(Hist::CellMicros),
            3
        );
    }
}
