//! The §5.16 programming guidelines, fitted from data instead of
//! hard-coded: train the style advisor on four suite families, hold the
//! fifth out, and check its prediction against a measured ground-truth
//! sweep of every variant on the held-out graph.
//!
//! ```text
//! cargo run --release --example style_advisor [-- road|grid|social|rmat|copapers]
//! ```

use indigo_advisor::{Advisor, TrainingCell};
use indigo_core::{run_gpu, GraphInput};
use indigo_gpusim::rtx3090;
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_graph::stats::GraphStats;
use indigo_styles::{enumerate, Algorithm, Model};

const ALGO: Algorithm = Algorithm::Sssp;
const MODEL: Model = Model::Cuda;
const SCALE: Scale = Scale::Tiny;

/// Measured (variant name, GE/s) for every SSSP/CUDA variant on one graph.
fn sweep(which: SuiteGraph) -> Vec<(String, f64)> {
    let input = GraphInput::new(suite_graph(which, SCALE));
    let dg = indigo_core::gpu::DeviceGraph::upload(&input);
    enumerate::variants(ALGO, MODEL)
        .into_iter()
        .map(|cfg| {
            let r = run_gpu(&cfg, &dg, rtx3090());
            (cfg.name(), r.gigaedges_per_sec(input.num_edges()))
        })
        .collect()
}

fn main() {
    let held = match std::env::args().nth(1).as_deref() {
        Some("grid") => SuiteGraph::Grid2d,
        Some("social") => SuiteGraph::SocialNetwork,
        Some("rmat") => SuiteGraph::Rmat,
        Some("copapers") => SuiteGraph::CoPapers,
        _ => SuiteGraph::RoadMap,
    };
    println!(
        "holding out the {} family; training on the other four",
        held.label()
    );

    let mut cells = Vec::new();
    for g in SUITE_GRAPHS {
        if g.label() == held.label() {
            continue;
        }
        let features = GraphStats::compute(&suite_graph(g, SCALE)).features();
        let measured = sweep(g);
        println!("  measured {}: {} variants", g.label(), measured.len());
        for (variant, geps) in measured {
            cells.push(TrainingCell {
                algo: ALGO,
                model: MODEL,
                graph: g.label().to_string(),
                variant,
                features,
                geps,
            });
        }
    }
    let advisor = Advisor::fit(&cells);

    // The §5.16 guidelines, refit from the measurements — each rule says
    // how strongly one style option's relative performance tracks one
    // graph property across the training graphs.
    println!("\nfitted guidelines (strongest correlations first):");
    for r in advisor.guidelines(ALGO, MODEL).iter().take(8) {
        println!(
            "  {:>14} = {:<16} tracks {:<13} (r = {:+.2})",
            r.dimension, r.option, r.property, r.correlation
        );
    }

    let stats = GraphStats::compute(&suite_graph(held, SCALE));
    println!(
        "\n{} features: d_avg {:.1}, d_max {}, {:.1}% of vertices with \
         degree >= 32, diameter >= {}",
        held.label(),
        stats.avg_degree,
        stats.max_degree,
        stats.pct_deg_ge32,
        stats.diameter_lb
    );
    let advice = advisor.advise(ALGO, MODEL, &stats.features());
    println!("prediction ({}): {}", advice.method.label(), advice.best());
    if let Some((label, d)) = &advice.neighbor {
        println!("  nearest training graph: {label} (distance {d:.2})");
    }

    // Ground truth: race every variant on the held-out graph.
    let mut truth = sweep(held);
    truth.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nground truth, top 5 of {} variants:", truth.len());
    for (name, geps) in truth.iter().take(5) {
        println!("  {geps:>8.3} GE/s  {name}");
    }
    let best = truth[0].1;
    let rank = truth
        .iter()
        .position(|(n, _)| n == advice.best())
        .expect("advised variant must be in the enumeration");
    let predicted = truth[rank].1;
    println!(
        "\npredicted-best actual rank: {}/{} — {:.3} GE/s vs best {:.3} \
         ({:.1}% regret)",
        rank + 1,
        truth.len(),
        predicted,
        best,
        (1.0 - predicted / best) * 100.0
    );
    let spread = best / truth.last().unwrap().1.max(1e-12);
    println!(
        "best/worst spread: {spread:.0}x — \"choosing the wrong style can \
         cost orders of magnitude\" (paper abstract)"
    );
}
