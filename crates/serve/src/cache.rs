//! Fingerprint-keyed result cache with crash-only journal persistence
//! (DESIGN.md §7.8).
//!
//! Every successfully measured cell is appended to the server's JSONL
//! journal (the PR 2 format — torn-tail safe on load *and* append, now
//! lockfile-guarded) and kept in an in-memory map keyed by the cell
//! fingerprint. Restart recovery is simply "load the journal": a
//! `SIGKILL`ed server loses at most the line it was writing, and a repeated
//! query is a cache hit, not a rerun. Only `ok` outcomes are persisted —
//! failures are the retry loop's business, and replaying them would turn a
//! transient fault into a permanent one.

use indigo_harness::journal::{self, Journal, JournalOutcome};
use indigo_harness::CellRecord;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

/// One cached measurement cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedCell {
    /// Variant name.
    pub variant: String,
    /// Graph label.
    pub graph: String,
    /// Target label.
    pub target: String,
    /// Exact measured throughput (`f64::to_bits`).
    pub geps_bits: u64,
    /// Convergence iterations.
    pub iterations: usize,
}

impl CachedCell {
    /// The measured throughput.
    pub fn geps(&self) -> f64 {
        f64::from_bits(self.geps_bits)
    }
}

/// The in-memory cache plus its append-only journal.
pub struct ResultCache {
    map: Mutex<HashMap<u64, CachedCell>>,
    journal: Option<Journal>,
    /// Cells replayed from the journal at startup.
    pub recovered: usize,
    /// Torn/garbage journal lines skipped at startup.
    pub skipped: usize,
}

impl ResultCache {
    /// Opens the cache, replaying `journal_path` when given (and taking its
    /// lockfile — a second server on the same journal fails fast here).
    pub fn open(journal_path: Option<&Path>) -> std::io::Result<ResultCache> {
        let mut map = HashMap::new();
        let mut skipped = 0;
        if let Some(path) = journal_path {
            match journal::load(path) {
                Ok((entries, skip)) => {
                    skipped = skip;
                    for (fp, e) in entries {
                        if let JournalOutcome::Ok {
                            geps_bits,
                            iterations,
                        } = e.outcome
                        {
                            map.insert(
                                fp,
                                CachedCell {
                                    variant: e.variant,
                                    graph: e.graph,
                                    target: e.target,
                                    geps_bits,
                                    iterations,
                                },
                            );
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        let recovered = map.len();
        let journal = journal_path.map(Journal::append_to).transpose()?;
        Ok(ResultCache {
            map: Mutex::new(map),
            journal,
            recovered,
            skipped,
        })
    }

    /// Looks up one cell.
    pub fn get(&self, fp: u64) -> Option<CachedCell> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&fp)
            .cloned()
    }

    /// Caches (and journals) a completed cell. Non-`ok` outcomes are
    /// ignored. Insertion is **keep-first**: a fingerprint already cached is
    /// never overwritten, so the bits a cell was first served with are the
    /// bits it is served with forever — re-measurement of a wall-clock
    /// (CPU) cell that raced into the same fingerprint cannot drift the
    /// answer. Journal write failures degrade persistence, not service —
    /// the error is returned for counting but the cell is still cached.
    pub fn insert(&self, rec: &CellRecord) -> std::io::Result<()> {
        let Some(m) = rec.outcome.measurement() else {
            return Ok(());
        };
        {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(&rec.fingerprint) {
                return Ok(());
            }
            map.insert(
                rec.fingerprint,
                CachedCell {
                    variant: rec.variant.clone(),
                    graph: rec.graph.to_string(),
                    target: rec.target.clone(),
                    geps_bits: m.geps.to_bits(),
                    iterations: m.iterations,
                },
            );
        }
        match &self.journal {
            Some(j) => j.record(rec),
            None => Ok(()),
        }
    }

    /// Caches a batch of completed cells with one journal lock/flush
    /// (`Journal::record_all`). Same keep-first rule as [`insert`]; cells
    /// already cached are neither overwritten nor re-journaled. Returns how
    /// many journal appends failed (persistence degraded, service intact).
    pub fn insert_batch(&self, records: &[&CellRecord]) -> usize {
        let mut fresh: Vec<&CellRecord> = Vec::with_capacity(records.len());
        {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            for rec in records {
                let Some(m) = rec.outcome.measurement() else {
                    continue;
                };
                if map.contains_key(&rec.fingerprint) {
                    continue;
                }
                map.insert(
                    rec.fingerprint,
                    CachedCell {
                        variant: rec.variant.clone(),
                        graph: rec.graph.to_string(),
                        target: rec.target.clone(),
                        geps_bits: m.geps.to_bits(),
                        iterations: m.iterations,
                    },
                );
                fresh.push(rec);
            }
        }
        match &self.journal {
            Some(j) => match j.record_all(&fresh) {
                Ok(()) => 0,
                Err(_) => fresh.len(),
            },
            None => 0,
        }
    }

    /// A point-in-time copy of every cached cell, in unspecified order.
    /// The style advisor fits from this (DESIGN.md §7.11); serving caches
    /// stay small enough that a full copy is the simple, safe choice.
    pub fn cells(&self) -> Vec<CachedCell> {
        self.map
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Cached cell count.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_graph::gen::Scale;
    use indigo_harness::journal::fingerprint;
    use indigo_harness::{CellOutcome, Measurement};
    use indigo_styles::{Algorithm, Model, StyleConfig};

    fn record(fp: u64, geps: f64) -> CellRecord {
        CellRecord {
            fingerprint: fp,
            variant: "tc_cuda".into(),
            graph: "2d-grid",
            target: "titan-v".into(),
            outcome: CellOutcome::Ok(Measurement {
                cfg: StyleConfig::baseline(Algorithm::Tc, Model::Cuda),
                graph: "2d-grid",
                target: "titan-v".into(),
                geps,
                iterations: 3,
            }),
            resumed: false,
        }
    }

    #[test]
    fn survives_restart_with_exact_bits() {
        let dir = std::env::temp_dir().join(format!("indigo-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.jsonl");
        std::fs::remove_file(&path).ok();
        let fp = fingerprint(Scale::Tiny, 1, true, "tc_cuda", "2d-grid", "titan-v");
        let geps = f64::from_bits(0x3fb9_9999_9999_999a);
        {
            let cache = ResultCache::open(Some(&path)).unwrap();
            assert_eq!(cache.recovered, 0);
            cache.insert(&record(fp, geps)).unwrap();
            // failures never persist
            cache
                .insert(&CellRecord {
                    outcome: CellOutcome::Crashed {
                        payload: "boom".into(),
                    },
                    ..record(fp + 1, 0.0)
                })
                .unwrap();
            assert_eq!(cache.len(), 1);
        }
        let cache = ResultCache::open(Some(&path)).unwrap();
        assert_eq!(cache.recovered, 1);
        assert_eq!(cache.get(fp).unwrap().geps_bits, geps.to_bits());
        assert_eq!(cache.get(fp + 1), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn works_without_a_journal() {
        let cache = ResultCache::open(None).unwrap();
        assert!(cache.is_empty());
        cache.insert(&record(9, 1.5)).unwrap();
        assert_eq!(cache.get(9).unwrap().geps(), 1.5);
    }
}
