//! `indigo-exp` — regenerates the paper's tables and figures.
//!
//! ```text
//! indigo-exp all                        # every table and figure
//! indigo-exp fig05 fig16               # a subset
//! indigo-exp tables                    # Tables 1-5 only (no measuring)
//! options:
//!   --scale tiny|small|default|large   # input instance size (default: small)
//!   --reps N                           # CPU wall-clock repetitions (default: 3)
//!   --jobs N                           # host threads for GPU-sim cells
//!                                      # (default: all hardware threads)
//!   --sim-workers N                    # threads inside each deterministic
//!                                      # GPU-sim launch (default: 1)
//!   --out DIR                          # report directory (default: results)
//! ```
//!
//! Measurement runs also drop `BENCH_harness.json` in the output directory:
//! suite wall-clock, aggregate cells/sec, job counts, and the per-phase
//! breakdown, for tracking harness throughput across commits.

use indigo_graph::gen::Scale;
use indigo_harness::experiments::{self, correlation, fig14, fig15, fig16, tables, throughput};
use indigo_harness::{ProgressEvent, Report, RunOptions, RunPhase};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut reps = 3usize;
    let mut out_dir = "results".to_string();
    let mut options = RunOptions::auto();
    let mut selected: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("default") => Scale::Default,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a number"))
            }
            "--jobs" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number"));
                options = options.with_jobs(n);
            }
            "--sim-workers" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--sim-workers needs a number"));
                options = options.with_sim_workers(n);
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| die("--out needs a directory")),
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        println!("{}", HELP);
        return;
    }

    let wants = |id: &str| {
        selected.iter().any(|s| s == id)
            || selected.iter().any(|s| s == "all")
            || (id.starts_with("table") && selected.iter().any(|s| s == "tables"))
    };

    let mut reports: Vec<Report> = Vec::new();
    // tables need no measurements
    if wants("table1") {
        reports.push(tables::table1());
    }
    if wants("table2") {
        reports.push(tables::table2());
    }
    if wants("table3") {
        reports.push(tables::table3());
    }
    if wants("table45") {
        reports.push(tables::tables45(scale));
    }

    let needs_dataset = experiments::PAIR_SPECS.iter().any(|s| wants(s.id))
        || [
            "fig09", "fig10", "fig11", "fig14", "fig15", "fig16", "corr513",
        ]
        .iter()
        .any(|id| wants(id));
    if needs_dataset {
        eprintln!(
            "measuring full suite at {scale:?} scale ({reps} CPU reps, {} jobs, {} sim \
             workers); this runs all 1098 programs on 5 inputs...",
            options.jobs, options.sim_workers
        );
        let mut reporter = PhaseReporter::new();
        let suite_started = Instant::now();
        let ds =
            experiments::Dataset::collect_with(scale, reps, &options, |ev| reporter.on_event(ev));
        let suite_secs = suite_started.elapsed().as_secs_f64();
        eprintln!("matrix complete: {} measurements", ds.measurements.len());
        reporter.print_summary(suite_secs);
        if let Err(e) = write_bench_json(&out_dir, &reporter, &options, suite_secs, scale, reps) {
            eprintln!("failed to write BENCH_harness.json: {e}");
        }

        for spec in experiments::PAIR_SPECS {
            if wants(spec.id) {
                reports.push(experiments::pair_report(spec, &ds));
            }
        }
        if wants("fig09") {
            reports.push(throughput::fig09(&ds));
        }
        if wants("fig10") {
            reports.push(throughput::fig10(&ds));
        }
        if wants("fig11") {
            reports.push(throughput::fig11(&ds));
        }
        if wants("fig14") {
            reports.push(fig14::fig14(&ds));
        }
        if wants("fig15") {
            reports.push(fig15::fig15(&ds));
        }
        if wants("corr513") {
            reports.push(correlation::correlation(&ds));
        }
        if wants("fig16") {
            eprintln!("running baselines for fig16...");
            reports.push(fig16::fig16(&ds));
        }
    }

    for r in &reports {
        println!("{}", r.render());
        if let Err(e) = r.write_to(&out_dir) {
            eprintln!("failed to write {}: {e}", r.id);
        }
    }
    eprintln!("wrote {} reports to {out_dir}/", reports.len());
}

/// One finished phase, for the final summary and the bench JSON.
struct PhaseRecord {
    phase: RunPhase,
    cells: usize,
    secs: f64,
}

/// Turns [`ProgressEvent`]s into rate/ETA lines on stderr and collects the
/// per-phase timing breakdown.
struct PhaseReporter {
    phase_started: Instant,
    last_line: Instant,
    finished: Vec<PhaseRecord>,
}

impl PhaseReporter {
    fn new() -> PhaseReporter {
        let now = Instant::now();
        PhaseReporter {
            phase_started: now,
            last_line: now,
            finished: Vec::new(),
        }
    }

    fn on_event(&mut self, ev: ProgressEvent) {
        match ev {
            ProgressEvent::PhaseStart { phase, total } => {
                self.phase_started = Instant::now();
                self.last_line = self.phase_started;
                eprintln!("[{}] starting: {total} cells", phase.label());
            }
            ProgressEvent::Cell { phase, done, total } => {
                // throttle: at most ~1 line/sec, but always print the last
                let now = Instant::now();
                if done < total && now.duration_since(self.last_line).as_secs_f64() < 1.0 {
                    return;
                }
                self.last_line = now;
                let elapsed = now.duration_since(self.phase_started).as_secs_f64();
                let rate = if elapsed > 0.0 {
                    done as f64 / elapsed
                } else {
                    0.0
                };
                let eta = if rate > 0.0 {
                    (total - done) as f64 / rate
                } else {
                    f64::NAN
                };
                eprintln!(
                    "[{}] {done}/{total} cells  {rate:.1} cells/s  elapsed {}  eta {}",
                    phase.label(),
                    fmt_secs(elapsed),
                    fmt_secs(eta),
                );
            }
            ProgressEvent::PhaseEnd { phase, total, secs } => {
                let rate = if secs > 0.0 { total as f64 / secs } else { 0.0 };
                eprintln!(
                    "[{}] done: {total} cells in {} ({rate:.1} cells/s)",
                    phase.label(),
                    fmt_secs(secs),
                );
                self.finished.push(PhaseRecord {
                    phase,
                    cells: total,
                    secs,
                });
            }
        }
    }

    fn total_cells(&self) -> usize {
        // prepare units are graphs, not measurement cells
        self.finished
            .iter()
            .filter(|r| r.phase != RunPhase::Prepare)
            .map(|r| r.cells)
            .sum()
    }

    fn print_summary(&self, suite_secs: f64) {
        eprintln!("phase breakdown:");
        for r in &self.finished {
            eprintln!(
                "  {:8} {:6} units  {:>9}  ({:.1}% of wall)",
                r.phase.label(),
                r.cells,
                fmt_secs(r.secs),
                if suite_secs > 0.0 {
                    100.0 * r.secs / suite_secs
                } else {
                    0.0
                },
            );
        }
        let cells = self.total_cells();
        let rate = if suite_secs > 0.0 {
            cells as f64 / suite_secs
        } else {
            0.0
        };
        eprintln!(
            "  total    {cells:6} cells  {:>9}  ({rate:.1} cells/s)",
            fmt_secs(suite_secs)
        );
    }
}

/// Writes the machine-readable benchmark record for this run.
fn write_bench_json(
    out_dir: &str,
    reporter: &PhaseReporter,
    options: &RunOptions,
    suite_secs: f64,
    scale: Scale,
    reps: usize,
) -> std::io::Result<()> {
    let cells = reporter.total_cells();
    let rate = if suite_secs > 0.0 {
        cells as f64 / suite_secs
    } else {
        0.0
    };
    let mut phases = String::new();
    for (i, r) in reporter.finished.iter().enumerate() {
        if i > 0 {
            phases.push_str(",\n");
        }
        phases.push_str(&format!(
            "    {{\"phase\": \"{}\", \"units\": {}, \"secs\": {}}}",
            r.phase.label(),
            r.cells,
            json_f64(r.secs)
        ));
    }
    let body = format!(
        "{{\n  \"suite_secs\": {},\n  \"cells\": {},\n  \"cells_per_sec\": {},\n  \
         \"jobs\": {},\n  \"sim_workers\": {},\n  \"scale\": \"{:?}\",\n  \"reps\": {},\n  \
         \"phases\": [\n{}\n  ]\n}}\n",
        json_f64(suite_secs),
        cells,
        json_f64(rate),
        options.jobs,
        options.sim_workers,
        scale,
        reps,
        phases
    );
    std::fs::create_dir_all(out_dir)?;
    let path = std::path::Path::new(out_dir).join("BENCH_harness.json");
    std::fs::write(&path, body)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// JSON has no NaN/Infinity literals; clamp to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// `73s` / `4m05s` / `2h07m` style durations.
fn fmt_secs(secs: f64) -> String {
    if !secs.is_finite() {
        return "--".to_string();
    }
    let s = secs.round() as u64;
    if s < 100 {
        format!("{s}s")
    } else if s < 6000 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

const HELP: &str = "indigo-exp — regenerate the Indigo2 paper's tables and figures

usage: indigo-exp <ids...> [--scale tiny|small|default|large] [--reps N]
                  [--jobs N] [--sim-workers N] [--out DIR]

ids: all, tables, table1 table2 table3 table45,
     fig01 fig02 fig02c fig03 fig04 fig05 fig06 fig07 fig08,
     fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16, corr513

--jobs defaults to the machine's hardware thread count; GPU-sim cells
fan out across jobs while CPU wall-clock cells always run exclusively,
and results are bit-identical to --jobs 1 at any setting.";
