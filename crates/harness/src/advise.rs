//! Journal → advisor glue and held-out validation (DESIGN.md §7.11).
//!
//! The advisor (`crates/advisor`) is fitted from measured sweep cells; this
//! module produces those cells from a checkpoint journal, evaluates the fit
//! against ground-truth sweeps on held-out *generated* graphs the training
//! never saw, and reports top-1/top-3 regret to `BENCH_advisor.json`.
//!
//! The journal does not record the scale or repetition count it was measured
//! at — but every line carries a fingerprint that hashes both, so we recover
//! them by re-fingerprinting each entry against the finite candidate space
//! and requiring a unanimous match (a self-validating load: a corrupted or
//! mixed-scale journal is rejected rather than silently mis-fitted).
//!
//! Ground truth is restricted to the CUDA model: the GPU simulator's cycle
//! counts are deterministic, so the reported regret is reproducible
//! bit-for-bit on any machine — a CI-gateable number, unlike wall-clock CPU
//! sweeps.

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::Path;

use crate::journal::{self, fingerprint, JournalOutcome};
use indigo_advisor::{Advisor, Method, TrainingCell};
use indigo_core::gpu::DeviceGraph;
use indigo_core::input::GraphInput;
use indigo_core::runner::run_gpu;
use indigo_gpusim::titan_v;
use indigo_graph::gen::{self, suite_graph, Scale, SUITE_GRAPHS};
use indigo_graph::stats::{GraphStats, StatsScratch};
use indigo_graph::Csr;
use indigo_styles::{enumerate, Algorithm, Model};

/// A journal distilled into advisor training cells.
pub struct TrainingSet {
    pub cells: Vec<TrainingCell>,
    /// Scale recovered from the fingerprints.
    pub scale: Scale,
    /// Repetition count recovered from the fingerprints.
    pub reps: usize,
    /// Completed (`Ok`) journal entries.
    pub total_ok: usize,
    /// `Ok` entries skipped because their graph or variant is unknown.
    pub skipped: usize,
}

const SCALES: [Scale; 4] = [Scale::Tiny, Scale::Small, Scale::Default, Scale::Large];
const MAX_REPS: usize = 16;

/// Splits a [`indigo_styles::StyleConfig::name`] back into its model and
/// algorithm (the first two `-`-separated tokens, e.g. `cuda-sssp-…`).
pub fn parse_variant_name(name: &str) -> Option<(Algorithm, Model)> {
    let mut it = name.splitn(3, '-');
    let model = it.next()?;
    let algo = it.next()?;
    let model = Model::ALL.into_iter().find(|m| m.label() == model)?;
    let algo = Algorithm::ALL.into_iter().find(|a| a.label() == algo)?;
    Some((algo, model))
}

/// Loads a journal and converts its completed cells into training data.
///
/// Fails if the journal is empty of `Ok` cells or if its fingerprints do not
/// unanimously agree on one `(scale, reps)` pair.
pub fn training_from_journal(path: &Path) -> io::Result<TrainingSet> {
    let (entries, _skipped_lines) = journal::load(path)?;
    let mut ok: Vec<_> = entries
        .values()
        .filter(|e| matches!(e.outcome, JournalOutcome::Ok { .. }))
        .collect();
    // HashMap order is nondeterministic; the fit is order-insensitive but
    // keep the set sorted so diagnostics and tests are stable.
    ok.sort_by_key(|e| e.fp);
    if ok.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "journal contains no completed cells to fit from",
        ));
    }

    // Recover (scale, reps, verify) from the fingerprints: every entry must
    // match under the same candidate triple.
    let detected = SCALES
        .into_iter()
        .flat_map(|s| (1..=MAX_REPS).map(move |r| (s, r)))
        .flat_map(|(s, r)| [(s, r, true), (s, r, false)])
        .find(|&(s, r, v)| {
            ok.iter()
                .all(|e| fingerprint(s, r, v, &e.variant, &e.graph, &e.target) == e.fp)
        });
    let Some((scale, reps, _verify)) = detected else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "journal fingerprints do not match any known (scale, reps); \
             mixed-scale or incompatible journal",
        ));
    };

    // Feature vectors per suite graph, computed once at the detected scale.
    let mut scratch = StatsScratch::new();
    let mut features = HashMap::new();
    let mut cells = Vec::new();
    let mut skipped = 0usize;
    for e in &ok {
        let JournalOutcome::Ok { geps_bits, .. } = e.outcome else {
            unreachable!("filtered to Ok above");
        };
        let Some((algo, model)) = parse_variant_name(&e.variant) else {
            skipped += 1;
            continue;
        };
        let Some(which) = SUITE_GRAPHS.iter().find(|g| g.label() == e.graph) else {
            skipped += 1;
            continue;
        };
        let fv = *features.entry(e.graph.clone()).or_insert_with(|| {
            GraphStats::compute_with(&suite_graph(*which, scale), &mut scratch).features()
        });
        cells.push(TrainingCell {
            algo,
            model,
            graph: e.graph.clone(),
            variant: e.variant.clone(),
            features: fv,
            geps: f64::from_bits(geps_bits),
        });
    }

    Ok(TrainingSet {
        total_ok: ok.len(),
        skipped,
        cells,
        scale,
        reps,
    })
}

/// The held-out validation inputs: one instance per suite family plus a
/// uniform-random graph no training family covers, generated with off-suite
/// seeds and shapes so none of them equals a training graph. Sizes track the
/// training `scale` — the advisor matches graphs by *shape* (degree
/// distribution, diameter), and validation should test that transfer within
/// the regime the model was fitted in, not extrapolation across 3 orders of
/// magnitude of size. Deterministic by construction.
pub fn held_out_graphs(scale: Scale) -> Vec<(&'static str, Csr)> {
    const HELD_SEED: u64 = 0xAD115E; // "advise" — distinct from SUITE_SEED
                                     // (grid w×h, gnp n, rmat scale, soc n, road w×h) near — never equal to —
                                     // the suite sizes at `scale`.
    let (grid, gnp_n, rmat_sc, soc_n, road) = match scale {
        Scale::Tiny => ((20, 13), 300, 8, 300, (24, 14)),
        Scale::Small => ((70, 58), 5_000, 11, 3_500, (90, 54)),
        Scale::Default => ((240, 208), 40_000, 15, 33_000, (300, 176)),
        Scale::Large => ((750, 698), 500_000, 18, 220_000, (760, 420)),
    };
    vec![
        ("held-grid", gen::grid2d(grid.0, grid.1)),
        ("held-gnp", gen::gnp(gnp_n, 12.0 / gnp_n as f64, HELD_SEED)),
        ("held-rmat", gen::rmat(rmat_sc, 10, HELD_SEED)),
        (
            "held-soc",
            gen::preferential_attachment(soc_n, 7, HELD_SEED),
        ),
        ("held-road", gen::road(road.0, road.1, HELD_SEED)),
    ]
}

/// One (held-out graph, algorithm) validation case.
pub struct HeldOutCase {
    pub graph: &'static str,
    pub algo: Algorithm,
    pub model: Model,
    pub method: Method,
    /// Nearest training graph and normalized distance, if any.
    pub neighbor: Option<(String, f64)>,
    pub predicted: String,
    pub predicted_geps: f64,
    pub best: String,
    pub best_geps: f64,
    /// `1 − geps(predicted) / geps(best)` over the ground-truth sweep.
    pub regret_top1: f64,
    /// Same, for the best of the advisor's top-3.
    pub regret_top3: f64,
    /// Ground-truth sweep size (training-covered variants only).
    pub candidates: usize,
}

/// The full validation result, serialized to `results/BENCH_advisor.json`.
pub struct AdvisorBench {
    pub scale: Scale,
    pub reps: usize,
    pub training_cells: usize,
    pub training_graphs: usize,
    pub groups: usize,
    pub cases: Vec<HeldOutCase>,
    pub mean_regret_top1: f64,
    pub max_regret_top1: f64,
    pub mean_regret_top3: f64,
    pub max_regret_top3: f64,
}

/// Validates `advisor` against deterministic ground-truth sweeps on the
/// held-out graphs at the training `scale`, for every fitted CUDA group.
///
/// The candidate set per group is the *training-covered* variants: regret
/// measures how well the advisor orders the styles it has data for, not
/// whether the training sweep itself was exhaustive.
pub fn evaluate(advisor: &Advisor, scale: Scale) -> AdvisorBench {
    let groups: Vec<(Algorithm, Model)> = advisor
        .fitted_groups()
        .into_iter()
        .filter(|&(_, m)| m == Model::Cuda)
        .collect();

    let mut cases = Vec::new();
    for (name, g) in held_out_graphs(scale) {
        let stats = GraphStats::compute(&g);
        let features = stats.features();
        let num_edges = g.num_edges();
        let input = GraphInput::new(g);
        let dg = DeviceGraph::upload(&input);
        for &(algo, model) in &groups {
            let by_name: HashMap<String, _> = enumerate::variants(algo, model)
                .into_iter()
                .map(|c| (c.name(), c))
                .collect();
            let covered: Vec<&String> = advisor
                .candidates(algo, model)
                .unwrap_or(&[])
                .iter()
                .filter(|v| by_name.contains_key(*v))
                .collect();
            if covered.is_empty() {
                continue;
            }
            // Deterministic ground truth: simulated cycles on one device.
            let truth: HashMap<&String, f64> = covered
                .iter()
                .map(|v| {
                    let r = run_gpu(&by_name[*v], &dg, titan_v());
                    (*v, r.gigaedges_per_sec(num_edges))
                })
                .collect();
            let (best, best_geps) = truth
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(v, g)| ((*v).clone(), *g))
                .expect("non-empty candidate set");

            let advice = advisor.advise(algo, model, &features);
            let ranked_covered: Vec<&String> = advice
                .ranked
                .iter()
                .filter(|v| truth.contains_key(v))
                .collect();
            let predicted = ranked_covered
                .first()
                .map(|v| (*v).clone())
                .unwrap_or_else(|| best.clone());
            let predicted_geps = truth[&predicted];
            let top3_geps = ranked_covered
                .iter()
                .take(3)
                .map(|v| truth[*v])
                .fold(f64::MIN, f64::max)
                .max(predicted_geps);
            let regret = |g: f64| {
                if best_geps > 0.0 {
                    (1.0 - g / best_geps).max(0.0)
                } else {
                    0.0
                }
            };
            cases.push(HeldOutCase {
                graph: name,
                algo,
                model,
                method: advice.method,
                neighbor: advice.neighbor.clone(),
                regret_top1: regret(predicted_geps),
                regret_top3: regret(top3_geps),
                predicted,
                predicted_geps,
                best,
                best_geps,
                candidates: covered.len(),
            });
        }
    }

    let mean = |f: &dyn Fn(&HeldOutCase) -> f64| {
        if cases.is_empty() {
            0.0
        } else {
            cases.iter().map(f).sum::<f64>() / cases.len() as f64
        }
    };
    let max = |f: &dyn Fn(&HeldOutCase) -> f64| cases.iter().map(f).fold(0.0, f64::max);
    AdvisorBench {
        scale,
        reps: 0,
        training_cells: advisor.num_cells(),
        training_graphs: advisor.num_graphs(),
        groups: groups.len(),
        mean_regret_top1: mean(&|c| c.regret_top1),
        max_regret_top1: max(&|c| c.regret_top1),
        mean_regret_top3: mean(&|c| c.regret_top3),
        max_regret_top3: max(&|c| c.regret_top3),
        cases,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Renders the bench as JSON (schema `bench-advisor-v1`).
pub fn render_bench(b: &AdvisorBench) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"bench-advisor-v1\",\n");
    s.push_str(&format!(
        "  \"scale\": {},\n",
        json_str(&format!("{:?}", b.scale))
    ));
    s.push_str(&format!("  \"reps\": {},\n", b.reps));
    s.push_str(&format!("  \"training_cells\": {},\n", b.training_cells));
    s.push_str(&format!("  \"training_graphs\": {},\n", b.training_graphs));
    s.push_str(&format!("  \"groups\": {},\n", b.groups));
    s.push_str(&format!("  \"held_out_cases\": {},\n", b.cases.len()));
    s.push_str(&format!(
        "  \"mean_regret_top1\": {},\n",
        json_f64(b.mean_regret_top1)
    ));
    s.push_str(&format!(
        "  \"max_regret_top1\": {},\n",
        json_f64(b.max_regret_top1)
    ));
    s.push_str(&format!(
        "  \"mean_regret_top3\": {},\n",
        json_f64(b.mean_regret_top3)
    ));
    s.push_str(&format!(
        "  \"max_regret_top3\": {},\n",
        json_f64(b.max_regret_top3)
    ));
    s.push_str("  \"cases\": [\n");
    for (i, c) in b.cases.iter().enumerate() {
        let neighbor = match &c.neighbor {
            Some((l, d)) => format!(
                "{{\"graph\": {}, \"distance\": {}}}",
                json_str(l),
                json_f64(*d)
            ),
            None => "null".into(),
        };
        s.push_str(&format!(
            "    {{\"graph\": {}, \"algo\": {}, \"model\": {}, \"method\": {}, \
             \"neighbor\": {neighbor}, \"predicted\": {}, \"predicted_geps\": {}, \
             \"best\": {}, \"best_geps\": {}, \"regret_top1\": {}, \
             \"regret_top3\": {}, \"candidates\": {}}}{}\n",
            json_str(c.graph),
            json_str(c.algo.label()),
            json_str(c.model.label()),
            json_str(c.method.label()),
            json_str(&c.predicted),
            json_f64(c.predicted_geps),
            json_str(&c.best),
            json_f64(c.best_geps),
            json_f64(c.regret_top1),
            json_f64(c.regret_top3),
            c.candidates,
            if i + 1 == b.cases.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`render_bench`] to `path`.
pub fn write_bench(path: &Path, b: &AdvisorBench) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(render_bench(b).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_journal(dir: &Path, cells: &[(Algorithm, Model, &str, f64)]) -> std::path::PathBuf {
        let path = dir.join("advise-test.jsonl");
        let mut lines = String::new();
        for (algo, model, graph, geps) in cells {
            let variants = enumerate::variants(*algo, *model).into_iter().take(4);
            for (k, cfg) in variants.enumerate() {
                // Spread throughputs so the per-graph ranking is non-trivial.
                let geps = geps * (1.0 + k as f64 * 0.5);
                let name = cfg.name();
                let target = "titan-v";
                let fp = fingerprint(Scale::Tiny, 1, true, &name, graph, target);
                lines.push_str(&format!(
                    "{{\"v\":1,\"fp\":\"{fp:016x}\",\"variant\":\"{name}\",\"graph\":\"{graph}\",\
                     \"target\":\"{target}\",\"outcome\":\"ok\",\"geps_bits\":\"{:016x}\",\
                     \"geps\":{geps},\"iterations\":1}}\n",
                    geps.to_bits()
                ));
            }
        }
        std::fs::write(&path, lines).unwrap();
        path
    }

    #[test]
    fn recovers_scale_and_reps_from_fingerprints() {
        let dir = std::env::temp_dir().join(format!("indigo-advise-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_journal(
            &dir,
            &[
                (Algorithm::Bfs, Model::Cuda, "rmat", 2.0),
                (Algorithm::Bfs, Model::Cuda, "2d-grid", 1.0),
            ],
        );
        let set = training_from_journal(&path).unwrap();
        assert_eq!(set.scale, Scale::Tiny);
        assert_eq!(set.reps, 1);
        assert_eq!(set.skipped, 0);
        assert_eq!(set.cells.len(), set.total_ok);
        assert!(set.cells.iter().all(|c| c.algo == Algorithm::Bfs));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn variant_name_round_trips() {
        for algo in Algorithm::ALL {
            for model in Model::ALL {
                for cfg in enumerate::variants(algo, model).into_iter().take(2) {
                    assert_eq!(parse_variant_name(&cfg.name()), Some((algo, model)));
                }
            }
        }
        assert_eq!(parse_variant_name("nonsense"), None);
    }

    #[test]
    fn held_out_regret_is_deterministic_and_bounded() {
        let dir = std::env::temp_dir().join(format!("indigo-advise-regret-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_journal(
            &dir,
            &[
                (Algorithm::Bfs, Model::Cuda, "2d-grid", 1.5),
                (Algorithm::Bfs, Model::Cuda, "rmat", 2.5),
            ],
        );
        let set = training_from_journal(&path).unwrap();
        let advisor = Advisor::fit(&set.cells);
        let bench = evaluate(&advisor, set.scale);

        // One BFS/CUDA case per held-out family, each regret well-formed.
        assert_eq!(bench.cases.len(), held_out_graphs(set.scale).len());
        for c in &bench.cases {
            assert_eq!((c.algo, c.model), (Algorithm::Bfs, Model::Cuda));
            assert!(
                (0.0..=1.0).contains(&c.regret_top1),
                "{}: regret_top1 {} out of range",
                c.graph,
                c.regret_top1
            );
            assert!(
                c.regret_top3 <= c.regret_top1,
                "{}: widening the candidate window cannot increase regret",
                c.graph
            );
            assert_eq!(c.candidates, 4);
        }
        assert!(bench.mean_regret_top3 <= bench.mean_regret_top1);

        // The simulator's cycle counts are deterministic, so a second
        // evaluation must reproduce the report byte-for-byte.
        let again = evaluate(&advisor, set.scale);
        assert_eq!(render_bench(&bench), render_bench(&again));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn held_out_graphs_are_disjoint_from_suite() {
        for held_scale in [Scale::Tiny, Scale::Small] {
            let held = held_out_graphs(held_scale);
            assert_eq!(held.len(), 5);
            for scale in SCALES {
                for which in SUITE_GRAPHS {
                    let suite = suite_graph(which, scale);
                    for (_, g) in &held {
                        assert!(
                            g.num_nodes() != suite.num_nodes()
                                || g.num_edges() != suite.num_edges(),
                            "held-out graph collides with {which:?} at {scale:?}"
                        );
                    }
                }
            }
        }
    }
}
