//! Report assembly and output.

use std::io::Write;
use std::path::Path;

/// One regenerated table/figure: human-readable text plus machine CSV.
#[derive(Clone, Debug)]
pub struct Report {
    /// Stable id, e.g. `"fig05"`.
    pub id: String,
    /// Title echoing the paper's caption.
    pub title: String,
    /// Rendered text (letter-value tables, strips, matrices).
    pub text: String,
    /// CSV rows (`header` first), for downstream plotting.
    pub csv: Vec<String>,
}

impl Report {
    /// Creates a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            csv: Vec::new(),
        }
    }

    /// Appends a text line.
    pub fn line(&mut self, s: impl AsRef<str>) -> &mut Self {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
        self
    }

    /// Appends a CSV row.
    pub fn csv_row(&mut self, s: impl Into<String>) -> &mut Self {
        self.csv.push(s.into());
        self
    }

    /// Full display text (title + body).
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}", self.id, self.title, self.text)
    }

    /// Writes `<dir>/<id>.txt` and (if any CSV rows) `<dir>/<id>.csv`.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.txt", self.id)))?;
        f.write_all(self.render().as_bytes())?;
        if !self.csv.is_empty() {
            let mut c = std::fs::File::create(dir.join(format!("{}.csv", self.id)))?;
            for row in &self.csv {
                writeln!(c, "{row}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_title_and_body() {
        let mut r = Report::new("fig99", "test figure");
        r.line("hello");
        let s = r.render();
        assert!(s.contains("fig99"));
        assert!(s.contains("test figure"));
        assert!(s.contains("hello\n"));
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join(format!("indigo-report-{}", std::process::id()));
        let mut r = Report::new("t1", "t");
        r.line("body").csv_row("a,b");
        r.write_to(&dir).unwrap();
        assert!(dir.join("t1.txt").exists());
        assert!(dir.join("t1.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
