//! RMAT generator — the `rmat22.sym` family.
//!
//! Standard Graph500-style recursive matrix sampling with the Galois
//! parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05), symmetrized and
//! deduplicated like the paper's input (every undirected edge appears as two
//! directed edges). Yields a skewed, scale-free-ish degree distribution with
//! a low diameter — the regime where warp-granularity GPU codes shine.

use super::random::SplitMix;
use crate::{Csr, GraphBuilder, NodeId};

const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates an RMAT graph with `2^scale` vertices and
/// `edges_per_vertex * 2^scale` *sampled* undirected edges (dedup and
/// self-loop removal make the final count slightly smaller).
pub fn rmat(scale: u32, edges_per_vertex: usize, seed: u64) -> Csr {
    assert!((1..=31).contains(&scale), "scale out of range");
    let n: u64 = 1 << scale;
    let m = n as usize * edges_per_vertex;
    let mut rng = SplitMix::new(seed ^ 0x524d_4154); // "RMAT"
    let mut b = GraphBuilder::new(n as usize);
    for _ in 0..m {
        let (src, dst) = sample_edge(scale, &mut rng);
        b.add_edge(src, dst);
    }
    b.build(format!("rmat{scale}.sym"))
}

/// One recursive quadrant descent.
fn sample_edge(scale: u32, rng: &mut SplitMix) -> (NodeId, NodeId) {
    let mut src: u64 = 0;
    let mut dst: u64 = 0;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r = rng.f64();
        if r < A {
            // top-left quadrant: neither bit set
        } else if r < A + B {
            dst |= 1;
        } else if r < A + B + C {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src as NodeId, dst as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(rmat(8, 8, 5), rmat(8, 8, 5));
    }

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(9, 4, 1);
        assert_eq!(g.num_nodes(), 512);
    }

    #[test]
    fn family_properties_skewed_low_diameter() {
        let g = rmat(12, 8, 42);
        let s = GraphStats::compute(&g);
        // skew: max degree far above average
        assert!(
            s.max_degree as f64 > 8.0 * s.avg_degree,
            "dmax {} davg {}",
            s.max_degree,
            s.avg_degree
        );
        // low diameter on the giant component
        assert!(s.diameter_lb < 16, "diameter_lb {}", s.diameter_lb);
        // a nontrivial fraction of vertices has degree >= 32 (paper: 12.4%)
        assert!(
            s.pct_deg_ge32 > 0.5 && s.pct_deg_ge32 < 40.0,
            "pct {}",
            s.pct_deg_ge32
        );
    }

    #[test]
    fn dedup_shrinks_sampled_edges() {
        let g = rmat(6, 16, 3);
        // 64 * 16 = 1024 sampled; after dedup + self-loop removal strictly less
        assert!(g.num_edges() / 2 < 1024);
    }
}
