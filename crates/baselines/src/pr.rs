//! Optimized PageRank baselines: pull iteration with a precomputed
//! reciprocal out-degree table (saves the degree lookup and division on
//! every edge — a standard Gardenia/GAP optimization), privatized
//! (clause-style) delta reduction, and warp granularity on the GPU.

use indigo_core::GraphInput;
use indigo_exec::sync::AtomicF32;
use indigo_exec::Schedule;
use indigo_gpusim::{Assign, BufKind, Device, GpuBufF32, ReduceStyle, Sim};

/// CPU optimized PR. Returns `(ranks, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize) -> (Vec<f32>, f64) {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    if n == 0 {
        return (Vec::new(), start.elapsed().as_secs_f64());
    }
    let damping = indigo_core::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;
    // reciprocal degree table: one multiply per edge instead of a divide
    let rcp: Vec<f32> = (0..n as u32)
        .map(|v| 1.0 / g.degree(v).max(1) as f32)
        .collect();
    let rank: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(1.0 / n as f32)).collect();
    let next: Vec<AtomicF32> = (0..n).map(|_| AtomicF32::new(0.0)).collect();

    #[repr(align(64))]
    struct Padded(AtomicF32);
    let partials: Vec<Padded> = (0..pool.num_threads())
        .map(|_| Padded(AtomicF32::new(0.0)))
        .collect();

    let mut iterations = 0usize;
    while iterations < indigo_core::PR_MAX_ITERS {
        iterations += 1;
        for p in &partials {
            p.0.store(0.0);
        }
        pool.parallel_for(n, Schedule::Default, |vi, tid| {
            let mut sum = 0.0f32;
            for &u in g.neighbors(vi as u32) {
                sum += rank[u as usize].load() * rcp[u as usize];
            }
            let nv = base + damping * sum;
            partials[tid].0.fetch_add((nv - rank[vi].load()).abs());
            next[vi].store(nv);
        });
        pool.parallel_for(n, Schedule::Default, |vi, _| {
            rank[vi].store(next[vi].load());
        });
        let delta: f32 = partials.iter().map(|p| p.0.load()).sum();
        if delta < indigo_core::PR_EPSILON {
            break;
        }
    }
    let out = rank.iter().map(|c| c.load()).collect();
    (out, start.elapsed().as_secs_f64())
}

/// Simulated-GPU optimized PR (warp granularity, reduction-add deltas,
/// reciprocal-degree table). Returns `(ranks, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device) -> (Vec<f32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    let g = &input.csr;
    let damping = indigo_core::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;
    let rcp_host: Vec<f32> = (0..n as u32)
        .map(|v| 1.0 / g.degree(v).max(1) as f32)
        .collect();
    let rcp = GpuBufF32::new(n, 0.0);
    for (i, &r) in rcp_host.iter().enumerate() {
        rcp.host_write(i, r);
    }
    let rank = GpuBufF32::new(n, 1.0 / n as f32).with_kind(BufKind::Atomic);
    let next = GpuBufF32::new(n, 0.0).with_kind(BufKind::Atomic);

    let mut iterations = 0usize;
    while iterations < indigo_core::PR_MAX_ITERS {
        iterations += 1;
        let (_, delta) = sim.launch_coop(
            n,
            Assign::WarpPerItem,
            false,
            Some((ReduceStyle::ReductionAdd, BufKind::Atomic)),
            |ctx, vi| {
                let beg = ctx.ld(&dg.row, vi) as usize;
                let end = ctx.ld(&dg.row, vi + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                let mut partial = 0.0f32;
                while i < end {
                    let u = ctx.ld(&dg.nbr, i) as usize;
                    partial += ctx.ld_f32(&rank, u) * ctx.ld_f32(&rcp, u);
                    i += lanes;
                }
                ctx.scratch_add_f32(partial);
            },
            |ctx, vi| {
                let nv = base + damping * ctx.group_f32();
                let old = ctx.ld_f32(&rank, vi);
                ctx.reduce_add_f32((nv - old).abs());
                ctx.st_f32(&next, vi, nv);
            },
        );
        sim.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld_f32(&next, i);
            ctx.st_f32(&rank, i, v);
        });
        if delta < indigo_core::PR_EPSILON {
            break;
        }
    }
    (rank.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 2e-3)
    }

    fn reference(input: &GraphInput) -> Vec<f32> {
        serial::pagerank(
            &input.csr,
            indigo_core::PR_DAMPING,
            indigo_core::PR_EPSILON,
            indigo_core::PR_MAX_ITERS,
        )
    }

    #[test]
    fn cpu_matches_serial() {
        for g in [
            toy::star(18),
            gen::gnp(150, 0.04, 13),
            gen::preferential_attachment(200, 3, 2),
        ] {
            let input = GraphInput::new(g);
            let (got, _) = cpu(&input, 3);
            assert!(close(&got, &reference(&input)), "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_serial() {
        for g in [toy::star(18), gen::gnp(120, 0.05, 13)] {
            let input = GraphInput::new(g);
            let (got, secs) = gpu(&input, rtx3090());
            assert!(close(&got, &reference(&input)), "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2).0.is_empty());
        assert!(gpu(&input, rtx3090()).0.is_empty());
    }
}
