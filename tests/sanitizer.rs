//! Tier-2: the style-conformance sanitizer's acceptance gates (DESIGN.md
//! §7.6). Compiled only with `--features sanitize`:
//!
//! * over the CI smoke slice, every `Deterministic` variant is free of
//!   value-changing races and no variant violates its labels;
//! * `NonDeterministic` CC/MIS/SSSP variants *do* exhibit (benign) races —
//!   the detector sees the conflicts §5.6 describes, it is not blind;
//! * seeded mutation: dropping the atomic at an RMW update site must be
//!   flagged as a label violation, on both the GPU and CPU paths.
//!
//! The collector is process-global and sessions are strictly sequential,
//! so every test serializes on one mutex (Rust runs tests on separate
//! threads).

#![cfg(feature = "sanitize")]

use indigo_exec::sanitize as collector;
use indigo_graph::gen::{Scale, SuiteGraph};
use indigo_harness::matrix::RunPlan;
use indigo_harness::sanitize::{run_plan, SanitizeRun, Verdict};
use indigo_styles::{Algorithm, AtomicKind, CppSchedule, Determinism, Granularity, Model, Update};
use std::sync::{Mutex, MutexGuard};

static SANITIZE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SANITIZE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The same slice `indigo-exp --smoke` runs (BFS + TC, CUDA thinned to
/// thread granularity / host atomics, C++ to blocked scheduling).
fn smoke_plan() -> RunPlan {
    RunPlan::for_algorithms(
        &[Algorithm::Bfs, Algorithm::Tc],
        &[Model::Cuda, Model::Cpp],
        Scale::Tiny,
        1,
    )
    .filter(|c| match c.model {
        Model::Cuda => {
            c.granularity == Some(Granularity::Thread) && c.atomic != Some(AtomicKind::CudaAtomic)
        }
        _ => c.cpp_schedule == Some(CppSchedule::Blocked),
    })
    .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat])
}

fn assert_no_failures(run: &SanitizeRun) {
    for c in &run.cells {
        assert_ne!(
            c.verdict,
            Verdict::Crashed,
            "{} on {} crashed: {:?}",
            c.cfg.name(),
            c.graph,
            c.findings
        );
        assert_ne!(
            c.verdict,
            Verdict::Violation,
            "{} on {} violated its labels: {:?}",
            c.cfg.name(),
            c.graph,
            c.findings
        );
    }
}

#[test]
fn smoke_slice_deterministic_variants_are_conflict_free() {
    let _g = lock();
    let run = run_plan(&smoke_plan(), |_, _| {});
    assert!(!run.cells.is_empty());
    assert_no_failures(&run);
    let mut det_cells = 0;
    for c in &run.cells {
        if c.cfg.determinism == Determinism::Deterministic {
            det_cells += 1;
            assert_eq!(
                c.report.racy(),
                0,
                "{} on {} ({}) shows value-changing races",
                c.cfg.name(),
                c.graph,
                c.target
            );
        }
    }
    assert!(det_cells > 0, "smoke slice lost its deterministic variants");
    assert_eq!(run.exit_code(), 0);
}

#[test]
fn nondeterministic_variants_show_detected_benign_races() {
    let _g = lock();
    for algo in [Algorithm::Cc, Algorithm::Mis, Algorithm::Sssp] {
        let plan = RunPlan::for_algorithms(&[algo], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| {
                c.determinism == Determinism::NonDeterministic
                    && c.granularity == Some(Granularity::Thread)
                    && c.atomic != Some(AtomicKind::CudaAtomic)
            })
            .with_graphs(vec![SuiteGraph::Rmat]);
        assert!(!plan.variants.is_empty(), "{algo:?} has no nondet variants");
        let run = run_plan(&plan, |_, _| {});
        assert_no_failures(&run);
        // the detector must SEE the races nondeterminism permits — a
        // detector that reports nothing anywhere proves nothing
        assert!(
            run.cells.iter().any(|c| c.report.conflicts() > 0),
            "{algo:?}: no nondeterministic cell showed any conflict"
        );
    }
}

/// Clears the mutation switch even when an assertion unwinds.
struct MutationGuard;

impl Drop for MutationGuard {
    fn drop(&mut self) {
        collector::set_mutation_drop_atomics(false);
    }
}

#[test]
fn dropping_an_atomic_is_flagged_as_violation() {
    let _g = lock();
    // Rmw-labeled relaxation variants on both substrates: the GPU
    // simulator's `gpu_min_update` and the CPU `MinOps::RmwAtomic` path
    let plan = RunPlan::for_algorithms(
        &[Algorithm::Bfs],
        &[Model::Cuda, Model::Cpp],
        Scale::Tiny,
        1,
    )
    .filter(|c| {
        c.update == Update::ReadModifyWrite
            && match c.model {
                Model::Cuda => {
                    c.granularity == Some(Granularity::Thread)
                        && c.atomic == Some(AtomicKind::Atomic)
                }
                _ => c.cpp_schedule == Some(CppSchedule::Blocked),
            }
    })
    .with_graphs(vec![SuiteGraph::Rmat]);

    // sanity: the same slice is violation-free without the mutation
    let clean = run_plan(&plan, |_, _| {});
    assert_no_failures(&clean);

    let _reset = MutationGuard;
    collector::set_mutation_drop_atomics(true);
    let mutated = run_plan(&plan, |_, _| {});
    let gpu_flagged = mutated.cells.iter().any(|c| {
        c.cfg.model == Model::Cuda
            && c.cfg.update == Update::ReadModifyWrite
            && c.verdict == Verdict::Violation
    });
    let cpu_flagged = mutated.cells.iter().any(|c| {
        c.cfg.model == Model::Cpp
            && c.cfg.update == Update::ReadModifyWrite
            && c.verdict == Verdict::Violation
    });
    assert!(gpu_flagged, "no GPU cell flagged the dropped atomic");
    assert!(cpu_flagged, "no CPU cell flagged the dropped atomic");
    assert_eq!(mutated.exit_code(), 2);
}
