//! Reusable frontier and scratch storage for CPU graph kernels
//! (DESIGN.md §7.7).
//!
//! The §5.17 tuned baselines and the style-variant CPU paths all iterate a
//! *frontier* (the set of active vertices) to a fixpoint. Before this layer
//! they allocated that state per level or per wave — an `O(n)`
//! `Vec<AtomicU32>` every BFS depth, a fresh `Mutex<Vec<_>>` per thread
//! every delta-stepping wave. This module provides the same data structures
//! with all storage retained across levels, waves, *and* kernel invocations
//! (leased from a process-wide [`PoolRegistry`], following the gpusim
//! `SimScratch` pattern of §7.4):
//!
//! * [`SparseFrontier`] — a double-buffered sparse vertex list whose "next"
//!   side is a set of per-thread *unsynchronized* push buffers
//!   ([`PushBuffers`]): no atomics, no mutexes, no false sharing on the
//!   push path, one serial drain at the level boundary.
//! * [`AtomicBitmap`] — a capacity-retaining dense frontier for the
//!   bottom-up/pull direction: membership tests touch 1 bit per vertex
//!   instead of a 4-byte level entry, a 32× cut in probe footprint.
//! * [`grained_for`] — serial-below-threshold loop dispatch: waking a
//!   worker team costs tens of microseconds, which dwarfs the work in the
//!   many near-empty frontier rounds of high-diameter graphs.
//! * capacity-retaining fill helpers for atomic scratch arrays and
//!   [`SharedSlice`], an index-disjoint parallel output writer.

use crate::{OmpPool, Schedule};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Iteration counts below this run serially on the caller: a parallel
/// region costs a team wake + barrier (tens of microseconds), which the
/// tiny frontiers of high-diameter graphs never amortize.
pub const SERIAL_GRAIN: usize = 4096;

/// `pool.parallel_for(n, ..)` for large `n`, a serial loop (with `tid` 0)
/// for small `n`. The body must therefore not rely on every worker being
/// invoked — only on each index arriving exactly once with a valid `tid`.
#[inline]
pub fn grained_for<F>(pool: &OmpPool, n: usize, schedule: Schedule, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n < SERIAL_GRAIN || pool.num_threads() == 1 {
        for i in 0..n {
            body(i, 0);
        }
    } else {
        pool.parallel_for(n, schedule, body);
    }
}

/// One per-thread push buffer on its own cache line, so two threads'
/// append cursors never share a line.
#[repr(align(64))]
struct PadBuf<T>(UnsafeCell<Vec<T>>);

/// Per-thread unsynchronized push buffers.
///
/// Each worker appends to its own `Vec` through [`PushBuffers::push`] — a
/// plain bounds-checked store, no atomic traffic — and a serial phase
/// drains all buffers. Buffer capacity is retained across drains and
/// across kernel invocations, so the steady state allocates nothing.
pub struct PushBuffers<T> {
    bufs: Vec<PadBuf<T>>,
}

// Safety: the UnsafeCell contents are only touched through `push` (whose
// contract makes accesses per-tid exclusive) and through `&mut self`
// methods; `T: Send` values may move across the drain boundary.
unsafe impl<T: Send> Sync for PushBuffers<T> {}
unsafe impl<T: Send> Send for PushBuffers<T> {}

impl<T> Default for PushBuffers<T> {
    fn default() -> Self {
        PushBuffers { bufs: Vec::new() }
    }
}

impl<T: Copy> PushBuffers<T> {
    /// Ensures `threads` buffers exist and empties them all (capacities are
    /// kept).
    pub fn reset(&mut self, threads: usize) {
        if self.bufs.len() < threads {
            self.bufs
                .resize_with(threads, || PadBuf(UnsafeCell::new(Vec::new())));
        }
        for b in &mut self.bufs {
            b.0.get_mut().clear();
        }
    }

    /// Appends `v` to thread `tid`'s buffer.
    ///
    /// # Safety
    ///
    /// At most one thread may push with a given `tid` at any moment.
    /// [`OmpPool::parallel_for`] bodies satisfy this by construction: each
    /// worker is handed a distinct `tid` for the whole region.
    #[inline]
    pub unsafe fn push(&self, tid: usize, v: T) {
        // Safety: per the contract above, this tid's cell has no other
        // accessor until the region barrier.
        let buf = unsafe { &mut *self.bufs[tid].0.get() };
        buf.push(v);
    }

    /// Serial drain: feeds every buffered value to `f` (in tid order, then
    /// push order — deterministic for a deterministic region), then clears
    /// the buffers keeping their capacity.
    pub fn drain(&mut self, mut f: impl FnMut(T)) {
        for b in &mut self.bufs {
            let buf = b.0.get_mut();
            for &v in buf.iter() {
                f(v);
            }
            buf.clear();
        }
    }

    /// Total buffered items (serial phases only).
    pub fn len(&mut self) -> usize {
        self.bufs.iter_mut().map(|b| b.0.get_mut().len()).sum()
    }

    /// True when nothing is buffered (serial phases only).
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }
}

/// A capacity-retaining dense bit set over vertex ids with atomic setters,
/// the bottom-up/pull frontier representation.
#[derive(Default)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Sizes the bitmap for `len` bits and zeroes it. Word storage is
    /// retained, so repeated resets on same-sized graphs allocate nothing.
    pub fn reset(&mut self, len: usize) {
        let need = len.div_ceil(64);
        if self.words.len() < need {
            self.words.resize_with(need, || AtomicU64::new(0));
        }
        self.len = len;
        self.clear();
    }

    /// Zeroes every bit (serial phases only; `O(len / 64)` plain stores).
    pub fn clear(&mut self) {
        let used = self.len.div_ceil(64);
        for w in &mut self.words[..used] {
            *w.get_mut() = 0;
        }
    }

    /// Sets bit `i` from a serial phase (no atomic RMW).
    #[inline]
    pub fn set_serial(&mut self, i: usize) {
        debug_assert!(i < self.len);
        *self.words[i / 64].get_mut() |= 1u64 << (i % 64);
    }

    /// Atomically sets bit `i`; returns true iff this call flipped it.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64].load(Ordering::Relaxed) & (1u64 << (i % 64)) != 0
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when sized for zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A double-buffered sparse frontier: a drained "current" vertex list plus
/// per-thread unsynchronized push buffers collecting the next level.
#[derive(Default)]
pub struct SparseFrontier {
    cur: Vec<u32>,
    next: PushBuffers<u32>,
}

impl SparseFrontier {
    /// Empties both sides and provisions `threads` push buffers
    /// (capacities retained).
    pub fn reset(&mut self, threads: usize) {
        self.cur.clear();
        self.next.reset(threads);
    }

    /// Appends a seed vertex to the current list (serial setup phase).
    pub fn seed(&mut self, v: u32) {
        self.cur.push(v);
    }

    /// The level currently being drained.
    #[inline]
    pub fn current(&self) -> &[u32] {
        &self.cur
    }

    /// Pushes `v` onto the next level from worker `tid`.
    ///
    /// # Safety
    ///
    /// Same contract as [`PushBuffers::push`]: one thread per `tid`.
    #[inline]
    pub unsafe fn push(&self, tid: usize, v: u32) {
        if indigo_obs::enabled() {
            indigo_obs::Counter::FrontierPushes.incr();
        }
        // Safety: forwarded contract.
        unsafe { self.next.push(tid, v) };
    }

    /// Makes the pushed next level current (serial phase). Returns the new
    /// frontier size and records it in the occupancy histogram.
    pub fn flip(&mut self) -> usize {
        self.cur.clear();
        let SparseFrontier { cur, next } = self;
        next.drain(|v| cur.push(v));
        if indigo_obs::enabled() {
            indigo_obs::Hist::FrontierOccupancy.record(self.cur.len() as u64);
        }
        self.cur.len()
    }
}

/// Resizes `vec` to `n` atomics all holding `value`, reusing the existing
/// allocation whenever capacity suffices.
pub fn fill_atomic_u32(vec: &mut Vec<AtomicU32>, n: usize, value: u32) {
    vec.resize_with(n, || AtomicU32::new(value));
    for cell in vec.iter_mut() {
        *cell.get_mut() = value;
    }
}

/// [`fill_atomic_u32`] for [`crate::sync::AtomicF32`] scratch.
pub fn fill_atomic_f32(vec: &mut Vec<crate::sync::AtomicF32>, n: usize, value: f32) {
    vec.resize_with(n, || crate::sync::AtomicF32::new(value));
    for cell in vec.iter_mut() {
        cell.store(value);
    }
}

/// A `&mut [T]` that can be written through a shared reference from a
/// parallel region, for building plain (non-atomic) output arrays in
/// place.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// Safety: writes are only allowed at distinct indices (see `write`), so
// concurrent use never aliases an element.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice for index-disjoint parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Stores `v` at index `i`.
    ///
    /// # Safety
    ///
    /// No two concurrent calls may target the same `i`, and nothing may
    /// read the slice until the region's barrier. A `parallel_for` body
    /// writing only at its own iteration index satisfies both.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        assert!(i < self.len);
        // Safety: in-bounds (checked above), exclusive per the contract.
        unsafe { self.ptr.add(i).write(v) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_buffers_collect_and_drain_in_tid_order() {
        let mut bufs: PushBuffers<u32> = PushBuffers::default();
        bufs.reset(3);
        let pool = OmpPool::new(3);
        pool.parallel_for(30, Schedule::Default, |i, tid| {
            // Safety: parallel_for hands each worker a distinct tid.
            unsafe { bufs.push(tid, i as u32) };
        });
        assert_eq!(bufs.len(), 30);
        let mut seen = Vec::new();
        bufs.drain(|v| seen.push(v));
        assert!(bufs.is_empty());
        seen.sort_unstable();
        assert_eq!(seen, (0..30).collect::<Vec<_>>());
        // static scheduling + tid-ordered drain is deterministic
        bufs.reset(2);
        unsafe {
            bufs.push(1, 9);
            bufs.push(0, 4);
            bufs.push(0, 5);
        }
        let mut order = Vec::new();
        bufs.drain(|v| order.push(v));
        assert_eq!(order, vec![4, 5, 9]);
    }

    #[test]
    fn push_buffers_retain_capacity() {
        let mut bufs: PushBuffers<(u32, u32)> = PushBuffers::default();
        bufs.reset(2);
        for _ in 0..100 {
            unsafe { bufs.push(0, (1, 2)) };
        }
        bufs.drain(|_| {});
        let cap_before = unsafe { (*bufs.bufs[0].0.get()).capacity() };
        assert!(cap_before >= 100);
        bufs.reset(2);
        for _ in 0..100 {
            unsafe { bufs.push(0, (3, 4)) };
        }
        assert_eq!(unsafe { (*bufs.bufs[0].0.get()).capacity() }, cap_before);
    }

    #[test]
    fn bitmap_set_test_clear() {
        let mut bm = AtomicBitmap::default();
        bm.reset(130);
        assert_eq!(bm.len(), 130);
        assert!(bm.set(0));
        assert!(!bm.set(0), "second set reports already-present");
        bm.set_serial(129);
        assert!(bm.test(0) && bm.test(129) && !bm.test(64));
        bm.clear();
        assert!(!bm.test(0) && !bm.test(129));
        // shrinking reset reuses the words and re-zeroes
        bm.set_serial(10);
        bm.reset(64);
        assert!(!bm.test(10));
    }

    #[test]
    fn sparse_frontier_round_trip() {
        let mut f = SparseFrontier::default();
        f.reset(2);
        f.seed(7);
        assert_eq!(f.current(), &[7]);
        unsafe {
            f.push(0, 1);
            f.push(1, 2);
        }
        assert_eq!(f.flip(), 2);
        let mut level: Vec<u32> = f.current().to_vec();
        level.sort_unstable();
        assert_eq!(level, vec![1, 2]);
        assert_eq!(f.flip(), 0, "nothing pushed -> empty frontier");
    }

    #[test]
    fn grained_for_covers_small_and_large() {
        let pool = OmpPool::new(2);
        for n in [0, 1, SERIAL_GRAIN - 1, SERIAL_GRAIN + 17] {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            grained_for(&pool, n, Schedule::Default, |i, tid| {
                assert!(tid < 2);
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn fill_helpers_reuse_capacity() {
        let mut v = Vec::new();
        fill_atomic_u32(&mut v, 100, 7);
        assert!(v.iter_mut().all(|c| *c.get_mut() == 7));
        let cap = v.capacity();
        let ptr = v.as_ptr();
        fill_atomic_u32(&mut v, 50, 9);
        assert_eq!((v.len(), v.capacity()), (50, cap));
        assert_eq!(v.as_ptr(), ptr, "shrinking fill must not reallocate");
        assert!(v.iter_mut().all(|c| *c.get_mut() == 9));
    }

    #[test]
    fn shared_slice_parallel_writes_land() {
        let pool = OmpPool::new(3);
        let mut out = vec![0u32; 100];
        let shared = SharedSlice::new(&mut out);
        pool.parallel_for(100, Schedule::Default, |i, _| {
            // Safety: one write per index, read only after the barrier.
            unsafe { shared.write(i, i as u32 * 3) };
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 3));
    }
}
