//! Tables 1–5 of the paper.

use crate::report::Report;
use indigo_graph::gen::{suite_graph, Scale, SUITE_GRAPHS};
use indigo_graph::stats::GraphStats;
use indigo_styles::applicability;

/// Table 1: the six graph problems.
pub fn table1() -> Report {
    let mut r = Report::new("table1", "Graph problems used in the study");
    r.line("Category     | Name and abbreviation");
    r.line("Connectivity | Connected Components (CC)");
    r.line("Covering     | Maximal Independent Set (MIS)");
    r.line("Eigenvector  | PageRank (PR)");
    r.line("Substructure | Triangle Counting (TC)");
    r.line("Shortest path| Breadth-First Search (BFS), Single Source Shortest Path (SSSP)");
    r
}

/// Table 2: style applicability matrix (derived from the enumerator).
pub fn table2() -> Report {
    let mut r = Report::new("table2", "Included implementation styles (derived)");
    for line in applicability::render_matrix().lines() {
        r.line(line);
    }
    r
}

/// Table 3: number of code versions per model and algorithm.
pub fn table3() -> Report {
    let mut r = Report::new(
        "table3",
        "Number of code versions (paper: 754/176/176 = 1106; ours below)",
    );
    for line in applicability::render_counts().lines() {
        r.line(line);
    }
    r
}

/// Tables 4 + 5: input graph information at the given scale.
pub fn tables45(scale: Scale) -> Report {
    let mut r = Report::new(
        "table45",
        format!("Graph and degree information at {scale:?} scale (paper Tables 4/5)"),
    );
    r.line(
        "name | nodes | directed edges | size | d_avg | d_max | d>=32 | d>=512 | diam(lb) | comps",
    );
    r.csv_row("name,paper_input,nodes,edges,size_mb,avg_degree,max_degree,pct_ge32,pct_ge512,diameter_lb,components");
    for which in SUITE_GRAPHS {
        let g = suite_graph(which, scale);
        let s = GraphStats::compute(&g);
        r.line(s.table_row(which.label()));
        r.csv_row(format!(
            "{},{},{},{},{:.2},{:.2},{},{:.2},{:.4},{},{}",
            which.label(),
            which.paper_input(),
            s.nodes,
            s.edges,
            s.size_mb,
            s.avg_degree,
            s.max_degree,
            s.pct_deg_ge32,
            s.pct_deg_ge512,
            s.diameter_lb,
            s.components
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        assert!(table1().render().contains("PageRank"));
        assert!(table2().render().contains("direction:vertex"));
        assert!(table3().render().contains("CUDA"));
        let t45 = tables45(Scale::Tiny);
        assert!(t45.render().contains("road"));
        assert_eq!(t45.csv.len(), 6); // header + 5 graphs
    }
}
