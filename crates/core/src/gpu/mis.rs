//! GPU maximal independent set (the CUDA analog of [`crate::cpu::mis`]).
//!
//! Same priority-greedy fixpoint, structured the way CUDA MIS codes are:
//! every iteration runs a *blocking* kernel A at the configured granularity
//! (stamping vertices that see a better undecided neighbor, and propagating
//! `Out` per the flow style) followed by a thread-granularity decision
//! kernel B. Cross-lane joins are unnecessary: each lane stamps the shared
//! per-vertex `blocked` slot with `atomicMax`, exactly how a real kernel
//! avoids warp-wide reductions here.

use super::{assign_of, atomic_kind_of, persistent_of, DeviceGraph};
use crate::serial::mis_hash;
use indigo_gpusim::{Assign, GpuBuf, LaneCtx, Sim};
use indigo_styles::{Determinism, Direction, Flow, StyleConfig};

const UNDECIDED: u32 = 0;
const IN: u32 = 1;
const OUT: u32 = 2;

/// Runs the MIS variant `cfg`; returns membership flags and iterations.
pub fn run(cfg: &StyleConfig, dg: &DeviceGraph, sim: &mut Sim) -> (Vec<bool>, usize) {
    let n = dg.n;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let akind = atomic_kind_of(cfg);
    let assign = assign_of(cfg);
    let persistent = persistent_of(cfg);
    let flow = cfg.flow.expect("MIS has push and pull variants");
    let det = cfg.determinism == Determinism::Deterministic;
    let edge_based = cfg.direction == Direction::EdgeBased;
    let data_driven = cfg.drive.is_data_driven();
    let seed = crate::MIS_SEED;

    let status = GpuBuf::new(n, UNDECIDED).with_kind(akind);
    let status_read = det.then(|| GpuBuf::new(n, UNDECIDED).with_kind(akind));
    let blocked = GpuBuf::new(n, 0).with_kind(akind);
    // iteration stamp of each vertex's In decision (push propagation)
    let fresh = GpuBuf::new(n, 0);
    let hash: Vec<u32> = (0..n as u32).map(|v| mis_hash(v, seed)).collect();
    let prio = GpuBuf::from_slice(&hash);

    let items_total = if edge_based { dg.m } else { n };
    // no-duplicates worklists (the only MIS drive besides topology)
    let wl = data_driven.then(|| {
        let cur = GpuBuf::new(items_total + 1, 0);
        let cur_size = GpuBuf::new(1, 0).with_kind(akind);
        let nxt = GpuBuf::new(items_total + 1, 0);
        let nxt_size = GpuBuf::new(1, 0).with_kind(akind);
        let stamps = GpuBuf::new(items_total, 0).with_kind(akind);
        for i in 0..items_total {
            cur.host_write(i, i as u32);
        }
        cur_size.host_write(0, items_total as u32);
        (cur, cur_size, nxt, nxt_size, stamps)
    });

    // (priority, id) comparison: one hash load per side
    let beats = |ctx: &mut LaneCtx, a: u32, b: u32| -> bool {
        let pa = ctx.ld(&prio, a as usize);
        let pb = ctx.ld(&prio, b as usize);
        (pa, a) > (pb, b)
    };

    let mut iterations = 0u32;
    let mut swap = false;
    loop {
        iterations += 1;
        let iter = iterations;
        let rd = status_read.as_ref().unwrap_or(&status);

        // kernel A: blocking stamps + Out propagation
        let edge_body = |ctx: &mut LaneCtx, e: usize| {
            let v = ctx.ld(&dg.src, e);
            let u = ctx.ld(&dg.dst, e);
            let sv = ctx.ld(rd, v as usize);
            let su = ctx.ld(rd, u as usize);
            match flow {
                Flow::Push => {
                    if sv == IN && su == UNDECIDED {
                        ctx.st(&status, u as usize, OUT);
                    }
                }
                Flow::Pull => {
                    if su == IN && sv == UNDECIDED {
                        ctx.st(&status, v as usize, OUT);
                    }
                }
            }
            if sv == UNDECIDED && su == UNDECIDED && beats(ctx, u, v) {
                ctx.atomic_max(&blocked, v as usize, iter);
            }
        };
        let vertex_body = |ctx: &mut LaneCtx, v: u32| {
            let sv = ctx.ld(rd, v as usize);
            // early exit for vertices with nothing left to do: pull only ever
            // writes to itself, push-In still has Outs to propagate
            match flow {
                Flow::Push if sv == OUT => return,
                Flow::Pull if sv != UNDECIDED => return,
                _ => {}
            }
            let beg = ctx.ld(&dg.row, v as usize) as usize;
            let end = ctx.ld(&dg.row, v as usize + 1) as usize;
            let mut i = beg + ctx.lane();
            let lanes = ctx.lane_count();
            while i < end {
                let u = ctx.ld(&dg.nbr, i);
                let su = ctx.ld(rd, u as usize);
                match flow {
                    Flow::Push => {
                        if sv == IN && su == UNDECIDED {
                            ctx.st(&status, u as usize, OUT);
                        }
                    }
                    Flow::Pull => {
                        if su == IN && sv == UNDECIDED {
                            ctx.st(&status, v as usize, OUT);
                        }
                    }
                }
                if sv == UNDECIDED && su == UNDECIDED && beats(ctx, u, v) {
                    ctx.atomic_max(&blocked, v as usize, iter);
                }
                i += lanes;
            }
        };

        // vertex-based push decides *and* pushes Out marks in one kernel
        // (as Listing 4a's flow implies): with a data-driven worklist the
        // winner leaves the list immediately, so deferring Out propagation
        // to the next iteration's kernel A would lose it.
        let decide = |sim: &mut Sim| {
            if edge_based || flow == Flow::Pull {
                launch_decide(sim, n, rd, &status, &blocked, iter);
                return;
            }
            launch_decide_fresh(sim, n, rd, &status, &blocked, &fresh, iter);
            {
                // push propagation from this iteration's winners: a winner
                // is IN now but was not in the read view (`fresh` stamps
                // disambiguate for the non-deterministic single-buffer case,
                // where `rd` aliases `status`)
                sim.launch(n, assign, persistent, |ctx, vi| {
                    if ctx.ld(&fresh, vi) != iter {
                        return;
                    }
                    let beg = ctx.ld(&dg.row, vi) as usize;
                    let end = ctx.ld(&dg.row, vi + 1) as usize;
                    let lanes = ctx.lane_count();
                    let mut i = beg + ctx.lane();
                    while i < end {
                        let u = ctx.ld(&dg.nbr, i);
                        if ctx.ld(&status, u as usize) == UNDECIDED {
                            ctx.st(&status, u as usize, OUT);
                        }
                        i += lanes;
                    }
                });
            }
        };

        match &wl {
            Some((a, a_size, b, b_size, stamps)) => {
                let (cur, cur_size, nxt, nxt_size) = if swap {
                    (b, b_size, a, a_size)
                } else {
                    (a, a_size, b, b_size)
                };
                let len = cur_size.host_read(0) as usize;
                sim.launch(len, assign, persistent, |ctx, idx| {
                    let item = ctx.ld(cur, idx);
                    if edge_based {
                        edge_body(ctx, item as usize);
                    } else {
                        vertex_body(ctx, item);
                    }
                });
                // kernel B before repopulation so fresh decisions are seen
                decide(sim);
                // repopulate: still-live items move to the next list
                sim.launch(len, Assign::ThreadPerItem, persistent, |ctx, idx| {
                    let item = ctx.ld(cur, idx);
                    let live = if edge_based {
                        let v = ctx.ld(&dg.src, item as usize);
                        let u = ctx.ld(&dg.dst, item as usize);
                        ctx.ld(&status, v as usize) == UNDECIDED
                            || ctx.ld(&status, u as usize) == UNDECIDED
                    } else {
                        ctx.ld(&status, item as usize) == UNDECIDED
                    };
                    if live && ctx.atomic_max(stamps, item as usize, iter) != iter {
                        let slot = ctx.atomic_add(nxt_size, 0, 1) as usize;
                        ctx.st(nxt, slot, item);
                    }
                });
                cur_size.host_write(0, 0);
                swap = !swap;
                if let Some(r) = &status_read {
                    copy(sim, r, &status);
                }
                if nxt_size.host_read(0) == 0 {
                    break;
                }
            }
            None => {
                if edge_based {
                    sim.launch(dg.m, assign, persistent, |ctx, e| edge_body(ctx, e));
                } else {
                    sim.launch(n, assign, persistent, |ctx, v| vertex_body(ctx, v as u32));
                }
                decide(sim);
                if let Some(r) = &status_read {
                    copy(sim, r, &status);
                }
                if (0..n).all(|i| status.host_read(i) != UNDECIDED) {
                    break;
                }
            }
        }
    }

    let set = (0..n).map(|i| status.host_read(i) == IN).collect();
    (set, iterations as usize)
}

/// Kernel B: an undecided vertex not blocked this iteration joins the set.
fn launch_decide(
    sim: &mut Sim,
    n: usize,
    rd: &GpuBuf,
    status: &GpuBuf,
    blocked: &GpuBuf,
    iter: u32,
) {
    sim.launch(n, Assign::ThreadPerItem, false, |ctx, vi| {
        if ctx.ld(rd, vi) == UNDECIDED
            && ctx.ld(status, vi) == UNDECIDED
            && ctx.ld(blocked, vi) != iter
        {
            ctx.st(status, vi, IN);
        }
    });
}

/// `launch_decide` variant that also stamps the winners' iteration (used by
/// vertex-based push to find fresh winners for Out propagation).
fn launch_decide_fresh(
    sim: &mut Sim,
    n: usize,
    rd: &GpuBuf,
    status: &GpuBuf,
    blocked: &GpuBuf,
    fresh: &GpuBuf,
    iter: u32,
) {
    sim.launch(n, Assign::ThreadPerItem, false, |ctx, vi| {
        if ctx.ld(rd, vi) == UNDECIDED
            && ctx.ld(status, vi) == UNDECIDED
            && ctx.ld(blocked, vi) != iter
        {
            ctx.st(status, vi, IN);
            ctx.st(fresh, vi, iter);
        }
    });
}

fn copy(sim: &mut Sim, dst: &GpuBuf, src: &GpuBuf) {
    sim.launch(src.len(), Assign::ThreadPerItem, false, |ctx, i| {
        let v = ctx.ld(src, i);
        ctx.st(dst, i, v);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serial, GraphInput};
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};
    use indigo_styles::{enumerate, Algorithm, Model};

    #[test]
    fn all_gpu_mis_variants_compute_the_greedy_set() {
        let graphs = vec![
            toy::path(11),
            toy::complete(6),
            toy::star(8),
            gen::gnp(40, 0.12, 7),
        ];
        for g in graphs {
            let input = GraphInput::new(g);
            let dg = DeviceGraph::upload(&input);
            let expect = serial::mis(&input.csr, crate::MIS_SEED);
            for cfg in enumerate::variants(Algorithm::Mis, Model::Cuda) {
                let mut sim = Sim::new(rtx3090());
                let (got, iters) = run(&cfg, &dg, &mut sim);
                assert!(iters >= 1);
                assert_eq!(got, expect, "{} on {}", cfg.name(), input.name());
            }
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        let dg = DeviceGraph::upload(&input);
        let cfg = StyleConfig::baseline(Algorithm::Mis, Model::Cuda);
        let mut sim = Sim::new(rtx3090());
        let (set, _) = run(&cfg, &dg, &mut sim);
        assert!(set.is_empty());
    }
}
