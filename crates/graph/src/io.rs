//! Loaders and writers for the file formats of the paper's input sources.
//!
//! * DIMACS shortest-path `.gr` (the `USA-road-d.*` files) — weighted.
//! * SNAP-style whitespace edge lists (`soc-LiveJournal1.txt`) — unweighted,
//!   `#` comments, ids remapped densely.
//! * MatrixMarket `coordinate pattern` (`.mtx`, SuiteSparse) — 1-based.
//!
//! All loaders symmetrize and deduplicate through [`GraphBuilder`], matching
//! the paper's preprocessing (§4.2: every undirected edge stored as two
//! directed edges).

use crate::{Csr, GraphBuilder, NodeId, Weight};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the file, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> LoadError {
    LoadError::Parse(msg.into())
}

/// Loads a DIMACS `.gr` file (directed arcs `a u v w`, 1-based ids).
pub fn load_dimacs_gr(path: impl AsRef<Path>) -> Result<Csr, LoadError> {
    let file = std::fs::File::open(&path)?;
    let name = file_stem(&path);
    read_dimacs_gr(BufReader::new(file), name)
}

/// Parses DIMACS `.gr` from any reader (exposed for tests).
pub fn read_dimacs_gr(r: impl Read, name: String) -> Result<Csr, LoadError> {
    let reader = BufReader::new(r);
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                let kind = it.next().ok_or_else(|| parse_err("p line missing kind"))?;
                if kind != "sp" {
                    return Err(parse_err(format!("unsupported problem kind {kind}")));
                }
                let n: usize = next_num(&mut it, lineno)?;
                let _m: usize = next_num(&mut it, lineno)?;
                builder = Some(GraphBuilder::new_weighted(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err("arc before problem line"))?;
                let u: usize = next_num(&mut it, lineno)?;
                let v: usize = next_num(&mut it, lineno)?;
                let w: Weight = next_num(&mut it, lineno)?;
                if u == 0 || v == 0 {
                    return Err(parse_err(format!("line {}: ids are 1-based", lineno + 1)));
                }
                b.add_weighted_edge((u - 1) as NodeId, (v - 1) as NodeId, w.max(1));
            }
            Some(other) => {
                return Err(parse_err(format!(
                    "line {}: unknown record '{other}'",
                    lineno + 1
                )))
            }
        }
    }
    builder
        .map(|b| b.build(name))
        .ok_or_else(|| parse_err("missing problem line"))
}

/// Loads a SNAP-style edge list: `# comments`, `src<TAB>dst` per line.
/// Vertex ids are remapped to a dense `0..n` range in first-seen order.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Csr, LoadError> {
    let file = std::fs::File::open(&path)?;
    let name = file_stem(&path);
    read_edge_list(BufReader::new(file), name)
}

/// Parses a SNAP-style edge list from any reader (exposed for tests).
pub fn read_edge_list(r: impl Read, name: String) -> Result<Csr, LoadError> {
    let reader = BufReader::new(r);
    let mut remap: HashMap<u64, NodeId> = HashMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_ascii_whitespace();
        let u: u64 = next_num(&mut it, lineno)?;
        let v: u64 = next_num(&mut it, lineno)?;
        let mut id = |raw: u64| -> NodeId {
            let next = remap.len() as NodeId;
            *remap.entry(raw).or_insert(next)
        };
        let (a, b) = (id(u), id(v));
        edges.push((a, b));
    }
    let mut builder = GraphBuilder::new(remap.len());
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    Ok(builder.build(name))
}

/// Loads a MatrixMarket `matrix coordinate` file (1-based; pattern or
/// weighted-real entries — real weights are ignored, per the paper's use of
/// synthetic weights on non-road inputs).
pub fn load_matrix_market(path: impl AsRef<Path>) -> Result<Csr, LoadError> {
    let file = std::fs::File::open(&path)?;
    let name = file_stem(&path);
    read_matrix_market(BufReader::new(file), name)
}

/// Parses MatrixMarket from any reader (exposed for tests).
pub fn read_matrix_market(r: impl Read, name: String) -> Result<Csr, LoadError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    if !header.starts_with("%%MatrixMarket matrix coordinate") {
        return Err(parse_err("not a MatrixMarket coordinate file"));
    }
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_ascii_whitespace();
        if builder.is_none() {
            let rows: usize = next_num(&mut it, lineno)?;
            let cols: usize = next_num(&mut it, lineno)?;
            let _nnz: usize = next_num(&mut it, lineno)?;
            if rows != cols {
                return Err(parse_err("adjacency matrix must be square"));
            }
            builder = Some(GraphBuilder::new(rows));
            continue;
        }
        let b = builder.as_mut().unwrap();
        let u: usize = next_num(&mut it, lineno)?;
        let v: usize = next_num(&mut it, lineno)?;
        if u == 0 || v == 0 {
            return Err(parse_err(format!("line {}: ids are 1-based", lineno + 1)));
        }
        b.add_edge((u - 1) as NodeId, (v - 1) as NodeId);
    }
    builder
        .map(|b| b.build(name))
        .ok_or_else(|| parse_err("missing size line"))
}

/// Writes `g` as a DIMACS `.gr` file (directed arcs, synthetic weights if
/// the graph is unweighted). Useful for exporting generated inputs.
pub fn write_dimacs_gr(g: &Csr, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "c generated by indigo-rs from {}", g.name())?;
    writeln!(w, "p sp {} {}", g.num_nodes(), g.num_edges())?;
    for (v, u, i) in g.iter_edges() {
        let wt = if g.is_weighted() {
            g.weight_at(i)
        } else {
            crate::weights::edge_weight(v, u)
        };
        writeln!(w, "a {} {} {}", v + 1, u + 1, wt)?;
    }
    Ok(())
}

fn file_stem(path: impl AsRef<Path>) -> String {
    path.as_ref()
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "graph".to_string())
}

fn next_num<T: std::str::FromStr>(
    it: &mut std::str::SplitAsciiWhitespace<'_>,
    lineno: usize,
) -> Result<T, LoadError> {
    it.next()
        .ok_or_else(|| parse_err(format!("line {}: missing field", lineno + 1)))?
        .parse()
        .map_err(|_| parse_err(format!("line {}: bad number", lineno + 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_round_trip() {
        let g = crate::gen::toy::weighted_diamond();
        let mut buf = Vec::new();
        write_dimacs_gr(&g, &mut buf).unwrap();
        let g2 = read_dimacs_gr(&buf[..], "weighted-diamond".into()).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(g.neighbors(v), g2.neighbors(v));
            assert_eq!(g.neighbor_weights(v), g2.neighbor_weights(v));
        }
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(read_dimacs_gr(&b"x nonsense"[..], "g".into()).is_err());
        assert!(read_dimacs_gr(&b"a 1 2 3"[..], "g".into()).is_err());
        assert!(read_dimacs_gr(&b"p sp 2 1\na 0 1 5"[..], "g".into()).is_err());
    }

    #[test]
    fn edge_list_remaps_ids() {
        let text = b"# comment\n100 200\n200 300\n100 300\n";
        let g = read_edge_list(&text[..], "el".into()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn edge_list_self_loops_dropped() {
        let g = read_edge_list(&b"1 1\n1 2\n"[..], "el".into()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn matrix_market_basic() {
        let text = b"%%MatrixMarket matrix coordinate pattern symmetric\n% c\n3 3 2\n1 2\n2 3\n";
        let g = read_matrix_market(&text[..], "mm".into()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn matrix_market_rejects_non_square() {
        let text = b"%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n";
        assert!(read_matrix_market(&text[..], "mm".into()).is_err());
    }

    #[test]
    fn matrix_market_rejects_wrong_header() {
        assert!(read_matrix_market(&b"hello\n1 1 0\n"[..], "mm".into()).is_err());
    }
}
