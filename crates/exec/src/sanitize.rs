//! Dynamic style-conformance sanitizer (DESIGN.md §7.6).
//!
//! A shadow-memory conflict detector behind the zero-cost `sanitize`
//! feature, mirroring the `telemetry` DCE pattern in `indigo-obs`: with the
//! feature off every entry point is an empty `#[inline]` function and
//! [`enabled`] is `const false`, so instrumented hot paths compile to
//! nothing. With it on, the GPU simulator's access stream and the CPU
//! models' update/critical-section operations feed per-address shadow
//! cells, and every synchronization *region* boundary (kernel launch end,
//! `omp parallel` region end, C++ thread join) classifies the cells it saw:
//!
//! * **racy** — value-changing write/write or read/write between plain
//!   (unsynchronized) accesses of distinct threads;
//! * **benign-idempotent** — conflicting plain writes that all stored one
//!   identical value (the `changed`-flag and MIS `OUT`-store patterns §5.6
//!   calls out as harmless);
//! * **benign-mixed** — a plain read racing an atomic/locked update of the
//!   same address (the hoisted-load pattern of non-deterministic RMW
//!   data-driven variants).
//!
//! The per-address state lives below `gpusim`/`core` in the crate graph so
//! both the simulator ([`record`] from `LaneCtx`) and the CPU substrate
//! (`MinOps`, `omp_critical`) can report into one collector. Sessions are
//! armed per measurement cell by the harness ([`session_begin`] /
//! [`session_end`]); recording is a no-op while disarmed, so sanitize
//! builds can still run ordinary measurements.
//!
//! Semantic *update events* ([`note_update`]) sit one level above raw
//! accesses: relaxation updates report whether they went through a single
//! atomic RMW or the load/compare/store split, which is what lets the
//! harness check the paper's RW-vs-RMW labels (§5.5) independently of the
//! access stream. [`mutate_drop_atomic`] supports mutation tests: when set,
//! RMW update sites deliberately fall back to the split, and the sanitizer
//! must flag the label violation.

/// Compile-time switch; `true` iff the `sanitize` feature is on.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

/// One recorded shared-memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOp {
    /// Plain (unsynchronized) load.
    Load,
    /// Plain (unsynchronized) store of this value.
    Store(u32),
    /// Single atomic read-modify-write (host atomic / `atomicMin` class).
    AtomicRmw,
    /// `cuda::atomic` read-modify-write (seq_cst, system scope).
    CudaAtomicRmw,
}

/// Aggregate findings of one sanitize session (one measurement cell).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Synchronization regions flushed (kernel launches / parallel regions).
    pub regions: u64,
    /// Plain loads recorded.
    pub loads: u64,
    /// Plain stores recorded.
    pub stores: u64,
    /// Host-class atomic RMWs recorded.
    pub atomic_rmws: u64,
    /// `cuda::atomic`-class RMWs recorded.
    pub cuda_atomic_rmws: u64,
    /// Operations recorded while holding a critical-section lock.
    pub locked_ops: u64,
    /// Value-changing write/write races between plain accesses.
    pub racy_ww: u64,
    /// Value-changing read/write races between plain accesses.
    pub racy_rw: u64,
    /// Conflicting plain writes that all wrote one identical value.
    pub benign_idempotent: u64,
    /// Plain reads racing an atomic/locked update of the same address.
    pub benign_mixed: u64,
    /// Update events that went through a single atomic RMW.
    pub updates_rmw: u64,
    /// Update events that used the load/compare/store split.
    pub updates_split: u64,
}

impl SanitizeReport {
    /// Total conflicting addresses observed, benign or not.
    pub fn conflicts(&self) -> u64 {
        self.racy_ww + self.racy_rw + self.benign_idempotent + self.benign_mixed
    }

    /// Value-changing (outcome-affecting) races only.
    pub fn racy(&self) -> u64 {
        self.racy_ww + self.racy_rw
    }

    /// Folds another report into this one (summary aggregation).
    pub fn merge(&mut self, other: &SanitizeReport) {
        self.regions += other.regions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomic_rmws += other.atomic_rmws;
        self.cuda_atomic_rmws += other.cuda_atomic_rmws;
        self.locked_ops += other.locked_ops;
        self.racy_ww += other.racy_ww;
        self.racy_rw += other.racy_rw;
        self.benign_idempotent += other.benign_idempotent;
        self.benign_mixed += other.benign_mixed;
        self.updates_rmw += other.updates_rmw;
        self.updates_split += other.updates_split;
    }
}

#[cfg(feature = "sanitize")]
mod imp {
    use super::{AccessOp, SanitizeReport};
    use std::cell::Cell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{LazyLock, Mutex};

    /// CPU thread ids live in a disjoint namespace from simulated GPU
    /// thread ids (which are dense small integers).
    const CPU_TID_BASE: u64 = 1 << 48;

    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);
    static MUTATE_DROP_ATOMICS: AtomicBool = AtomicBool::new(false);
    static NEXT_CPU_TID: AtomicU64 = AtomicU64::new(CPU_TID_BASE);

    thread_local! {
        static CPU_TID: u64 = NEXT_CPU_TID.fetch_add(1, Ordering::Relaxed);
        static CRITICAL_DEPTH: Cell<u32> = const { Cell::new(0) };
    }

    /// Up to two distinct thread ids; `n == 2` means "two or more".
    /// Two distinct ids are enough to decide every conflict predicate the
    /// classifier uses (≥2 distinct writers; a reader/syncer differing from
    /// a single writer), so the set never needs to grow further.
    #[derive(Clone, Copy, Default)]
    struct TidSet {
        a: u64,
        b: u64,
        n: u8,
    }

    impl TidSet {
        fn insert(&mut self, tid: u64) {
            match self.n {
                0 => {
                    self.a = tid;
                    self.n = 1;
                }
                1 if self.a != tid => {
                    self.b = tid;
                    self.n = 2;
                }
                _ => {}
            }
        }

        fn is_empty(&self) -> bool {
            self.n == 0
        }

        /// At least two distinct thread ids recorded.
        fn multi(&self) -> bool {
            self.n >= 2
        }

        /// Contains a thread id other than `tid`.
        fn has_other_than(&self, tid: u64) -> bool {
            match self.n {
                0 => false,
                1 => self.a != tid,
                _ => self.a != tid || self.b != tid,
            }
        }
    }

    /// Shadow state of one address within the current region.
    #[derive(Clone, Copy, Default)]
    struct Shadow {
        /// Plain-store threads.
        writers: TidSet,
        /// Plain-load threads.
        readers: TidSet,
        /// Synchronized accessors (atomic RMW or lock-protected).
        sync: TidSet,
        /// Value of the first plain store.
        first_val: u32,
        /// Every plain store so far wrote `first_val`.
        same_value: bool,
    }

    #[derive(Default)]
    pub(super) struct State {
        cells: HashMap<u64, Shadow>,
        report: SanitizeReport,
    }

    pub(super) static STATE: LazyLock<Mutex<State>> = LazyLock::new(Mutex::default);

    pub(super) fn cpu_tid() -> u64 {
        CPU_TID.with(|t| *t)
    }

    pub(super) fn critical_enter() {
        CRITICAL_DEPTH.with(|d| d.set(d.get() + 1));
    }

    pub(super) fn critical_exit() {
        CRITICAL_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }

    pub(super) fn in_critical() -> bool {
        CRITICAL_DEPTH.with(|d| d.get() > 0)
    }

    pub(super) fn set_mutation(on: bool) {
        MUTATE_DROP_ATOMICS.store(on, Ordering::Relaxed);
    }

    pub(super) fn mutation_on() -> bool {
        MUTATE_DROP_ATOMICS.load(Ordering::Relaxed)
    }

    pub(super) fn record(tid: u64, addr: u64, op: AccessOp) {
        let locked = in_critical();
        let mut st = STATE.lock().expect("sanitizer state poisoned");
        let st = &mut *st;
        let cell = st.cells.entry(addr).or_default();
        if locked {
            st.report.locked_ops += 1;
            cell.sync.insert(tid);
            return;
        }
        match op {
            AccessOp::Load => {
                st.report.loads += 1;
                cell.readers.insert(tid);
            }
            AccessOp::Store(v) => {
                st.report.stores += 1;
                if cell.writers.is_empty() {
                    cell.first_val = v;
                    cell.same_value = true;
                } else if v != cell.first_val {
                    cell.same_value = false;
                }
                cell.writers.insert(tid);
            }
            AccessOp::AtomicRmw => {
                st.report.atomic_rmws += 1;
                cell.sync.insert(tid);
            }
            AccessOp::CudaAtomicRmw => {
                st.report.cuda_atomic_rmws += 1;
                cell.sync.insert(tid);
            }
        }
    }

    pub(super) fn note_update(rmw: bool) {
        let mut st = STATE.lock().expect("sanitizer state poisoned");
        if rmw {
            st.report.updates_rmw += 1;
        } else {
            st.report.updates_split += 1;
        }
    }

    /// Classifies one shadow cell into the report's conflict buckets.
    fn classify(cell: &Shadow, report: &mut SanitizeReport) {
        // plain-plain conflicts first: ≥2 distinct plain writers, a plain
        // reader racing a plain writer, or a plain writer racing a
        // synchronized update of the same address
        let ww = cell.writers.multi();
        let rw = match cell.writers.n {
            0 => false,
            1 => cell.readers.has_other_than(cell.writers.a),
            _ => !cell.readers.is_empty(),
        };
        let wsync = match cell.writers.n {
            0 => false,
            1 => cell.sync.has_other_than(cell.writers.a),
            _ => !cell.sync.is_empty(),
        };
        if ww || rw || wsync {
            if cell.same_value {
                report.benign_idempotent += 1;
            } else if ww {
                report.racy_ww += 1;
            } else {
                report.racy_rw += 1;
            }
            return;
        }
        // no conflicting plain writes: a plain read racing an atomic or
        // locked update is the benign mixed pattern
        let rsync = match cell.sync.n {
            0 => false,
            1 => cell.readers.has_other_than(cell.sync.a),
            _ => !cell.readers.is_empty(),
        };
        if rsync {
            report.benign_mixed += 1;
        }
    }

    pub(super) fn region_flush() {
        let mut st = STATE.lock().expect("sanitizer state poisoned");
        let st = &mut *st;
        st.report.regions += 1;
        for cell in st.cells.values() {
            classify(cell, &mut st.report);
        }
        st.cells.clear();
    }

    pub(super) fn session_begin() {
        let mut st = STATE.lock().expect("sanitizer state poisoned");
        st.cells.clear();
        st.report = SanitizeReport::default();
        drop(st);
        ARMED.store(true, Ordering::SeqCst);
    }

    pub(super) fn session_end() -> SanitizeReport {
        ARMED.store(false, Ordering::SeqCst);
        let mut st = STATE.lock().expect("sanitizer state poisoned");
        let st = &mut *st;
        // classify anything recorded since the last region boundary
        if !st.cells.is_empty() {
            st.report.regions += 1;
            let (cells, report) = (&mut st.cells, &mut st.report);
            for cell in cells.values() {
                classify(cell, report);
            }
            cells.clear();
        }
        std::mem::take(&mut st.report)
    }
}

/// Arms the collector for one measurement cell, discarding prior state.
/// Sessions are strictly sequential: arm, run the cell, then call
/// [`session_end`]. Nested or concurrent sessions are not supported.
#[inline]
pub fn session_begin() {
    #[cfg(feature = "sanitize")]
    imp::session_begin();
}

/// Disarms the collector and returns everything it saw since
/// [`session_begin`] (an empty default report with the feature off).
#[inline]
pub fn session_end() -> SanitizeReport {
    #[cfg(feature = "sanitize")]
    return imp::session_end();
    #[cfg(not(feature = "sanitize"))]
    SanitizeReport::default()
}

/// Records one shared-memory operation by thread `tid` at `addr`. No-op
/// unless a session is armed. Operations performed inside a critical
/// section count as synchronized regardless of `op`.
#[inline]
pub fn record(tid: u64, addr: u64, op: AccessOp) {
    #[cfg(feature = "sanitize")]
    if imp::ARMED.load(std::sync::atomic::Ordering::Relaxed) {
        imp::record(tid, addr, op);
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = (tid, addr, op);
    }
}

/// Reports one semantic relaxation-update event: `rmw` says whether it used
/// a single atomic RMW (vs the load/compare/store split).
#[inline]
pub fn note_update(rmw: bool) {
    #[cfg(feature = "sanitize")]
    if imp::ARMED.load(std::sync::atomic::Ordering::Relaxed) {
        imp::note_update(rmw);
    }
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = rmw;
    }
}

/// Marks a synchronization-region boundary (kernel launch end, `omp
/// parallel` region end, C++ thread join): classifies and resets all shadow
/// cells. Conflicts are only meaningful *within* a region — the boundary
/// itself synchronizes.
#[inline]
pub fn region_flush() {
    #[cfg(feature = "sanitize")]
    if imp::ARMED.load(std::sync::atomic::Ordering::Relaxed) {
        imp::region_flush();
    }
}

/// The calling CPU thread's sanitizer id (disjoint from GPU thread ids).
#[inline]
pub fn cpu_tid() -> u64 {
    #[cfg(feature = "sanitize")]
    return imp::cpu_tid();
    #[cfg(not(feature = "sanitize"))]
    0
}

/// Enters a critical section on this thread (lockset nesting counter).
#[inline]
pub fn critical_enter() {
    #[cfg(feature = "sanitize")]
    imp::critical_enter();
}

/// Leaves a critical section on this thread.
#[inline]
pub fn critical_exit() {
    #[cfg(feature = "sanitize")]
    imp::critical_exit();
}

/// Mutation-test switch: when on, RMW update sites deliberately drop their
/// atomic and take the load/compare/store split instead, so tests can
/// verify the sanitizer catches the label violation. Always off in
/// non-sanitize builds ([`mutate_drop_atomic`] is `const false` there, so
/// the mutated branch folds away).
#[inline]
pub fn set_mutation_drop_atomics(on: bool) {
    #[cfg(feature = "sanitize")]
    imp::set_mutation(on);
    #[cfg(not(feature = "sanitize"))]
    {
        let _ = on;
    }
}

/// Whether update sites should currently drop their atomics (see
/// [`set_mutation_drop_atomics`]).
#[inline]
pub fn mutate_drop_atomic() -> bool {
    #[cfg(feature = "sanitize")]
    return imp::mutation_on();
    #[cfg(not(feature = "sanitize"))]
    false
}

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // the collector is process-global state; serialize the tests touching it
    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    fn begin() -> MutexGuard<'static, ()> {
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        session_begin();
        guard
    }

    #[test]
    fn value_changing_ww_is_racy() {
        let _g = begin();
        record(1, 0x100, AccessOp::Store(7));
        record(2, 0x100, AccessOp::Store(9));
        region_flush();
        let r = session_end();
        assert_eq!(r.racy_ww, 1);
        assert_eq!(r.racy(), 1);
        assert_eq!(r.benign_idempotent, 0);
    }

    #[test]
    fn identical_value_ww_is_benign_idempotent() {
        let _g = begin();
        record(1, 0x200, AccessOp::Store(1));
        record(2, 0x200, AccessOp::Store(1));
        record(3, 0x200, AccessOp::Load);
        region_flush();
        let r = session_end();
        assert_eq!(r.benign_idempotent, 1);
        assert_eq!(r.racy(), 0);
        assert!(r.conflicts() > 0);
    }

    #[test]
    fn read_racing_value_changing_writes_is_racy_rw() {
        let _g = begin();
        record(1, 0x300, AccessOp::Store(5));
        record(1, 0x300, AccessOp::Store(7));
        record(2, 0x300, AccessOp::Load);
        region_flush();
        let r = session_end();
        assert_eq!(r.racy_rw, 1);
        assert_eq!(r.racy_ww, 0);
    }

    #[test]
    fn read_racing_constant_write_is_benign() {
        // a single writer storing one constant (the MIS OUT-store pattern):
        // no value diversity was observed, so a racing reader is classified
        // with the idempotent writes, not as a value-changing race
        let _g = begin();
        record(1, 0x340, AccessOp::Store(5));
        record(2, 0x340, AccessOp::Load);
        region_flush();
        let r = session_end();
        assert_eq!(r.racy(), 0);
        assert_eq!(r.benign_idempotent, 1);
    }

    #[test]
    fn read_racing_atomic_is_benign_mixed() {
        let _g = begin();
        record(1, 0x400, AccessOp::Load);
        record(2, 0x400, AccessOp::AtomicRmw);
        region_flush();
        let r = session_end();
        assert_eq!(r.benign_mixed, 1);
        assert_eq!(r.racy(), 0);
    }

    #[test]
    fn atomics_alone_do_not_conflict() {
        let _g = begin();
        record(1, 0x500, AccessOp::AtomicRmw);
        record(2, 0x500, AccessOp::AtomicRmw);
        record(3, 0x500, AccessOp::CudaAtomicRmw);
        region_flush();
        let r = session_end();
        assert_eq!(r.conflicts(), 0);
        assert_eq!(r.atomic_rmws, 2);
        assert_eq!(r.cuda_atomic_rmws, 1);
    }

    #[test]
    fn same_thread_accesses_never_conflict() {
        let _g = begin();
        record(1, 0x600, AccessOp::Store(3));
        record(1, 0x600, AccessOp::Load);
        record(1, 0x600, AccessOp::Store(4));
        region_flush();
        let r = session_end();
        assert_eq!(r.conflicts(), 0);
    }

    #[test]
    fn region_boundary_synchronizes() {
        // a write in one region and a read in the next never conflict
        let _g = begin();
        record(1, 0x700, AccessOp::Store(3));
        region_flush();
        record(2, 0x700, AccessOp::Load);
        region_flush();
        let r = session_end();
        assert_eq!(r.conflicts(), 0);
        assert_eq!(r.regions, 2);
    }

    #[test]
    fn critical_section_accesses_count_as_synchronized() {
        let _g = begin();
        critical_enter();
        record(1, 0x800, AccessOp::Store(3));
        critical_exit();
        critical_enter();
        record(2, 0x800, AccessOp::Store(9));
        critical_exit();
        region_flush();
        let r = session_end();
        assert_eq!(r.conflicts(), 0);
        assert_eq!(r.locked_ops, 2);
    }

    #[test]
    fn disarmed_records_nothing() {
        let _g = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        record(1, 0x900, AccessOp::Store(1));
        record(2, 0x900, AccessOp::Store(2));
        session_begin();
        let r = session_end();
        assert_eq!(r.stores, 0);
        assert_eq!(r.conflicts(), 0);
    }

    #[test]
    fn update_events_split_by_kind() {
        let _g = begin();
        note_update(true);
        note_update(true);
        note_update(false);
        let r = session_end();
        assert_eq!(r.updates_rmw, 2);
        assert_eq!(r.updates_split, 1);
    }
}
