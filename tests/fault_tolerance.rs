//! Acceptance gate for the fault-tolerant scheduler (DESIGN.md §7.3): an
//! injected panic, an injected stall, and a SIGKILL-emulating resume each
//! end with a *complete* per-cell CSV — the faulted cell as a structured
//! row, every other cell byte-identical to an undisturbed run.
//!
//! Like `tests/determinism.rs`, the slice is CUDA-model only: simulated
//! cycles are reproducible run-to-run, so byte-identity of the rendered
//! artifact is a meaningful property. CPU wall-clock cells are *resumable*
//! too (replay is bit-exact), but a re-run of an unjournaled wall-clock
//! cell never reproduces its timing, so they are excluded here.

use indigo_graph::gen::{Scale, SuiteGraph};
use indigo_harness::experiments::outcomes::cells_report;
use indigo_harness::{CellOutcome, FaultSpec, ProgressEvent, Resilience, RunOptions, RunPlan};
use indigo_styles::{Algorithm, Granularity, Model};
use std::time::Duration;

/// A few dozen deterministic cells: both a single-launch kernel (TC) and an
/// iterative one (PR), on a regular grid plus the skewed R-MAT.
fn suite_slice() -> RunPlan {
    RunPlan::for_algorithms(
        &[Algorithm::Tc, Algorithm::Pr],
        &[Model::Cuda],
        Scale::Tiny,
        1,
    )
    .filter(|c| c.granularity == Some(Granularity::Thread))
    .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat])
}

/// The final artifact a run produces for its cells, rendered to bytes.
fn cells_csv(run: &indigo_harness::MatrixRun) -> String {
    cells_report(run).csv.join("\n")
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("indigo-ft-{}-{name}", std::process::id()))
}

#[test]
fn injected_panic_leaves_every_other_cell_bitwise_intact() {
    let plan = suite_slice();
    let opts = RunOptions::default().with_jobs(2);
    let clean = plan.run_cells(&opts, &Resilience::none(), |_| {}).unwrap();
    assert!(clean.records.len() > 4);
    assert_eq!(clean.summary().exit_code(), 0);

    let fault = Resilience::none().with_fault(FaultSpec::parse("panic@2").unwrap());
    let run = plan.run_cells(&opts, &fault, |_| {}).unwrap();

    // complete row set: the crash is a structured row, not a hole
    assert_eq!(run.records.len(), clean.records.len());
    assert!(matches!(
        run.records[2].outcome,
        CellOutcome::Crashed { .. }
    ));
    assert_eq!(run.summary().crashed, 1);
    assert_eq!(run.summary().exit_code(), 2);

    // every *other* rendered CSV row is byte-identical to the clean run
    let clean_rendered = cells_csv(&clean);
    let fault_rendered = cells_csv(&run);
    let clean_rows: Vec<&str> = clean_rendered.lines().collect();
    let fault_rows: Vec<&str> = fault_rendered.lines().collect();
    for (i, (a, b)) in clean_rows.iter().zip(&fault_rows).enumerate() {
        if i == 3 {
            continue; // header + faulted slot 2
        }
        assert_eq!(a, b, "row {i} diverged");
    }
}

#[test]
fn injected_stall_is_recovered_and_attributed_to_the_watchdog() {
    let plan = suite_slice();
    // generous budget: only the stalled cell can exceed it, so the test
    // also demonstrates genuine cells running untouched under a watchdog
    let res = Resilience::none()
        .with_fault(FaultSpec::parse("stall@1").unwrap())
        .with_cell_timeout(Duration::from_secs(3));
    let run = plan
        .run_cells(&RunOptions::default().with_jobs(2), &res, |_| {})
        .unwrap();
    match &run.records[1].outcome {
        CellOutcome::TimedOut { budget_secs, .. } => {
            assert_eq!(*budget_secs, Some(3.0), "wall-clock watchdog fired");
        }
        other => panic!("expected TimedOut, got {}", other.label()),
    }
    assert_eq!(run.summary().timed_out, 1);
    assert_eq!(run.summary().ok, run.records.len() - 1);
    assert_eq!(run.summary().exit_code(), 2);
}

/// SIGKILL emulation: an interrupted run leaves a journal prefix (possibly
/// with a torn final line); `--resume` must replay it and finish the rest,
/// producing a final CSV byte-identical to an uninterrupted serial run.
#[test]
fn truncated_journal_resume_reproduces_the_uninterrupted_csv() {
    let plan = suite_slice();
    let opts = RunOptions::default(); // --jobs 1 reference run
    let full_path = tmp("full.jsonl");
    let cut_path = tmp("cut.jsonl");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&cut_path);

    let full = plan
        .run_cells(&opts, &Resilience::none().with_journal(&full_path), |_| {})
        .unwrap();
    let reference = cells_csv(&full);

    // keep the first 5 complete lines plus a torn half-line, as a process
    // killed mid-write would leave behind
    let journal = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    assert!(lines.len() > 6, "slice too small to truncate meaningfully");
    let mut cut = lines[..5].join("\n");
    cut.push('\n');
    cut.push_str(&lines[5][..lines[5].len() / 2]);
    std::fs::write(&cut_path, cut).unwrap();

    let resumed = plan
        .run_cells(&opts, &Resilience::none().resuming(&cut_path), |_| {})
        .unwrap();
    assert_eq!(resumed.summary().resumed, 5, "torn line is discarded");
    assert_eq!(resumed.summary().exit_code(), 0);
    assert_eq!(cells_csv(&resumed), reference, "resume must be bit-exact");

    // the repaired journal is complete: resuming it again replays everything
    let replayed = plan
        .run_cells(&opts, &Resilience::none().resuming(&cut_path), |_| {})
        .unwrap();
    assert_eq!(replayed.summary().resumed, replayed.records.len());
    assert_eq!(cells_csv(&replayed), reference);

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&cut_path);
}

/// The real thing, not an emulation: a *subprocess* journaling this same
/// slice is SIGKILLed mid-run. The journal it leaves must reload (torn
/// tail and all), its abandoned lockfile must be reclaimed as stale, and a
/// resume must finish the run bit-identical to an undisturbed one.
///
/// The child is this test binary re-executed with `INDIGO_FT_CHILD_JOURNAL`
/// set: the same `#[test]` then runs the journaled slice (throttled so the
/// parent reliably catches it mid-run) instead of asserting anything.
#[test]
fn sigkilled_process_leaves_a_reloadable_journal_and_resumes_bit_exact() {
    use indigo_harness::journal;

    // ---- child mode: journal the slice slowly, never exit on our own
    if let Ok(path) = std::env::var("INDIGO_FT_CHILD_JOURNAL") {
        let res = Resilience::none().with_journal(&path);
        let _ = suite_slice().run_cells(&RunOptions::default(), &res, |ev| {
            if matches!(ev, ProgressEvent::Cell { .. }) {
                // pace the run so the parent's kill lands mid-journal
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        return;
    }

    // ---- parent mode
    let path = tmp("sigkill.jsonl");
    let lock = {
        let mut l = path.clone().into_os_string();
        l.push(".lock");
        std::path::PathBuf::from(l)
    };
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&lock);

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .arg("sigkilled_process_leaves_a_reloadable_journal_and_resumes_bit_exact")
        .arg("--exact")
        .env("INDIGO_FT_CHILD_JOURNAL", &path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    // wait for ≥3 complete journal lines, then SIGKILL — no drop handlers,
    // no flush, exactly what a crash or OOM-kill leaves behind
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let lines = std::fs::read_to_string(&path)
            .map(|s| s.lines().count())
            .unwrap_or(0);
        if lines >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "child never wrote 3 journal lines"
        );
        assert!(
            child.try_wait().unwrap().is_none(),
            "child finished before it could be killed; slice too fast"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().unwrap();
    child.wait().unwrap();
    let child_pid = child.id();

    // the kill left the lockfile behind, naming the dead process
    let holder = std::fs::read_to_string(&lock).expect("killed child's lockfile should remain");
    assert_eq!(holder.trim(), child_pid.to_string());

    // the journal reloads; simulate a torn final write on top (a single
    // line's worth of bytes may be partially flushed at kill time)
    let (entries, _) = journal::load(&path).unwrap();
    assert!(
        entries.len() >= 3,
        "only {} entries survived",
        entries.len()
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let torn = format!("{text}{}", &text.lines().next().unwrap()[..20]);
    std::fs::write(&path, torn).unwrap();
    let (reloaded, skipped) = journal::load(&path).unwrap();
    assert_eq!(reloaded.len(), entries.len(), "torn tail must be dropped");
    assert_eq!(skipped, 1);

    // resume: reclaims the dead child's lock, replays its cells, finishes
    // the rest — bit-identical to a run that was never interrupted
    let plan = suite_slice();
    let opts = RunOptions::default();
    let clean = plan.run_cells(&opts, &Resilience::none(), |_| {}).unwrap();
    let resumed = plan
        .run_cells(&opts, &Resilience::none().resuming(&path), |_| {})
        .unwrap();
    let replayed = resumed.summary().resumed;
    assert!(replayed >= 3, "expected ≥3 replayed cells, got {replayed}");
    assert!(
        replayed < resumed.records.len(),
        "child was killed mid-run, yet every cell was journaled"
    );
    assert_eq!(resumed.summary().exit_code(), 0);
    assert_eq!(
        cells_csv(&resumed),
        cells_csv(&clean),
        "resume after SIGKILL must be bit-exact"
    );
    assert!(!lock.exists(), "resume must release the reclaimed lock");

    let _ = std::fs::remove_file(&path);
}

/// The resume key is the canonical fingerprint, not the JSON text: a journal
/// line with its fields in any order identifies the same cell.
#[test]
fn journal_lines_parse_identically_under_field_reordering() {
    use indigo_harness::journal::parse_line;
    let line = r#"{"v":1,"fp":"00000000000000ff","variant":"bfs_x","graph":"Grid2d","target":"sys0","outcome":"ok","geps_bits":"3ff0000000000000","iterations":7}"#;
    let reordered = r#"{"iterations":7,"outcome":"ok","geps_bits":"3ff0000000000000","target":"sys0","graph":"Grid2d","variant":"bfs_x","fp":"00000000000000ff","v":1}"#;
    let a = parse_line(line).unwrap();
    let b = parse_line(reordered).unwrap();
    assert_eq!(a.fp, b.fp);
    assert_eq!(a.variant, b.variant);
    assert_eq!(a.outcome, b.outcome);
}
