//! Direction-optimizing BFS (Beamer et al. [6]) — the optimization behind
//! both Lonestar's and Gardenia's BFS.
//!
//! Starts top-down (push from the frontier); when the frontier grows past a
//! fraction of the graph it switches to bottom-up (every unvisited vertex
//! pulls, stopping at the first visited parent), then switches back as the
//! frontier shrinks.

use indigo_core::GraphInput;
use indigo_exec::Schedule;
use indigo_gpusim::{Assign, Device, GpuBuf, Sim};
use indigo_graph::{NodeId, INF};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Frontier-size fraction (of directed edges) above which the traversal
/// runs bottom-up.
const SWITCH_FRACTION: usize = 20;

/// CPU direction-optimizing BFS. Returns `(levels, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize, source: NodeId) -> (Vec<u32>, f64) {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
    if n == 0 {
        return (Vec::new(), start.elapsed().as_secs_f64());
    }
    level[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut depth = 0u32;

    while !frontier.is_empty() {
        depth += 1;
        let frontier_edges: usize = frontier.iter().map(|&v| g.degree(v)).sum();
        let next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let next_len = AtomicUsize::new(0);
        if frontier_edges * SWITCH_FRACTION > g.num_edges() {
            // bottom-up: every unvisited vertex looks for a visited parent
            pool.parallel_for(n, Schedule::Default, |vi, _| {
                if level[vi].load(Ordering::Relaxed) != INF {
                    return;
                }
                for &u in g.neighbors(vi as NodeId) {
                    if level[u as usize].load(Ordering::Relaxed) == depth - 1 {
                        level[vi].store(depth, Ordering::Relaxed);
                        let slot = next_len.fetch_add(1, Ordering::Relaxed);
                        next[slot].store(vi as u32, Ordering::Relaxed);
                        break;
                    }
                }
            });
        } else {
            // top-down: the frontier pushes to unvisited neighbors
            let fr = &frontier;
            pool.parallel_for(fr.len(), Schedule::Default, |fi, _| {
                let v = fr[fi];
                for &u in g.neighbors(v) {
                    if level[u as usize]
                        .compare_exchange(INF, depth, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        let slot = next_len.fetch_add(1, Ordering::Relaxed);
                        next[slot].store(u, Ordering::Relaxed);
                    }
                }
            });
        }
        let len = next_len.load(Ordering::Relaxed);
        frontier = next[..len]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
    }
    let out = level.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    (out, start.elapsed().as_secs_f64())
}

/// Simulated-GPU direction-optimizing BFS. Returns `(levels, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device, source: NodeId) -> (Vec<u32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    let level = GpuBuf::new(n, INF).with_kind(indigo_gpusim::BufKind::Atomic);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    level.host_write(source as usize, 0);
    let frontier = GpuBuf::new(n + 1, 0);
    let fsize = GpuBuf::new(1, 1).with_kind(indigo_gpusim::BufKind::Atomic);
    let next = GpuBuf::new(n + 1, 0);
    let nsize = GpuBuf::new(1, 0).with_kind(indigo_gpusim::BufKind::Atomic);
    frontier.host_write(0, source);
    let mut lists = [(&frontier, &fsize), (&next, &nsize)];
    let mut depth = 0u32;

    loop {
        depth += 1;
        let d = depth;
        let (cur, nxt) = (lists[0], lists[1]);
        let len = cur.1.host_read(0) as usize;
        if len == 0 {
            break;
        }
        // frontier edge volume decides the direction (host-side heuristic,
        // as real implementations do with a device reduction)
        let frontier_edges: usize = (0..len)
            .map(|i| {
                let v = cur.0.host_read(i) as usize;
                (dg.row.host_read(v + 1) - dg.row.host_read(v)) as usize
            })
            .sum();
        if frontier_edges * SWITCH_FRACTION > dg.m {
            sim.launch(n, Assign::ThreadPerItem, false, |ctx, vi| {
                if ctx.ld(&level, vi) != INF {
                    return;
                }
                let beg = ctx.ld(&dg.row, vi) as usize;
                let end = ctx.ld(&dg.row, vi + 1) as usize;
                for i in beg..end {
                    let u = ctx.ld(&dg.nbr, i);
                    if ctx.ld(&level, u as usize) == d - 1 {
                        ctx.st(&level, vi, d);
                        let slot = ctx.atomic_add(nxt.1, 0, 1) as usize;
                        ctx.st(nxt.0, slot, vi as u32);
                        break;
                    }
                }
            });
        } else {
            sim.launch(len, Assign::WarpPerItem, false, |ctx, fi| {
                let v = ctx.ld(cur.0, fi);
                let beg = ctx.ld(&dg.row, v as usize) as usize;
                let end = ctx.ld(&dg.row, v as usize + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                while i < end {
                    let u = ctx.ld(&dg.nbr, i);
                    if ctx.ld(&level, u as usize) == INF
                        && ctx.atomic_min(&level, u as usize, d) == INF
                    {
                        let slot = ctx.atomic_add(nxt.1, 0, 1) as usize;
                        ctx.st(nxt.0, slot, u);
                    }
                    i += lanes;
                }
            });
        }
        cur.1.host_write(0, 0);
        lists.swap(0, 1);
    }
    (level.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};

    #[test]
    fn cpu_matches_serial_on_battery() {
        for g in [
            toy::path(40),
            toy::star(30),
            gen::gnp(200, 0.03, 9),
            gen::grid2d(12, 9),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::bfs(&input.csr, 0);
            let (got, secs) = cpu(&input, 3, 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs >= 0.0);
        }
    }

    #[test]
    fn gpu_matches_serial_on_battery() {
        for g in [
            toy::path(40),
            gen::gnp(150, 0.05, 9),
            gen::preferential_attachment(200, 4, 1),
        ] {
            let input = GraphInput::new(g);
            let expect = serial::bfs(&input.csr, 0);
            let (got, secs) = gpu(&input, rtx3090(), 0);
            assert_eq!(got, expect, "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn bottom_up_path_taken_on_dense_graph() {
        // a dense G(n, p) forces the switch in the second level
        let input = GraphInput::new(gen::gnp(300, 0.2, 4));
        let expect = serial::bfs(&input.csr, 0);
        assert_eq!(cpu(&input, 2, 0).0, expect);
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2, 0).0.is_empty());
        assert!(gpu(&input, rtx3090(), 0).0.is_empty());
    }
}
