//! # indigo-exec
//!
//! CPU execution substrate for the indigo-rs suite: the two CPU programming
//! models of the paper (§4.1) built from scratch so every scheduling and
//! synchronization *style* under study is explicit rather than hidden inside
//! a runtime.
//!
//! * [`omp`] — an OpenMP analog: a persistent worker pool with
//!   `parallel_for` supporting the default (static) and `schedule(dynamic)`
//!   policies (§2.11), plus `critical`-section and `atomic` update paths.
//!   GCC's OpenMP has no atomic min/max, which the paper identifies as the
//!   reason its OpenMP codes use slow critical sections (§5.3.1); the
//!   [`sync`] module reproduces that asymmetry.
//! * [`cpp`] — a C++11-threads analog: explicit thread teams with blocked
//!   and cyclic loop distribution (§2.12) and fast CAS-loop atomics.
//! * [`sync`] — atomic cells (including CAS-loop `fetch_min`/`fetch_max` and
//!   an atomic `f32`), the global critical section, and the style-dispatched
//!   [`sync::MinOps`] used by the algorithm kernels.
//! * [`worklist`] — the shared worklists of §2.3, in both the
//!   duplicates-allowed and no-duplicates (iteration-stamp) flavors.
//! * [`frontier`] — the zero-allocation frontier/scratch layer the tuned
//!   §5.17 baselines are built on (DESIGN.md §7.7): sparse double-buffered
//!   frontiers with per-thread unsynchronized push buffers, a
//!   capacity-retaining atomic bitmap for pull-direction traversal, and
//!   serial-below-grain loop dispatch.
//! * [`sanitize`] — the style-conformance sanitizer's shadow-memory
//!   collector (zero-cost unless the `sanitize` feature is on); it lives
//!   here, below both the CPU models and the GPU simulator, so one
//!   collector sees both access streams.
//!
//! Work-stealing runtimes (rayon) are deliberately not used: they would
//! erase the very scheduling axis the study measures.

pub mod cpp;
pub mod frontier;
pub mod omp;
pub mod pool_cache;
pub mod sanitize;
pub mod sync;
pub mod worklist;

pub use cpp::CppThreads;
pub use frontier::{grained_for, AtomicBitmap, PushBuffers, SparseFrontier, SERIAL_GRAIN};
pub use omp::{OmpPool, Schedule};
pub use pool_cache::{shared_omp_pool, Lease, PoolRegistry};

/// A named thread-count configuration standing in for one of the paper's two
/// CPU systems (§4.3). The paper used 16 threads on System 1 and 32 on
/// System 2; profiles scale to the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemProfile {
    /// Display name, e.g. `"sys1"`.
    pub name: &'static str,
    /// Worker-thread count for both CPU models.
    pub threads: usize,
}

/// The two evaluation profiles (Threadripper-like and dual-Xeon-like).
pub const SYSTEM_PROFILES: [SystemProfile; 2] = [
    SystemProfile {
        name: "sys1",
        threads: 4,
    },
    SystemProfile {
        name: "sys2",
        threads: 8,
    },
];
