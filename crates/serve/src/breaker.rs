//! Per-graph-shard circuit breaker (DESIGN.md §7.8).
//!
//! Consecutive request failures against one graph trip its breaker open:
//! further compute for that shard is refused for a cooldown window and the
//! engine serves degraded results instead. After the cooldown, exactly one
//! request is admitted as a half-open probe; its outcome decides between
//! recovery (closed) and another open window. The state machine is a plain
//! mutex — transitions are per-request, nowhere near any hot path.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long the breaker stays open before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// The admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: run normally.
    Run,
    /// Breaker half-open: run as the single recovery probe.
    Probe,
    /// Breaker open (or a probe is already in flight): serve degraded.
    Degraded {
        /// Time until a probe will be admitted (0 when one is in flight).
        retry_after: Duration,
    },
}

/// A state transition worth counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Closed → open.
    Tripped,
    /// Half-open probe succeeded → closed.
    Recovered,
}

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { fails: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// One shard's circuit breaker.
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl Breaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: Mutex::new(State::Closed { fails: 0 }),
        }
    }

    /// Decides how to treat an arriving compute request.
    pub fn admit(&self) -> Admit {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match *st {
            State::Closed { .. } => Admit::Run,
            State::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cfg.cooldown {
                    *st = State::HalfOpen;
                    Admit::Probe
                } else {
                    Admit::Degraded {
                        retry_after: self.cfg.cooldown - elapsed,
                    }
                }
            }
            // a probe is in flight; its outcome is imminent
            State::HalfOpen => Admit::Degraded {
                retry_after: Duration::ZERO,
            },
        }
    }

    /// Reports a request outcome. `probe` marks the half-open probe.
    pub fn report(&self, ok: bool, probe: bool) -> Option<Transition> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if probe {
            if ok {
                *st = State::Closed { fails: 0 };
                return Some(Transition::Recovered);
            }
            // failed probe: re-open silently (the breaker never closed)
            *st = State::Open {
                since: Instant::now(),
            };
            return None;
        }
        match (*st, ok) {
            (State::Closed { .. }, true) => {
                *st = State::Closed { fails: 0 };
                None
            }
            (State::Closed { fails }, false) => {
                let fails = fails + 1;
                if fails >= self.cfg.threshold {
                    *st = State::Open {
                        since: Instant::now(),
                    };
                    Some(Transition::Tripped)
                } else {
                    *st = State::Closed { fails };
                    None
                }
            }
            // late reports from requests admitted before a trip: no-op
            (State::Open { .. } | State::HalfOpen, _) => None,
        }
    }

    /// Human-readable state for `/health`.
    pub fn state_label(&self) -> &'static str {
        match *self.state.lock().unwrap_or_else(|e| e.into_inner()) {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Breaker {
        Breaker::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(30),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = quick();
        assert_eq!(b.report(false, false), None);
        assert_eq!(b.report(true, false), None); // success resets the streak
        assert_eq!(b.report(false, false), None);
        assert_eq!(b.report(false, false), None);
        assert_eq!(b.report(false, false), Some(Transition::Tripped));
        assert_eq!(b.state_label(), "open");
        assert!(matches!(b.admit(), Admit::Degraded { .. }));
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let b = quick();
        for _ in 0..3 {
            b.report(false, false);
        }
        assert_eq!(b.state_label(), "open");
        std::thread::sleep(Duration::from_millis(35));
        // exactly one probe is admitted; concurrent arrivals stay degraded
        assert_eq!(b.admit(), Admit::Probe);
        assert!(matches!(b.admit(), Admit::Degraded { retry_after } if retry_after.is_zero()));
        // failed probe → another open window
        assert_eq!(b.report(false, true), None);
        assert_eq!(b.state_label(), "open");
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(b.admit(), Admit::Probe);
        assert_eq!(b.report(true, true), Some(Transition::Recovered));
        assert_eq!(b.state_label(), "closed");
        assert_eq!(b.admit(), Admit::Run);
    }

    #[test]
    fn degraded_admits_carry_the_remaining_cooldown() {
        let b = Breaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(10),
        });
        assert_eq!(b.report(false, false), Some(Transition::Tripped));
        match b.admit() {
            Admit::Degraded { retry_after } => {
                assert!(retry_after > Duration::from_secs(9));
                assert!(retry_after <= Duration::from_secs(10));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }
}
