//! OpenMP-analog worker pool: `#pragma omp parallel for` with the default
//! (static) and `schedule(dynamic)` policies of §2.11.
//!
//! A fixed team of persistent workers sleeps between parallel regions, like
//! an OpenMP runtime. [`OmpPool::parallel_for`] has an implicit barrier at
//! the end of the region, matching OpenMP semantics. Static scheduling gives
//! each thread one contiguous chunk of iterations; dynamic scheduling hands
//! out chunks from a shared atomic counter at runtime — the load-balancing /
//! overhead trade-off the paper measures in Figure 12.

use indigo_cancel::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Iterations between cancellation polls inside a static chunk. One relaxed
/// atomic load per this many body calls — noise next to any graph kernel.
pub(crate) const CANCEL_STRIDE: usize = 1024;

/// Loop schedule (§2.11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Static blocked chunking — OpenMP's default (Listing 12a).
    Default,
    /// Runtime chunk distribution (Listing 12b). OpenMP's default dynamic
    /// chunk size is 1; [`Schedule::dynamic`] uses that.
    Dynamic {
        /// Iterations handed out per grab.
        chunk: usize,
    },
}

impl Schedule {
    /// `schedule(dynamic)` with the OpenMP default chunk size of 1.
    pub fn dynamic() -> Schedule {
        Schedule::Dynamic { chunk: 1 }
    }
}

/// Type-erased pointer to the per-worker closure of the active region.
///
/// The closure lives on the stack frame of `parallel_for`, which cannot
/// return before every worker has finished the region (the implicit
/// barrier), so the pointer never dangles.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// Safety: the pointee is `Sync` (workers only get `&` access) and outlives
// the region per the barrier argument above.
unsafe impl Send for JobPtr {}

struct State {
    generation: u64,
    job: Option<JobPtr>,
    remaining: usize,
    shutdown: bool,
}

struct Control {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    /// Serializes whole regions so one pool can be shared (and cached)
    /// across call sites: concurrent `parallel_for`s queue instead of
    /// corrupting the generation/remaining bookkeeping.
    region: Mutex<()>,
}

/// A persistent OpenMP-style worker team.
pub struct OmpPool {
    control: Arc<Control>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl OmpPool {
    /// Spawns a team of `threads` workers (`threads >= 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        let control = Arc::new(Control {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            region: Mutex::new(()),
        });
        let workers = (0..threads)
            .map(|tid| {
                let control = Arc::clone(&control);
                std::thread::Builder::new()
                    .name(format!("omp-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &control))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        OmpPool {
            control,
            workers,
            threads,
        }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// `#pragma omp parallel for schedule(...)` over `0..n`.
    ///
    /// `body(i, tid)` is invoked exactly once for every `i` in `0..n`; `tid`
    /// identifies the executing worker (for privatized `reduction`-clause
    /// partials). Returns after the implicit barrier.
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.parallel_for_with(n, schedule, None, body);
    }

    /// [`OmpPool::parallel_for`] with a cooperative [`CancelToken`]
    /// (DESIGN.md §7.3's cancellation protocol).
    ///
    /// Workers poll the token at scheduling boundaries — every dynamic
    /// chunk grab, every [`CANCEL_STRIDE`] iterations of a static chunk —
    /// and *drain* (skip their remaining iterations) once it fires; they
    /// never unwind, so the persistent team stays healthy and reusable.
    /// After the implicit barrier the *calling* thread raises the
    /// [`indigo_cancel::Cancelled`] payload via `checkpoint`, which is the
    /// frame the harness's cell isolation catches.
    pub fn parallel_for_with<F>(
        &self,
        n: usize,
        schedule: Schedule,
        cancel: Option<&CancelToken>,
        body: F,
    ) where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let threads = self.threads;
        let cursor = AtomicUsize::new(0);
        let fired = || cancel.is_some_and(CancelToken::is_fired);
        let runner = move |tid: usize| match schedule {
            Schedule::Default => {
                let (beg, end) = blocked_range(n, tid, threads);
                for i in beg..end {
                    if (i - beg) % CANCEL_STRIDE == 0 && fired() {
                        return;
                    }
                    body(i, tid);
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                loop {
                    if fired() {
                        return;
                    }
                    let beg = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if beg >= n {
                        break;
                    }
                    for i in beg..(beg + chunk).min(n) {
                        body(i, tid);
                    }
                }
            }
        };
        self.run_region(&runner);
        if let Some(token) = cancel {
            token.checkpoint();
        }
    }

    /// Runs `f(tid)` once on every worker (a bare `#pragma omp parallel`).
    pub fn parallel_region<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.run_region(&f);
    }

    fn run_region(&self, f: &(dyn Fn(usize) + Sync)) {
        // Erase the stack lifetime; see the JobPtr safety argument.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let _region = self.control.region.lock().unwrap();
        if indigo_obs::enabled() {
            indigo_obs::Counter::ExecRegions.incr();
        }
        let mut st = self.control.state.lock().unwrap();
        st.job = Some(ptr);
        st.remaining = self.threads;
        st.generation += 1;
        self.control.start.notify_all();
        while st.remaining > 0 {
            st = self.control.done.wait(st).unwrap();
        }
        st.job = None;
        // the region end is an implicit barrier: conflicts cannot span it
        crate::sanitize::region_flush();
    }
}

fn worker_loop(tid: usize, control: &Control) {
    let mut seen_generation = 0u64;
    loop {
        // Telemetry: time parked on the start condvar is genuine idle time,
        // time inside the job closure is busy time. `enabled()` const-folds,
        // so the Instants vanish from telemetry-off builds.
        let idle_from = if indigo_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let job = {
            let mut st = control.state.lock().unwrap();
            while !st.shutdown && st.generation == seen_generation {
                st = control.start.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            seen_generation = st.generation;
            st.job.expect("generation advanced without a job")
        };
        if let Some(t0) = idle_from {
            indigo_obs::Counter::ExecWorkerIdleNanos.add(t0.elapsed().as_nanos() as u64);
        }
        let busy_from = if indigo_obs::enabled() {
            Some(std::time::Instant::now())
        } else {
            None
        };
        // Safety: pointee valid until we decrement `remaining` below.
        unsafe { (*job.0)(tid) };
        if let Some(t0) = busy_from {
            indigo_obs::Counter::ExecWorkerBusyNanos.add(t0.elapsed().as_nanos() as u64);
        }
        let mut st = control.state.lock().unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            control.done.notify_one();
        }
    }
}

impl Drop for OmpPool {
    fn drop(&mut self) {
        {
            let mut st = self.control.state.lock().unwrap();
            st.shutdown = true;
            self.control.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The contiguous iteration range of thread `tid` under static scheduling —
/// the `beg`/`end` computation of Listing 13a.
#[inline]
pub fn blocked_range(n: usize, tid: usize, threads: usize) -> (usize, usize) {
    (tid * n / threads, (tid + 1) * n / threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_iteration_static() {
        let pool = OmpPool::new(4);
        let hits = (0..100).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.parallel_for(100, Schedule::Default, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn covers_every_iteration_dynamic() {
        let pool = OmpPool::new(4);
        for chunk in [1, 7, 100, 1000] {
            let hits = (0..257).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
            pool.parallel_for(257, Schedule::Dynamic { chunk }, |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let pool = OmpPool::new(2);
        pool.parallel_for(0, Schedule::Default, |_, _| panic!("must not run"));
    }

    #[test]
    fn tid_is_in_range() {
        let pool = OmpPool::new(3);
        pool.parallel_for(50, Schedule::dynamic(), |_, tid| {
            assert!(tid < 3);
        });
    }

    #[test]
    fn regions_are_reusable_and_barriered() {
        let pool = OmpPool::new(4);
        let sum = AtomicU64::new(0);
        for round in 0..20u64 {
            pool.parallel_for(64, Schedule::Default, |i, _| {
                sum.fetch_add(round * i as u64, Ordering::Relaxed);
            });
            // barrier: after the call, all 64 adds for this round are visible
            let expected: u64 = (0..=round).map(|r| r * (0..64).sum::<u64>()).sum();
            assert_eq!(sum.load(Ordering::Relaxed), expected);
        }
    }

    #[test]
    fn parallel_region_runs_once_per_worker() {
        let pool = OmpPool::new(5);
        let count = AtomicUsize::new(0);
        pool.parallel_region(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn blocked_range_partitions_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for threads in [1usize, 2, 3, 8] {
                let mut total = 0;
                let mut prev_end = 0;
                for tid in 0..threads {
                    let (b, e) = blocked_range(n, tid, threads);
                    assert_eq!(b, prev_end);
                    prev_end = e;
                    total += e - b;
                }
                assert_eq!(prev_end, n);
                assert_eq!(total, n);
            }
        }
    }

    #[test]
    fn fired_token_drains_workers_and_raises_on_caller() {
        let pool = OmpPool::new(2);
        let token = CancelToken::new();
        token.fire("over budget");
        for schedule in [Schedule::Default, Schedule::dynamic()] {
            let done = AtomicUsize::new(0);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.parallel_for_with(50_000, schedule, Some(&token), |_, _| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }))
            .unwrap_err();
            assert!(indigo_cancel::as_cancelled(err.as_ref()).is_some());
            // pre-fired token: static chunks bail at their first stride
            // check, dynamic grabs bail immediately — most work skipped
            assert!(done.load(Ordering::Relaxed) < 50_000, "{schedule:?}");
        }
        // the team survived the drain and serves later regions fully
        let count = AtomicUsize::new(0);
        pool.parallel_for(100, Schedule::Default, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn unfired_token_changes_nothing() {
        let pool = OmpPool::new(3);
        let token = CancelToken::new();
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for_with(257, Schedule::dynamic(), Some(&token), |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = OmpPool::new(1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(10, Schedule::dynamic(), |i, tid| {
            assert_eq!(tid, 0);
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }
}
