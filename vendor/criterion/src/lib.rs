//! A minimal, offline, API-compatible subset of the `criterion` benchmark
//! harness.
//!
//! The build container for this repository has no crates.io access, so the
//! real `criterion` cannot be resolved. This shim implements exactly the
//! surface `indigo-bench` uses — `Criterion::default()` with the builder
//! methods, `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_custom`,
//! and `final_summary` — with honest wall-clock measurement (warm-up phase,
//! fixed sample count, median/mean reporting). Numbers are comparable across
//! runs on one machine; fancy statistics, plots, and baselines are out of
//! scope.

use std::time::{Duration, Instant};

/// Top-level harness state (a subset of criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// No-op in the shim (the shim never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the body before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target time spent collecting samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads a substring filter from the command line, like criterion does.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args.into_iter().find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the end-of-run summary table.
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        println!("\n-- summary ({} benchmarks) --", self.results.len());
        for (name, median) in &self.results {
            println!("{name:60} {median:>12.3?}");
        }
    }

    fn run_one(&mut self, full_name: String, b: &mut Bencher, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        // warm-up: run the body until the warm-up budget elapses
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            f(b);
        }
        // measurement: fixed sample count, one iteration batch per sample
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        for _ in 0..self.sample_size {
            b.iters = 1;
            b.elapsed = Duration::ZERO;
            let start = Instant::now();
            f(b);
            let wall = start.elapsed();
            let per_iter = if b.elapsed > Duration::ZERO {
                b.elapsed
            } else {
                wall
            };
            samples.push(per_iter);
            if wall > budget_per_sample * 4 {
                break; // slow benchmark: stop early rather than overshoot
            }
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{full_name:60} median {median:>12.3?}  (n={})",
            samples.len()
        );
        self.results.push((full_name, median));
    }
}

/// A named group of benchmarks (subset of criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        self.criterion.run_one(full, &mut b, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Per-benchmark measurement handle (subset of criterion's `Bencher`).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body` over the requested iterations.
    pub fn iter<O, R>(&mut self, mut body: O)
    where
        O: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed() / self.iters.max(1) as u32;
    }

    /// Lets the body report its own duration for `iters` iterations —
    /// criterion's `iter_custom`, used for simulated-time benchmarks.
    pub fn iter_custom<O>(&mut self, mut body: O)
    where
        O: FnMut(u64) -> Duration,
    {
        let total = body(self.iters);
        self.elapsed = total / self.iters.max(1) as u32;
    }
}

/// Opaque value sink preventing the optimizer from deleting the body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.contains("g/one"));
    }

    #[test]
    fn iter_custom_reports_simulated_time() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("sim");
        g.bench_function("fixed", |b| {
            b.iter_custom(|iters| Duration::from_micros(10) * iters as u32)
        });
        let (_, median) = &c.results[0];
        assert_eq!(*median, Duration::from_micros(10));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default();
        c.filter = Some("nomatch".into());
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| ()));
        assert!(c.results.is_empty());
    }
}
