//! Bounded admission queue (DESIGN.md §7.8).
//!
//! The first stage of the request pipeline: accepted connections either fit
//! in a fixed-capacity queue or are shed immediately with `429 +
//! Retry-After`. The queue is the *only* unbounded-work choke point in the
//! server — everything past it is deadline-bounded — so a full queue is the
//! signal that the server is saturated and honesty (shed now) beats
//! buffering (time out later).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity: shed the item.
    Full(T),
    /// Queue closed (server shutting down).
    Closed(T),
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with blocking pop and non-blocking push.
pub struct Admission<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Admission<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.queue.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.queue.push_back(item);
        indigo_obs::Hist::ServeQueueDepth.record(st.queue.len() as u64);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.queue.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked poppers wake up.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = Admission::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_wakes_blocked_poppers() {
        let q = Arc::new(Admission::new(4));
        q.try_push(7).unwrap();
        q.close();
        match q.try_push(8) {
            Err(PushError::Closed(8)) => {}
            other => panic!("expected Closed(8), got {other:?}"),
        }
        // pending items still drain after close...
        assert_eq!(q.pop(), Some(7));
        // ...and a popper blocked on an empty closed queue returns None
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(Admission::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));
    }
}
