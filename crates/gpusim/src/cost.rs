//! Per-warp lockstep cost accounting.
//!
//! A warp executes its lanes in lockstep: the k-th shared-memory-visible
//! access of every lane happens in the same machine step. [`StepTable`]
//! aggregates the accesses of one warp "round" by step ordinal, then
//! [`StepTable::finalize`] prices each step:
//!
//! * loads/stores coalesce into distinct 128-byte segments,
//! * global atomics pay per distinct address plus a cheap aggregation cost
//!   for same-address lanes,
//! * `cuda::atomic` steps are multiplied by the device penalty,
//! * shared-memory atomics serialize by same-address multiplicity.
//!
//! Divergence falls out naturally: a lane that runs more steps than its
//! warp-mates still creates (and prices) those extra steps.

use crate::device::CostModel;

/// What kind of machine step an ordinal slot holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Plain global load or store (coalescable).
    Mem,
    /// Classic global atomic RMW (`atomicMin` etc.).
    AtomicRmw,
    /// `cuda::atomic` load/store with default settings.
    CudaLdSt,
    /// `cuda::atomic` RMW with default settings.
    CudaAtomicRmw,
    /// Shared-memory (block-scope) atomic.
    SharedAtomic,
}

const MAX_LANES: usize = 32;

/// One lockstep step: the set of addresses its lanes touch.
#[derive(Clone)]
struct Step {
    class: AccessClass,
    /// Distinct keys (segment ids for `Mem`/`CudaLdSt`, full addresses for
    /// atomics) with per-key lane counts.
    keys: [u64; MAX_LANES],
    counts: [u16; MAX_LANES],
    distinct: usize,
    total: usize,
}

impl Step {
    fn new(class: AccessClass) -> Self {
        Step {
            class,
            keys: [0; MAX_LANES],
            counts: [0; MAX_LANES],
            distinct: 0,
            total: 0,
        }
    }

    fn reset(&mut self, class: AccessClass) {
        self.class = class;
        self.distinct = 0;
        self.total = 0;
    }

    fn record(&mut self, key: u64) {
        self.total += 1;
        for k in 0..self.distinct {
            if self.keys[k] == key {
                self.counts[k] += 1;
                return;
            }
        }
        debug_assert!(
            self.distinct < MAX_LANES,
            "more lanes than WARP_SIZE in one step"
        );
        self.keys[self.distinct] = key;
        self.counts[self.distinct] = 1;
        self.distinct += 1;
    }
}

/// Aggregates one warp round and prices it.
pub struct StepTable {
    steps: Vec<Step>,
    used: usize,
}

impl Default for StepTable {
    fn default() -> Self {
        Self::new()
    }
}

impl StepTable {
    /// Empty table.
    pub fn new() -> Self {
        StepTable {
            steps: Vec::new(),
            used: 0,
        }
    }

    /// Clears for the next warp round (keeps capacity).
    pub fn clear(&mut self) {
        self.used = 0;
    }

    /// Records one access: lane-local step `ordinal`, class, and address
    /// (byte address; segmentation for coalescable classes happens here).
    ///
    /// If lanes disagree on the class at an ordinal (divergent code paths),
    /// the step is split implicitly: the later class opens a fresh step at
    /// the end. This is rare in the structured kernels and errs on the
    /// expensive side, like real divergence.
    #[inline]
    pub fn record(&mut self, ordinal: usize, class: AccessClass, addr: u64) {
        let key = match class {
            AccessClass::Mem | AccessClass::CudaLdSt => addr >> 7, // 128 B segment
            _ => addr,
        };
        if ordinal < self.used {
            let step = &mut self.steps[ordinal];
            if step.class == class {
                step.record(key);
                return;
            }
            // class mismatch: append a divergence step at the end
            let idx = self.used;
            self.ensure(idx + 1, class);
            self.steps[idx].record(key);
            return;
        }
        self.ensure(ordinal + 1, class);
        self.steps[ordinal].record(key);
    }

    fn ensure(&mut self, upto: usize, class: AccessClass) {
        while self.steps.len() < upto {
            self.steps.push(Step::new(class));
        }
        for i in self.used..upto {
            self.steps[i].reset(class);
        }
        self.used = self.used.max(upto);
    }

    /// Number of lockstep steps recorded this round.
    pub fn steps_used(&self) -> usize {
        self.used
    }

    /// Prices the round and returns warp cycles.
    pub fn finalize(&self, c: &CostModel) -> f64 {
        let mut cycles = 0.0;
        for step in &self.steps[..self.used] {
            if step.total == 0 {
                continue;
            }
            cycles += match step.class {
                AccessClass::Mem => c.issue + step.distinct as f64 * c.mem_segment,
                AccessClass::CudaLdSt => {
                    (c.issue + step.distinct as f64 * c.mem_segment) * c.cuda_ldst_mult
                }
                AccessClass::AtomicRmw => {
                    c.atomic_issue
                        + step.distinct as f64 * c.atomic_per_addr
                        + (step.total - step.distinct) as f64 * c.atomic_aggregate
                }
                AccessClass::CudaAtomicRmw => {
                    (c.atomic_issue
                        + step.distinct as f64 * c.atomic_per_addr
                        + (step.total - step.distinct) as f64 * c.atomic_aggregate)
                        * c.cuda_atomic_mult
                }
                AccessClass::SharedAtomic => {
                    let max_mult = step.counts[..step.distinct]
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0);
                    c.issue + max_mult as f64 * c.shared_serial
                }
            };
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::titan_v;

    fn costs() -> CostModel {
        titan_v().cost
    }

    #[test]
    fn coalesced_load_is_one_segment() {
        let mut t = StepTable::new();
        for lane in 0..32u64 {
            t.record(0, AccessClass::Mem, lane * 4); // consecutive u32s
        }
        let c = costs();
        assert_eq!(t.finalize(&c), c.issue + c.mem_segment);
    }

    #[test]
    fn scattered_load_pays_per_segment() {
        let mut t = StepTable::new();
        for lane in 0..32u64 {
            t.record(0, AccessClass::Mem, lane * 4096); // all different segments
        }
        let c = costs();
        assert_eq!(t.finalize(&c), c.issue + 32.0 * c.mem_segment);
    }

    #[test]
    fn same_address_atomics_aggregate() {
        let c = costs();
        let mut same = StepTable::new();
        let mut scattered = StepTable::new();
        for lane in 0..32u64 {
            same.record(0, AccessClass::AtomicRmw, 0);
            scattered.record(0, AccessClass::AtomicRmw, lane * 4096);
        }
        assert!(same.finalize(&c) < scattered.finalize(&c));
        assert_eq!(
            same.finalize(&c),
            c.atomic_issue + c.atomic_per_addr + 31.0 * c.atomic_aggregate
        );
    }

    #[test]
    fn cuda_atomic_multiplier_applies() {
        let c = costs();
        let mut classic = StepTable::new();
        let mut cuda = StepTable::new();
        classic.record(0, AccessClass::AtomicRmw, 128);
        cuda.record(0, AccessClass::CudaAtomicRmw, 128);
        let ratio = cuda.finalize(&c) / classic.finalize(&c);
        assert!((ratio - c.cuda_atomic_mult).abs() < 1e-9);
    }

    #[test]
    fn shared_atomic_serializes_by_multiplicity() {
        let c = costs();
        let mut same = StepTable::new();
        let mut spread = StepTable::new();
        for lane in 0..32u64 {
            same.record(0, AccessClass::SharedAtomic, 0);
            spread.record(0, AccessClass::SharedAtomic, lane * 8);
        }
        assert_eq!(same.finalize(&c), c.issue + 32.0 * c.shared_serial);
        assert_eq!(spread.finalize(&c), c.issue + c.shared_serial);
    }

    #[test]
    fn divergent_lane_extends_the_round() {
        let c = costs();
        let mut t = StepTable::new();
        // lane 0 performs 10 steps, the others 1
        for step in 0..10u64 {
            t.record(step as usize, AccessClass::Mem, step * 4096);
        }
        for lane in 1..32u64 {
            t.record(0, AccessClass::Mem, lane * 4);
        }
        assert_eq!(t.steps_used(), 10);
        assert!(t.finalize(&c) >= 10.0 * c.issue);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut t = StepTable::new();
        t.record(0, AccessClass::Mem, 0);
        t.clear();
        assert_eq!(t.steps_used(), 0);
        assert_eq!(t.finalize(&costs()), 0.0);
    }

    #[test]
    fn class_mismatch_splits_step() {
        let mut t = StepTable::new();
        t.record(0, AccessClass::Mem, 0);
        t.record(0, AccessClass::AtomicRmw, 64); // different class, same ordinal
        assert_eq!(t.steps_used(), 2);
    }
}
