//! Cache-conscious CSR traversal helpers (DESIGN.md §7.7).
//!
//! Graph kernels are bandwidth- and latency-bound: the neighbor list walk is
//! sequential (the hardware prefetcher handles it), but the per-neighbor
//! *data* accesses (`dist[w]`, `rank[w]`, `label[w]`) are random. This
//! module provides:
//!
//! * [`prefetch_read`] + [`scan_prefetched`] — software-prefetched neighbor
//!   scans that request each neighbor's data line [`PREFETCH_DIST`] slots
//!   ahead of its use, hiding DRAM latency behind the walk;
//! * [`DegreeTable`] — a cached out-degree array (CSR stores offsets, so
//!   `degree(v)` is two loads of adjacent `row_start` entries; the table
//!   turns frontier edge-count estimation into one sequential load each);
//! * [`RcpTable`] — cached `1/degree` reciprocals for PageRank-style
//!   rank scaling, replacing a divide per vertex per iteration with a
//!   multiply (bit-identical across calls because each reciprocal is
//!   rounded once and reused).
//!
//! Tables retain capacity across [`DegreeTable::build`] calls, so the
//! leased-scratch kernels rebuild them allocation-free on same-sized
//! graphs.

use crate::{Csr, NodeId};

/// How many neighbor slots ahead a prefetched scan requests data.
///
/// Large enough to cover DRAM latency at one neighbor per few cycles, small
/// enough that the prefetches stay inside the current neighbor block for
/// all but the lowest-degree vertices.
pub const PREFETCH_DIST: usize = 8;

/// Issues a read prefetch for the cache line holding `*p` (no-op on
/// non-x86_64 targets). Safe to call with any address: prefetch instructions
/// do not fault.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // Safety: prefetch is a hint; it cannot fault even on invalid addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Walks `nbrs`, calling `body(i, w)` for each neighbor `w`, prefetching
/// `data[w]` for the neighbor [`PREFETCH_DIST`] slots ahead. `data` is the
/// random-access array the body is about to read (distances, ranks,
/// labels); `i` is the slot index into `nbrs`, for kernels that also index
/// a parallel weight array.
#[inline]
pub fn scan_prefetched<T>(nbrs: &[NodeId], data: &[T], mut body: impl FnMut(usize, NodeId)) {
    let n = nbrs.len();
    for (i, &w) in nbrs.iter().enumerate() {
        if i + PREFETCH_DIST < n {
            prefetch_read(&data[nbrs[i + PREFETCH_DIST] as usize]);
        }
        body(i, w);
    }
}

/// A cached out-degree array.
#[derive(Default)]
pub struct DegreeTable {
    deg: Vec<u32>,
}

impl DegreeTable {
    /// (Re)fills the table from `g`, reusing the allocation when capacity
    /// suffices.
    pub fn build(&mut self, g: &Csr) {
        let n = g.num_nodes();
        self.deg.clear();
        self.deg.reserve(n);
        let row = g.row_start();
        self.deg
            .extend((0..n).map(|v| (row[v + 1] - row[v]) as u32));
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn get(&self, v: NodeId) -> u32 {
        self.deg[v as usize]
    }

    /// The whole table.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.deg
    }

    /// Sum of degrees over `verts` — the edge count a frontier of these
    /// vertices will touch, used by the direction-switch heuristic.
    pub fn edges_of(&self, verts: &[u32]) -> u64 {
        verts.iter().map(|&v| u64::from(self.deg[v as usize])).sum()
    }
}

/// A cached `1/degree` reciprocal table (0 for isolated vertices).
#[derive(Default)]
pub struct RcpTable {
    rcp: Vec<f32>,
}

impl RcpTable {
    /// (Re)fills the table from `g`, reusing the allocation when capacity
    /// suffices.
    pub fn build(&mut self, g: &Csr) {
        let n = g.num_nodes();
        self.rcp.clear();
        self.rcp.reserve(n);
        self.rcp.extend((0..n).map(|v| {
            let d = g.degree(v as NodeId);
            if d > 0 {
                1.0 / d as f32
            } else {
                0.0
            }
        }));
    }

    /// `1/degree(v)` (0 when `degree(v) == 0`).
    #[inline]
    pub fn get(&self, v: NodeId) -> f32 {
        self.rcp[v as usize]
    }

    /// The whole table.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.rcp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn prefetched_scan_visits_every_neighbor_in_order() {
        let g = gen::grid2d(8, 8);
        let data = vec![0u32; g.num_nodes()];
        for v in 0..g.num_nodes() as NodeId {
            let mut seen = Vec::new();
            scan_prefetched(g.neighbors(v), &data, |i, w| seen.push((i, w)));
            let expect: Vec<_> = g
                .neighbors(v)
                .iter()
                .enumerate()
                .map(|(i, &w)| (i, w))
                .collect();
            assert_eq!(seen, expect);
        }
        // degenerate inputs must not panic
        scan_prefetched(&[], &data, |_, _| unreachable!());
    }

    #[test]
    fn degree_table_matches_csr_and_reuses_storage() {
        let g = gen::grid2d(16, 16);
        let mut t = DegreeTable::default();
        t.build(&g);
        for v in 0..g.num_nodes() as NodeId {
            assert_eq!(t.get(v) as usize, g.degree(v));
        }
        assert_eq!(
            t.edges_of(&[0, 1, 2]),
            (0..3).map(|v| g.degree(v) as u64).sum::<u64>()
        );
        let cap = t.deg.capacity();
        let small = gen::grid2d(4, 4);
        t.build(&small);
        assert_eq!(t.as_slice().len(), small.num_nodes());
        assert_eq!(t.deg.capacity(), cap, "rebuild must reuse the allocation");
    }

    #[test]
    fn rcp_table_matches_reciprocals() {
        let g = gen::grid2d(8, 8);
        let mut t = RcpTable::default();
        t.build(&g);
        for v in 0..g.num_nodes() as NodeId {
            let d = g.degree(v as NodeId);
            let expect = if d > 0 { 1.0 / d as f32 } else { 0.0 };
            assert_eq!(t.get(v), expect);
        }
        assert_eq!(t.as_slice().len(), g.num_nodes());
    }
}
