//! Stress and behavioral tests for the CPU execution substrate.

use indigo_exec::sync::{fetch_min, AtomicF32};
use indigo_exec::worklist::{DoubleWorklist, Stamps};
use indigo_exec::{CppThreads, OmpPool, Schedule};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thousands of small regions through one pool: generation bookkeeping and
/// barriers must hold up under churn.
#[test]
fn omp_pool_survives_many_generations() {
    let pool = OmpPool::new(4);
    let counter = AtomicUsize::new(0);
    for round in 0..2_000usize {
        let sched = if round % 2 == 0 {
            Schedule::Default
        } else {
            Schedule::dynamic()
        };
        pool.parallel_for(8, sched, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 16_000);
}

/// Dynamic scheduling must never lose or duplicate iterations even when
/// bodies take wildly different times.
#[test]
fn dynamic_schedule_exactly_once_under_imbalance() {
    let pool = OmpPool::new(4);
    let n = 501;
    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(n, Schedule::Dynamic { chunk: 3 }, |i, _| {
        if i % 97 == 0 {
            // simulate a heavy iteration
            std::thread::yield_now();
            std::hint::black_box((0..500).sum::<usize>());
        }
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

/// Static chunks must be contiguous and ordered per thread (the §2.12
/// blocked property the CPU locality argument rests on).
#[test]
fn static_schedule_is_blocked() {
    let pool = OmpPool::new(3);
    let n = 100;
    let owner: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    pool.parallel_for(n, Schedule::Default, |i, tid| {
        owner[i].store(tid, Ordering::Relaxed);
    });
    let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
    // non-decreasing means contiguous blocks
    assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
}

/// Nested use: a pool region whose body spawns a C++-style team (the suite
/// never does this, but it must not deadlock or corrupt state).
#[test]
fn pool_and_scoped_teams_compose() {
    let pool = OmpPool::new(2);
    let total = AtomicUsize::new(0);
    pool.parallel_for(4, Schedule::Default, |_, _| {
        let cpp = CppThreads::new(2);
        cpp.parallel_for(10, indigo_exec::cpp::CppSched::Cyclic, |_, _| {
            total.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(total.load(Ordering::Relaxed), 40);
}

/// Worklist swap cycles under concurrent pushes from a real pool.
#[test]
fn double_worklist_driven_by_pool() {
    let pool = OmpPool::new(4);
    let dw = DoubleWorklist::with_capacity(10_000);
    let stamps = Stamps::new(10_000);
    for v in 0..1000u32 {
        dw.current().push(v);
    }
    let mut total_processed = 0usize;
    let mut iter = 0u32;
    while !dw.current().is_empty() {
        iter += 1;
        let cur = dw.current();
        let len = cur.len();
        total_processed += len;
        pool.parallel_for(len, Schedule::dynamic(), |idx, _| {
            let v = cur.get(idx);
            // halve the values each round (0 terminates), no duplicates
            if v >= 2 && v % 2 == 0 && stamps.try_claim(v / 2, iter, false) {
                dw.next().push(v / 2);
            }
        });
        dw.swap();
        assert!(iter < 64, "must converge");
    }
    assert!(total_processed >= 1000);
}

/// CAS-loop helpers under full contention from two team kinds.
#[test]
fn atomics_under_mixed_teams() {
    let min_cell = std::sync::atomic::AtomicU32::new(u32::MAX);
    let sum_cell = AtomicF32::new(0.0);
    let pool = OmpPool::new(3);
    pool.parallel_for(3000, Schedule::dynamic(), |i, _| {
        fetch_min(&min_cell, 5000 - (i as u32 % 997));
        sum_cell.fetch_add(0.5);
    });
    assert_eq!(min_cell.load(Ordering::Relaxed), 5000 - 996);
    assert_eq!(sum_cell.load(), 1500.0);
}
