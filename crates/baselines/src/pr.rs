//! Optimized PageRank baselines: pull iteration with a precomputed
//! reciprocal out-degree table (saves the degree lookup and division on
//! every edge — a standard Gardenia/GAP optimization), privatized
//! (clause-style) delta reduction, and warp granularity on the GPU.

use indigo_core::GraphInput;
use indigo_exec::frontier::{fill_atomic_f32, grained_for, SharedSlice};
use indigo_exec::sync::AtomicF32;
use indigo_exec::{PoolRegistry, Schedule};
use indigo_gpusim::{Assign, BufKind, Device, GpuBufF32, ReduceStyle, Sim};

/// One per-thread delta accumulator on its own cache line.
#[repr(align(64))]
struct Padded(AtomicF32);

impl Default for Padded {
    fn default() -> Self {
        Padded(AtomicF32::new(0.0))
    }
}

/// Capacity-retained PR state, leased per call (DESIGN.md §7.7).
#[derive(Default)]
struct Scratch {
    rank: Vec<AtomicF32>,
    next: Vec<AtomicF32>,
    /// Per-vertex `rank[u] / degree(u)`, refreshed each iteration so the
    /// gather loop does one random load per edge instead of two.
    contrib: Vec<f32>,
    rcp: indigo_graph::RcpTable,
    partials: Vec<Padded>,
}

static SCRATCH: PoolRegistry<Scratch> = PoolRegistry::new();

/// CPU optimized PR. Returns `(ranks, seconds)`.
pub fn cpu(input: &GraphInput, threads: usize) -> (Vec<f32>, f64) {
    let mut out = Vec::new();
    let secs = cpu_into(input, threads, &mut out);
    (out, secs)
}

/// [`cpu`] writing the ranks into a caller-owned buffer; with a warm buffer
/// the call is allocation-free.
pub fn cpu_into(input: &GraphInput, threads: usize, out: &mut Vec<f32>) -> f64 {
    let g = &input.csr;
    let n = g.num_nodes();
    let pool = crate::pool(threads);
    let start = std::time::Instant::now();
    out.clear();
    if n == 0 {
        return start.elapsed().as_secs_f64();
    }
    let damping = indigo_core::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;
    let mut scratch = SCRATCH.lease_guard(0, Scratch::default);
    let Scratch {
        rank,
        next,
        contrib,
        rcp,
        partials,
    } = &mut *scratch;
    // reciprocal degree table: one multiply per edge instead of a divide
    rcp.build(g);
    fill_atomic_f32(rank, n, 1.0 / n as f32);
    fill_atomic_f32(next, n, 0.0);
    contrib.clear();
    contrib.resize(n, 0.0);
    if partials.len() < pool.num_threads() {
        partials.resize_with(pool.num_threads(), Padded::default);
    }

    let mut iterations = 0usize;
    while iterations < indigo_core::PR_MAX_ITERS {
        iterations += 1;
        for p in partials.iter() {
            p.0.store(0.0);
        }
        // pass 1: refresh the per-vertex contributions (sequential writes)
        let rk: &[AtomicF32] = rank;
        let rcp_t = &*rcp;
        let cw = SharedSlice::new(contrib);
        grained_for(&pool, n, Schedule::Default, |vi, _| {
            // Safety: one write per index; read only after the barrier.
            unsafe { cw.write(vi, rk[vi].load() * rcp_t.get(vi as u32)) };
        });
        // pass 2: gather — one random load per edge from the contrib table
        let nx: &[AtomicF32] = next;
        let ct: &[f32] = contrib;
        let pt: &[Padded] = partials;
        grained_for(&pool, n, Schedule::Default, |vi, tid| {
            let mut sum = 0.0f32;
            indigo_graph::scan_prefetched(g.neighbors(vi as u32), ct, |_, u| {
                sum += ct[u as usize];
            });
            let nv = base + damping * sum;
            pt[tid].0.fetch_add((nv - rk[vi].load()).abs());
            nx[vi].store(nv);
        });
        // adopt the new ranks by swapping buffers instead of copying
        std::mem::swap(rank, next);
        let delta: f32 = partials.iter().map(|p| p.0.load()).sum();
        if delta < indigo_core::PR_EPSILON {
            break;
        }
    }
    out.extend(rank.iter().map(|c| c.load()));
    start.elapsed().as_secs_f64()
}

/// Simulated-GPU optimized PR (warp granularity, reduction-add deltas,
/// reciprocal-degree table). Returns `(ranks, sim_seconds)`.
pub fn gpu(input: &GraphInput, device: Device) -> (Vec<f32>, f64) {
    let dg = indigo_core::gpu::DeviceGraph::upload(input);
    let n = dg.n;
    let mut sim = Sim::new(device);
    if n == 0 {
        return (Vec::new(), sim.elapsed_secs());
    }
    let g = &input.csr;
    let damping = indigo_core::PR_DAMPING;
    let base = (1.0 - damping) / n as f32;
    let rcp_host: Vec<f32> = (0..n as u32)
        .map(|v| 1.0 / g.degree(v).max(1) as f32)
        .collect();
    let rcp = GpuBufF32::new(n, 0.0);
    for (i, &r) in rcp_host.iter().enumerate() {
        rcp.host_write(i, r);
    }
    let rank = GpuBufF32::new(n, 1.0 / n as f32).with_kind(BufKind::Atomic);
    let next = GpuBufF32::new(n, 0.0).with_kind(BufKind::Atomic);

    let mut iterations = 0usize;
    while iterations < indigo_core::PR_MAX_ITERS {
        iterations += 1;
        let (_, delta) = sim.launch_coop(
            n,
            Assign::WarpPerItem,
            false,
            Some((ReduceStyle::ReductionAdd, BufKind::Atomic)),
            |ctx, vi| {
                let beg = ctx.ld(&dg.row, vi) as usize;
                let end = ctx.ld(&dg.row, vi + 1) as usize;
                let lanes = ctx.lane_count();
                let mut i = beg + ctx.lane();
                let mut partial = 0.0f32;
                while i < end {
                    let u = ctx.ld(&dg.nbr, i) as usize;
                    partial += ctx.ld_f32(&rank, u) * ctx.ld_f32(&rcp, u);
                    i += lanes;
                }
                ctx.scratch_add_f32(partial);
            },
            |ctx, vi| {
                let nv = base + damping * ctx.group_f32();
                let old = ctx.ld_f32(&rank, vi);
                ctx.reduce_add_f32((nv - old).abs());
                ctx.st_f32(&next, vi, nv);
            },
        );
        sim.launch(n, Assign::ThreadPerItem, false, |ctx, i| {
            let v = ctx.ld_f32(&next, i);
            ctx.st_f32(&rank, i, v);
        });
        if delta < indigo_core::PR_EPSILON {
            break;
        }
    }
    (rank.to_vec(), sim.elapsed_secs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use indigo_core::serial;
    use indigo_gpusim::rtx3090;
    use indigo_graph::gen::{self, toy};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 2e-3)
    }

    fn reference(input: &GraphInput) -> Vec<f32> {
        serial::pagerank(
            &input.csr,
            indigo_core::PR_DAMPING,
            indigo_core::PR_EPSILON,
            indigo_core::PR_MAX_ITERS,
        )
    }

    #[test]
    fn cpu_matches_serial() {
        for g in [
            toy::star(18),
            gen::gnp(150, 0.04, 13),
            gen::preferential_attachment(200, 3, 2),
        ] {
            let input = GraphInput::new(g);
            let (got, _) = cpu(&input, 3);
            assert!(close(&got, &reference(&input)), "{}", input.name());
        }
    }

    #[test]
    fn gpu_matches_serial() {
        for g in [toy::star(18), gen::gnp(120, 0.05, 13)] {
            let input = GraphInput::new(g);
            let (got, secs) = gpu(&input, rtx3090());
            assert!(close(&got, &reference(&input)), "{}", input.name());
            assert!(secs > 0.0);
        }
    }

    #[test]
    fn empty_graph() {
        let input = GraphInput::new(indigo_graph::Csr::from_raw(vec![0], vec![], vec![], "e"));
        assert!(cpu(&input, 2).0.is_empty());
        assert!(gpu(&input, rtx3090()).0.is_empty());
    }
}
