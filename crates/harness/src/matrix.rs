//! The run matrix: every selected variant on every input on every target.
//!
//! `RunPlan::run_with` executes the matrix under a two-level parallel
//! scheduler (see [`crate::schedule`]): graph preparation and GPU-sim cells
//! fan out across a host thread pool, CPU wall-clock cells run exclusively
//! afterwards, and every measurement lands in a slot indexed by the serial
//! nesting order — so the returned vector is bit-identical to a
//! single-threaded run for any job count.

use crate::schedule::{ProgressEvent, RunOptions, RunPhase};
use indigo_core::gpu::DeviceGraph;
use indigo_core::{run_variant, verify, GraphInput, Target};
use indigo_exec::SYSTEM_PROFILES;
use indigo_gpusim::{rtx3090, titan_v, Device};
use indigo_graph::gen::{suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
use indigo_styles::{enumerate, Algorithm, Model, StyleConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One measured (variant, input, target) cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The program variant.
    pub cfg: StyleConfig,
    /// Input graph label (`SuiteGraph::label`).
    pub graph: &'static str,
    /// Target label (`"TitanV-sim"`, `"sys1"`, …).
    pub target: String,
    /// Throughput in giga-edges per second (§4.5).
    pub geps: f64,
    /// Convergence iterations of the run.
    pub iterations: usize,
}

/// A measurement target: one simulated GPU or one CPU system profile.
#[derive(Clone, Debug)]
pub enum TargetSpec {
    /// Simulated GPU device.
    Gpu(Device),
    /// CPU profile: name + thread count.
    Cpu(&'static str, usize),
}

impl TargetSpec {
    /// Display label used in reports.
    pub fn label(&self) -> String {
        match self {
            TargetSpec::Gpu(d) => d.name.to_string(),
            TargetSpec::Cpu(name, _) => name.to_string(),
        }
    }

    /// The default targets for a model: both GPUs for CUDA, both system
    /// profiles for the CPU models (§4.3).
    pub fn defaults_for(model: Model) -> Vec<TargetSpec> {
        match model {
            Model::Cuda => vec![TargetSpec::Gpu(titan_v()), TargetSpec::Gpu(rtx3090())],
            _ => SYSTEM_PROFILES
                .iter()
                .map(|p| TargetSpec::Cpu(p.name, p.threads))
                .collect(),
        }
    }
}

/// What to run.
pub struct RunPlan {
    /// Variants to measure.
    pub variants: Vec<StyleConfig>,
    /// Inputs (paper Table 4 families).
    pub graphs: Vec<SuiteGraph>,
    /// Instance scale.
    pub scale: Scale,
    /// Wall-clock repetitions for CPU runs (median taken; the paper uses 9).
    pub reps: usize,
    /// Verify every output against the serial reference (§4.1). Slows large
    /// sweeps; recommended on.
    pub verify: bool,
}

impl RunPlan {
    /// Every variant of `algorithms` under `models`, all five inputs.
    pub fn for_algorithms(
        algorithms: &[Algorithm],
        models: &[Model],
        scale: Scale,
        reps: usize,
    ) -> RunPlan {
        let variants = models
            .iter()
            .flat_map(|&m| {
                algorithms
                    .iter()
                    .flat_map(move |&a| enumerate::variants(a, m))
            })
            .collect();
        RunPlan {
            variants,
            graphs: SUITE_GRAPHS.to_vec(),
            scale,
            reps,
            verify: true,
        }
    }

    /// Keeps only variants satisfying `pred`.
    pub fn filter(mut self, pred: impl Fn(&StyleConfig) -> bool) -> RunPlan {
        self.variants.retain(|c| pred(c));
        self
    }

    /// Restricts the input set.
    pub fn with_graphs(mut self, graphs: Vec<SuiteGraph>) -> RunPlan {
        self.graphs = graphs;
        self
    }

    /// Runs the full matrix single-threaded; `progress` is invoked with
    /// (done, total) *measurement cells*.
    pub fn run(&self, mut progress: impl FnMut(usize, usize)) -> Vec<Measurement> {
        self.run_with(&RunOptions::default(), |ev| {
            if let ProgressEvent::Cell { phase, done, total } = ev {
                if phase != RunPhase::Prepare {
                    progress(done, total);
                }
            }
        })
    }

    /// Runs the full matrix under the two-level scheduler.
    ///
    /// Cells are indexed by the serial nesting order (graphs → variants →
    /// targets) and each thread writes its [`Measurement`] into that slot,
    /// so the returned vector — order and values — is identical to
    /// `options.jobs == 1` for any job count: GPU cells report simulated
    /// cycles (host-load independent, and the simulator is deterministic),
    /// and CPU wall-clock cells run exclusively after the GPU phase
    /// drains.
    pub fn run_with(
        &self,
        options: &RunOptions,
        mut progress: impl FnMut(ProgressEvent),
    ) -> Vec<Measurement> {
        let jobs = options.jobs.max(1);

        // ---- phase 1: prepare inputs (generate + upload), one per graph
        let started = Instant::now();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::Prepare,
            total: self.graphs.len(),
        });
        let inputs = run_indexed_parallel(
            self.graphs.len(),
            jobs,
            |g| {
                let input = GraphInput::new(suite_graph(self.graphs[g], self.scale));
                // upload once per graph, reused by every GPU variant
                let dg = DeviceGraph::upload(&input);
                (input, dg)
            },
            |done| {
                progress(ProgressEvent::Cell {
                    phase: RunPhase::Prepare,
                    done,
                    total: self.graphs.len(),
                });
            },
        );
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::Prepare,
            total: self.graphs.len(),
            secs: started.elapsed().as_secs_f64(),
        });

        // ---- enumerate cells in serial nesting order; the slot index is
        // the position a single-threaded run would emit the measurement at
        struct Cell {
            slot: usize,
            graph: usize,
            variant: usize,
            target: TargetSpec,
        }
        let mut gpu_cells = Vec::new();
        let mut cpu_cells = Vec::new();
        let mut slot = 0usize;
        for graph in 0..self.graphs.len() {
            for (variant, cfg) in self.variants.iter().enumerate() {
                for target in TargetSpec::defaults_for(cfg.model) {
                    let is_gpu = matches!(target, TargetSpec::Gpu(_));
                    let cell = Cell {
                        slot,
                        graph,
                        variant,
                        target,
                    };
                    if is_gpu {
                        gpu_cells.push(cell);
                    } else {
                        cpu_cells.push(cell);
                    }
                    slot += 1;
                }
            }
        }
        let slots: Vec<OnceLock<Measurement>> = (0..slot).map(|_| OnceLock::new()).collect();

        // ---- phase 2: GPU-sim cells, fanned across the job pool
        let started = Instant::now();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::GpuSim,
            total: gpu_cells.len(),
        });
        run_indexed_parallel(
            gpu_cells.len(),
            jobs,
            |i| {
                let cell = &gpu_cells[i];
                let (input, dg) = &inputs[cell.graph];
                let m = self.run_cell(
                    &self.variants[cell.variant],
                    self.graphs[cell.graph],
                    input,
                    dg,
                    &cell.target,
                    options.sim_workers,
                );
                let filled = slots[cell.slot].set(m);
                debug_assert!(filled.is_ok(), "slot {} measured twice", cell.slot);
            },
            |done| {
                progress(ProgressEvent::Cell {
                    phase: RunPhase::GpuSim,
                    done,
                    total: gpu_cells.len(),
                });
            },
        );
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::GpuSim,
            total: gpu_cells.len(),
            secs: started.elapsed().as_secs_f64(),
        });

        // ---- phase 3: CPU wall-clock cells, exclusive (no concurrent
        // measurement work that would skew the timings)
        let started = Instant::now();
        progress(ProgressEvent::PhaseStart {
            phase: RunPhase::CpuWall,
            total: cpu_cells.len(),
        });
        for (done, cell) in cpu_cells.iter().enumerate() {
            let (input, dg) = &inputs[cell.graph];
            let m = self.run_cell(
                &self.variants[cell.variant],
                self.graphs[cell.graph],
                input,
                dg,
                &cell.target,
                options.sim_workers,
            );
            let filled = slots[cell.slot].set(m);
            debug_assert!(filled.is_ok(), "slot {} measured twice", cell.slot);
            progress(ProgressEvent::Cell {
                phase: RunPhase::CpuWall,
                done: done + 1,
                total: cpu_cells.len(),
            });
        }
        progress(ProgressEvent::PhaseEnd {
            phase: RunPhase::CpuWall,
            total: cpu_cells.len(),
            secs: started.elapsed().as_secs_f64(),
        });

        slots
            .into_iter()
            .map(|s| s.into_inner().expect("every cell slot measured"))
            .collect()
    }

    fn run_cell(
        &self,
        cfg: &StyleConfig,
        which: SuiteGraph,
        input: &GraphInput,
        dg: &DeviceGraph,
        target: &TargetSpec,
        sim_workers: usize,
    ) -> Measurement {
        let (result, reps) = match target {
            TargetSpec::Gpu(device) => {
                // the simulator is deterministic: one run is exact
                (indigo_core::run_gpu_with(cfg, dg, *device, sim_workers), 1)
            }
            TargetSpec::Cpu(_, threads) => (
                run_variant(cfg, input, &Target::cpu(*threads)),
                self.reps.max(1),
            ),
        };
        let mut secs = vec![result.secs];
        if reps > 1 {
            if let TargetSpec::Cpu(_, threads) = target {
                for _ in 1..reps {
                    secs.push(run_variant(cfg, input, &Target::cpu(*threads)).secs);
                }
            }
        }
        secs.sort_by(f64::total_cmp);
        let median = secs[secs.len() / 2];
        if self.verify {
            if let Err(e) = verify::check(cfg, input, &result.output) {
                panic!(
                    "verification failed for {} on {}: {e}",
                    cfg.name(),
                    input.name()
                );
            }
        }
        let geps = if median > 0.0 {
            input.num_edges() as f64 / median / 1e9
        } else {
            f64::INFINITY
        };
        Measurement {
            cfg: *cfg,
            graph: which.label(),
            target: target.label(),
            geps,
            iterations: result.iterations,
        }
    }
}

/// Runs `work(i)` for every `i in 0..n` on up to `jobs` threads (dynamic
/// work-stealing from a shared cursor) while the calling thread reports
/// completion counts through `tick`. With `jobs == 1` everything runs
/// inline on the caller — no threads, `tick` after every item.
///
/// Returns collected results ordered by index when `work` returns a value;
/// pass a `()`-returning closure for side-effect-only stages.
fn run_indexed_parallel<T, W>(n: usize, jobs: usize, work: W, mut tick: impl FnMut(usize)) -> Vec<T>
where
    T: Send + Sync,
    W: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if jobs <= 1 || n == 1 {
        return (0..n)
            .map(|i| {
                let r = work(i);
                tick(i + 1);
                r
            })
            .collect();
    }
    let out: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let filled = out[i].set(work(i));
                    debug_assert!(filled.is_ok(), "index {i} computed twice");
                    finished.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        // the caller's thread narrates progress while workers drain; bail
        // out if every worker exited (a panicking cell — e.g. failed
        // verification — is re-raised by the scope join below)
        let mut last = 0usize;
        while last < n {
            let done = finished.load(Ordering::Acquire);
            if done > last {
                last = done;
                tick(done);
            } else if handles.iter().all(|h| h.is_finished()) {
                break;
            } else {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        }
    });
    out.into_iter()
        .map(|c| c.into_inner().expect("every index computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_runs_and_verifies() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Bfs], &[Model::Cpp], Scale::Tiny, 1)
            .filter(|c| c.cpp_schedule == Some(indigo_styles::CppSchedule::Blocked))
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let ms = plan.run(|_, _| {});
        // 20 blocked BFS Cpp variants × 1 graph × 2 system profiles
        assert_eq!(ms.len(), plan.variants.len() * 2);
        assert!(ms.iter().all(|m| m.geps.is_finite() && m.geps > 0.0));
    }

    #[test]
    fn gpu_cells_are_deterministic() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| c.granularity == Some(indigo_styles::Granularity::Warp))
            .with_graphs(vec![SuiteGraph::CoPapers]);
        let a = plan.run(|_, _| {});
        let b = plan.run(|_, _| {});
        let ga: Vec<f64> = a.iter().map(|m| m.geps).collect();
        let gb: Vec<f64> = b.iter().map(|m| m.geps).collect();
        assert_eq!(ga, gb);
    }

    #[test]
    fn parallel_schedule_matches_serial_bitwise() {
        // mixed GPU + CPU slice; geps of GPU cells must be bit-identical
        // across job counts, and cell order must match the serial nesting
        let plan = RunPlan::for_algorithms(
            &[Algorithm::Tc, Algorithm::Pr],
            &[Model::Cuda],
            Scale::Tiny,
            1,
        )
        .filter(|c| c.granularity != Some(indigo_styles::Granularity::Block))
        .with_graphs(vec![SuiteGraph::Grid2d, SuiteGraph::Rmat]);
        let serial = plan.run_with(&RunOptions::default(), |_| {});
        for jobs in [2usize, 4] {
            let par = plan.run_with(
                &RunOptions::default().with_jobs(jobs).with_sim_workers(2),
                |_| {},
            );
            assert_eq!(serial.len(), par.len(), "jobs={jobs}");
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.cfg.name(), b.cfg.name(), "jobs={jobs}");
                assert_eq!(a.graph, b.graph);
                assert_eq!(a.target, b.target);
                assert_eq!(
                    a.geps.to_bits(),
                    b.geps.to_bits(),
                    "{} on {}",
                    a.cfg.name(),
                    a.graph
                );
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn progress_events_are_phase_structured() {
        let plan = RunPlan::for_algorithms(&[Algorithm::Tc], &[Model::Cuda], Scale::Tiny, 1)
            .filter(|c| {
                c.granularity == Some(indigo_styles::Granularity::Thread)
                    && c.atomic == Some(indigo_styles::AtomicKind::Atomic)
            })
            .with_graphs(vec![SuiteGraph::Grid2d]);
        let mut events = Vec::new();
        let ms = plan.run_with(&RunOptions::default().with_jobs(2), |ev| events.push(ev));
        // three phases, each bracketed by start/end
        for phase in [RunPhase::Prepare, RunPhase::GpuSim, RunPhase::CpuWall] {
            assert!(events
                .iter()
                .any(|e| matches!(e, ProgressEvent::PhaseStart { phase: p, .. } if *p == phase)));
            assert!(events
                .iter()
                .any(|e| matches!(e, ProgressEvent::PhaseEnd { phase: p, .. } if *p == phase)));
        }
        // the GPU phase accounts for every cell (all-CUDA plan)
        let gpu_total = events
            .iter()
            .find_map(|e| match e {
                ProgressEvent::PhaseStart {
                    phase: RunPhase::GpuSim,
                    total,
                } => Some(*total),
                _ => None,
            })
            .unwrap();
        assert_eq!(gpu_total, ms.len());
    }

    #[test]
    fn target_labels_distinct() {
        let cuda = TargetSpec::defaults_for(Model::Cuda);
        let cpu = TargetSpec::defaults_for(Model::Omp);
        assert_eq!(cuda.len(), 2);
        assert_eq!(cpu.len(), 2);
        assert_ne!(cuda[0].label(), cuda[1].label());
        assert_ne!(cpu[0].label(), cpu[1].label());
    }
}
