//! Seeded deterministic graph generators.
//!
//! The paper evaluates on five inputs chosen to span graph families
//! (Table 4): a 2-D grid, a publication/collaboration network, an RMAT
//! graph, a social network, and a road map. Each generator here targets one
//! of those families, reproducing the family-defining properties the paper's
//! §5.13 correlates against — degree distribution shape and diameter — at a
//! configurable, laptop-friendly scale.
//!
//! Everything is a pure function of its arguments (including the `seed`), so
//! experiments are exactly reproducible.

mod cliques;
mod grid;
mod random;
mod rmat;
mod road;
mod social;
mod suite;
pub mod toy;

pub use cliques::clique_overlap;
pub use grid::grid2d;
pub use random::gnp;
pub use rmat::rmat;
pub use road::road;
pub use social::preferential_attachment;
pub use suite::{default_suite, suite_graph, Scale, SuiteGraph, SUITE_GRAPHS};
