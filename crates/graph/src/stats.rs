//! Graph property analysis — the numbers behind the paper's Tables 4 and 5.
//!
//! Degree statistics are exact. The diameter is reported as a lower bound
//! obtained by repeated double-sweep BFS from pseudo-peripheral vertices on
//! the largest component — exact on trees/paths and within a small factor in
//! general, which is all Table 5 is used for (classifying inputs into
//! low- vs high-diameter regimes).

use crate::{Csr, NodeId};

/// Summary statistics for one input graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub nodes: usize,
    /// Directed edge count (2× undirected).
    pub edges: usize,
    /// In-memory CSR size in MiB.
    pub size_mb: f64,
    /// Average (directed) degree — `d_avg` in Table 5.
    pub avg_degree: f64,
    /// Maximum degree — `d_max`.
    pub max_degree: usize,
    /// Percent of vertices with degree ≥ 32.
    pub pct_deg_ge32: f64,
    /// Percent of vertices with degree ≥ 512.
    pub pct_deg_ge512: f64,
    /// Diameter lower bound of the largest connected component.
    pub diameter_lb: usize,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &Csr) -> GraphStats {
        let n = g.num_nodes();
        let mut max_degree = 0usize;
        let mut ge32 = 0usize;
        let mut ge512 = 0usize;
        for v in 0..n as NodeId {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            if d >= 32 {
                ge32 += 1;
            }
            if d >= 512 {
                ge512 += 1;
            }
        }
        let (components, largest_rep) = component_info(g);
        let diameter_lb = if n == 0 {
            0
        } else {
            double_sweep(g, largest_rep)
        };
        GraphStats {
            nodes: n,
            edges: g.num_edges(),
            size_mb: g.size_mb(),
            avg_degree: if n == 0 {
                0.0
            } else {
                g.num_edges() as f64 / n as f64
            },
            max_degree,
            pct_deg_ge32: pct(ge32, n),
            pct_deg_ge512: pct(ge512, n),
            diameter_lb,
            components,
        }
    }

    /// One row of the Table 4/5 analog, pipe-separated.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name} | {} | {} | {:.1} MB | {:.1} | {} | {:.1}% | {:.3}% | {} | {}",
            self.nodes,
            self.edges,
            self.size_mb,
            self.avg_degree,
            self.max_degree,
            self.pct_deg_ge32,
            self.pct_deg_ge512,
            self.diameter_lb,
            self.components
        )
    }
}

fn pct(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * count as f64 / total as f64
    }
}

/// BFS from `src`; returns (farthest vertex, its distance, visited count).
fn bfs_far(g: &Csr, src: NodeId) -> (NodeId, usize, usize) {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    let mut far = src;
    let mut far_d = 0usize;
    let mut visited = 1usize;
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dv + 1;
                visited += 1;
                if dv + 1 > far_d {
                    far_d = dv + 1;
                    far = u;
                }
                queue.push_back(u);
            }
        }
    }
    (far, far_d, visited)
}

/// Counts components and returns a representative of the largest one.
fn component_info(g: &Csr) -> (usize, NodeId) {
    let n = g.num_nodes();
    if n == 0 {
        return (0, 0);
    }
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    let mut best = (0usize, 0 as NodeId); // (size, representative)
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let c = count;
        count += 1;
        let mut size = 0usize;
        comp[s] = c;
        stack.push(s as NodeId);
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in g.neighbors(v) {
                if comp[u as usize] == usize::MAX {
                    comp[u as usize] = c;
                    stack.push(u);
                }
            }
        }
        if size > best.0 {
            best = (size, s as NodeId);
        }
    }
    (count, best.1)
}

/// Double-sweep diameter lower bound with a few extra refinement sweeps.
fn double_sweep(g: &Csr, start: NodeId) -> usize {
    let (far1, _, _) = bfs_far(g, start);
    let (mut from, mut best, _) = bfs_far(g, far1);
    // a couple of extra sweeps from the new periphery tighten the bound on
    // non-tree graphs at negligible cost
    for _ in 0..2 {
        let (nf, d, _) = bfs_far(g, from);
        if d > best {
            best = d;
            from = nf;
        } else {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::toy;

    #[test]
    fn path_diameter_exact() {
        let s = GraphStats::compute(&toy::path(50));
        assert_eq!(s.diameter_lb, 49);
        assert_eq!(s.components, 1);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn cycle_diameter() {
        let s = GraphStats::compute(&toy::cycle(10));
        assert_eq!(s.diameter_lb, 5);
    }

    #[test]
    fn two_components_detected() {
        let s = GraphStats::compute(&toy::two_triangles());
        assert_eq!(s.components, 2);
        assert_eq!(s.diameter_lb, 1);
    }

    #[test]
    fn grid_diameter_exact() {
        let g = crate::gen::grid2d(12, 7);
        let s = GraphStats::compute(&g);
        assert_eq!(s.diameter_lb, 12 + 7 - 2);
    }

    #[test]
    fn star_degree_stats() {
        let s = GraphStats::compute(&toy::star(100));
        assert_eq!(s.max_degree, 99);
        assert_eq!(s.pct_deg_ge32, 1.0); // only the hub
        assert_eq!(s.diameter_lb, 2);
    }

    #[test]
    fn empty_graph() {
        let g = crate::Csr::from_raw(vec![0], vec![], vec![], "empty");
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.diameter_lb, 0);
    }

    #[test]
    fn avg_degree_formula() {
        let s = GraphStats::compute(&toy::complete(5));
        assert!((s.avg_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_formats() {
        let s = GraphStats::compute(&toy::path(3));
        let row = s.table_row("p3");
        assert!(row.starts_with("p3 | 3 | 4 |"));
    }
}
