//! One module (or spec entry) per paper table/figure.
//!
//! Figures 1–8, 12, and 13 are all "two options of one dimension, all other
//! styles fixed" boxen plots; they share the [`PairSpec`] builder. Figures
//! 9–11 plot raw throughputs of three-way styles; 14–16 and the §5.13
//! correlation have dedicated modules, as do the Tables.

pub mod correlation;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod outcomes;
pub mod tables;
pub mod throughput;

use crate::matrix::{Measurement, RunPlan};
use crate::outcome::{MatrixRun, Resilience};
use crate::ratios;
use crate::report::Report;
use crate::stats::Summary;
use indigo_graph::gen::Scale;
use indigo_styles::{Algorithm, Model, StyleConfig};

/// The full measured dataset all experiments derive from.
pub struct Dataset {
    /// Every suite variant on every input on every default target.
    pub measurements: Vec<Measurement>,
    /// Instance scale the measurements were taken at.
    pub scale: Scale,
}

impl Dataset {
    /// Runs the complete suite (all models, all algorithms, all inputs)
    /// single-threaded.
    pub fn collect(scale: Scale, reps: usize, progress: impl FnMut(usize, usize)) -> Dataset {
        let plan = RunPlan::for_algorithms(&Algorithm::ALL, &Model::ALL, scale, reps);
        Dataset {
            measurements: plan.run(progress),
            scale,
        }
    }

    /// [`Dataset::collect`] under the two-level parallel scheduler (see
    /// [`crate::schedule`]); measurements are bit-identical to a serial
    /// collection for any job count.
    pub fn collect_with(
        scale: Scale,
        reps: usize,
        options: &crate::schedule::RunOptions,
        progress: impl FnMut(crate::schedule::ProgressEvent),
    ) -> Dataset {
        let plan = RunPlan::for_algorithms(&Algorithm::ALL, &Model::ALL, scale, reps);
        Dataset {
            measurements: plan.run_with(options, progress),
            scale,
        }
    }

    /// [`Dataset::collect_with`] under the fault-tolerant scheduler: every
    /// cell ends in a structured outcome, and the returned [`MatrixRun`]
    /// carries the full record set (including crashed / timed-out /
    /// quarantined cells) alongside the dataset of usable measurements.
    pub fn collect_cells(
        scale: Scale,
        reps: usize,
        options: &crate::schedule::RunOptions,
        res: &Resilience,
        progress: impl FnMut(crate::schedule::ProgressEvent),
    ) -> Result<(Dataset, MatrixRun), String> {
        let plan = RunPlan::for_algorithms(&Algorithm::ALL, &Model::ALL, scale, reps);
        let run = plan.run_cells(options, res, progress)?;
        Ok((
            Dataset {
                measurements: run.measurements(),
                scale,
            },
            run,
        ))
    }

    /// Measurements restricted to one model.
    pub fn of_model(&self, model: Model) -> Vec<Measurement> {
        self.measurements
            .iter()
            .filter(|m| m.cfg.model == model)
            .cloned()
            .collect()
    }

    /// Measurements of the two CPU models together.
    pub fn cpu(&self) -> Vec<Measurement> {
        self.measurements
            .iter()
            .filter(|m| m.cfg.model.is_cpu())
            .cloned()
            .collect()
    }
}

/// Declarative description of one pairwise-ratio figure.
pub struct PairSpec {
    /// Report id (`"fig01"` …).
    pub id: &'static str,
    /// Paper caption.
    pub title: &'static str,
    /// Dimension key (see [`StyleConfig::dimension_label`]).
    pub dim: &'static str,
    /// Numerator option label.
    pub numer: &'static str,
    /// Denominator option label.
    pub denom: &'static str,
    /// Models included.
    pub models: &'static [Model],
    /// Algorithms included (`None` = all that carry the dimension).
    pub algos: Option<&'static [Algorithm]>,
    /// Additional variant predicate (e.g. Fig 2c's thread-granularity TC).
    pub extra: Option<fn(&StyleConfig) -> bool>,
}

/// All pairwise-ratio figures of §5, in paper order.
pub const PAIR_SPECS: &[PairSpec] = &[
    PairSpec {
        id: "fig01",
        title: "Throughput ratios of Atomic over CudaAtomic (§5.1)",
        dim: "atomic",
        numer: "atomic",
        denom: "cudaatomic",
        models: &[Model::Cuda],
        algos: None,
        extra: None,
    },
    PairSpec {
        id: "fig02",
        title: "Throughput ratios of vertex- over edge-based (§5.2)",
        dim: "direction",
        numer: "vertex",
        denom: "edge",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: None,
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig02c",
        title: "Vertex/edge ratios of thread-granularity TC (§5.2, Fig 2c)",
        dim: "direction",
        numer: "vertex",
        denom: "edge",
        models: &[Model::Cuda],
        algos: Some(&[Algorithm::Tc]),
        extra: Some(|c| {
            c.granularity == Some(indigo_styles::Granularity::Thread) && exclude_cudaatomic(c)
        }),
    },
    PairSpec {
        id: "fig03",
        title: "Topology-driven over data-driven with duplicates (§5.3.1)",
        dim: "drive",
        numer: "topo",
        denom: "data-dup",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: Some(&[Algorithm::Cc, Algorithm::Bfs, Algorithm::Sssp]),
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig04",
        title: "Topology-driven over data-driven without duplicates (§5.3.2)",
        dim: "drive",
        numer: "topo",
        denom: "data-nodup",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: Some(&[
            Algorithm::Cc,
            Algorithm::Mis,
            Algorithm::Bfs,
            Algorithm::Sssp,
        ]),
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig05",
        title: "Throughput ratios of push over pull (§5.4)",
        dim: "flow",
        numer: "push",
        denom: "pull",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: None,
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig06",
        title: "Read-write over read-modify-write (§5.5)",
        dim: "update",
        numer: "rw",
        denom: "rmw",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: Some(&[Algorithm::Cc, Algorithm::Bfs, Algorithm::Sssp]),
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig07",
        title: "Deterministic over internally non-deterministic (§5.6)",
        dim: "determinism",
        numer: "det",
        denom: "nondet",
        models: &[Model::Cuda, Model::Omp, Model::Cpp],
        algos: None,
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig08",
        title: "Persistent over non-persistent (§5.7)",
        dim: "persistence",
        numer: "persist",
        denom: "nonpersist",
        models: &[Model::Cuda],
        algos: None,
        extra: Some(exclude_cudaatomic),
    },
    PairSpec {
        id: "fig12",
        title: "Default over dynamic scheduling, OpenMP (§5.11)",
        dim: "omp_schedule",
        numer: "default",
        denom: "dynamic",
        models: &[Model::Omp],
        algos: None,
        extra: None,
    },
    PairSpec {
        id: "fig13",
        title: "Blocked over cyclic scheduling, C++ threads (§5.12)",
        dim: "cpp_schedule",
        numer: "blocked",
        denom: "cyclic",
        models: &[Model::Cpp],
        algos: None,
        extra: None,
    },
];

/// §5.1 removes the CudaAtomic codes from all later sections "to narrow
/// down the ranges of the presented throughput ratios".
fn exclude_cudaatomic(c: &StyleConfig) -> bool {
    c.atomic != Some(indigo_styles::AtomicKind::CudaAtomic)
}

/// Builds the report for one [`PairSpec`] from the dataset.
pub fn pair_report(spec: &PairSpec, ds: &Dataset) -> Report {
    let mut report = Report::new(spec.id, spec.title);
    report.csv_row("target,algorithm,n,min,p25,median,p75,max,frac_above_1");
    let selected: Vec<Measurement> = ds
        .measurements
        .iter()
        .filter(|m| spec.models.contains(&m.cfg.model))
        .filter(|m| spec.algos.is_none_or(|a| a.contains(&m.cfg.algorithm)))
        .filter(|m| spec.extra.is_none_or(|f| f(&m.cfg)))
        .cloned()
        .collect();
    let ratios = ratios::ratio_set(&selected, spec.dim, spec.numer, spec.denom);
    if ratios.is_empty() {
        report.line("(no variant pairs in the measured subset)");
        return report;
    }
    let (lo, hi) = ratios.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), r| {
        (lo.min(r.value), hi.max(r.value))
    });

    let mut targets: Vec<String> = ratios.iter().map(|r| r.target.clone()).collect();
    targets.sort();
    targets.dedup();
    for target in &targets {
        report.line(format!("-- {target} --"));
        report.line(Summary::header());
        for algo in Algorithm::ALL {
            let values: Vec<f64> = ratios
                .iter()
                .filter(|r| &r.target == target && r.algorithm == algo)
                .map(|r| r.value)
                .collect();
            if let Some(s) = Summary::compute(&values) {
                report.line(s.row(algo.abbrev()));
                report.line(format!(
                    "{:18} [{}]  (log scale {:.2e}..{:.2e}, '|' median)",
                    "",
                    s.strip(lo, hi, 46),
                    lo,
                    hi
                ));
                report.csv_row(format!(
                    "{target},{},{},{},{},{},{},{},{}",
                    algo.abbrev(),
                    s.n,
                    s.min,
                    s.p25,
                    s.median,
                    s.p75,
                    s.max,
                    s.frac_above_one
                ));
            }
        }
    }
    report
}

/// Runs every pairwise figure.
pub fn all_pair_reports(ds: &Dataset) -> Vec<Report> {
    PAIR_SPECS.iter().map(|s| pair_report(s, ds)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_unique_ids_and_valid_dims() {
        let mut ids: Vec<&str> = PAIR_SPECS.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), PAIR_SPECS.len());
        for s in PAIR_SPECS {
            assert!(
                StyleConfig::DIMENSIONS.contains(&s.dim),
                "{} uses unknown dimension {}",
                s.id,
                s.dim
            );
            assert_ne!(s.numer, s.denom);
        }
    }
}
