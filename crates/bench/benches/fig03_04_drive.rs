//! Figs 3/4 bench: topology- vs data-driven (both worklist policies) on
//! the high-diameter road map, where the work-efficiency gap peaks.

use indigo_bench::{bench_cpu_variant, bench_gpu_variant, criterion, input};
use indigo_gpusim::titan_v;
use indigo_graph::gen::SuiteGraph;
use indigo_styles::{Algorithm, Drive, Model, StyleConfig};

fn main() {
    let mut c = criterion();
    let road = input(SuiteGraph::RoadMap);
    for drive in Drive::ALL {
        let mut gpu = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        gpu.drive = drive;
        if gpu.check().is_ok() {
            bench_gpu_variant(
                &mut c,
                "fig03_04_drive_gpu",
                &format!("sssp/{}", drive.label()),
                &gpu,
                &road,
                titan_v(),
            );
        }
        for model in [Model::Omp, Model::Cpp] {
            let mut cpu = StyleConfig::baseline(Algorithm::Sssp, model);
            cpu.drive = drive;
            if cpu.check().is_ok() {
                bench_cpu_variant(
                    &mut c,
                    "fig03_04_drive_cpu",
                    &format!("{}/sssp/{}", model.label(), drive.label()),
                    &cpu,
                    &road,
                    4,
                );
            }
        }
    }
    c.final_summary();
}
