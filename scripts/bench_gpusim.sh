#!/usr/bin/env bash
# Regenerates results/BENCH_gpusim.json: the simulator hot-path record.
#
# Combines three measurements (DESIGN.md §7.4):
#   * the deterministic perf probe (simulated cycles, access counts,
#     steady-state allocations — flake-free, used by the CI gate),
#   * the gpusim_hotpath microbench medians (host wall-clock),
#   * one harness smoke run's gpu-sim phase (end-to-end cells/sec),
# next to the committed PR 2 baseline so the speedup trajectory stays
# visible in-tree.
set -euo pipefail
cd "$(dirname "$0")/.."

# the perf probe reads telemetry counter deltas, so it needs the feature;
# the smoke timing below uses the default (telemetry-off) harness build
cargo build -q --release -p indigo-bench --features telemetry
cargo build -q --release -p indigo-harness

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

probe_json=$(target/release/gpusim_perf)

micro=$(cargo bench -q -p indigo-bench --bench gpusim_hotpath 2>/dev/null |
    awk '/median/ && $1 ~ /gpusim_hotpath\// {
        name=$1; sub("gpusim_hotpath/", "", name)
        printf "%s    {\"name\": \"%s\", \"median\": \"%s\"}", sep, name, $3
        sep=",\n"
    } END { print "" }')

target/release/indigo-exp --smoke --scale small --jobs 1 --sim-workers 1 \
    --out "$out" >/dev/null
gpu_line=$(grep -o '"phase": "gpu-sim"[^}]*' "$out/BENCH_harness.json")
cells=$(echo "$gpu_line" | grep -o '"units": [0-9]*' | grep -o '[0-9]*')
secs=$(echo "$gpu_line" | grep -o '"secs": [0-9.]*' | grep -o '[0-9.]*')
cells_per_sec=$(awk -v c="$cells" -v s="$secs" 'BEGIN { printf "%.3f", c / s }')

# PR 2 committed baseline: gpu-sim phase 5.148 s / 208 cells
base_cps=$(awk 'BEGIN { printf "%.3f", 208 / 5.148 }')
speedup=$(awk -v n="$cells_per_sec" -v b="$base_cps" 'BEGIN { printf "%.2f", n / b }')

cat > results/BENCH_gpusim.json <<EOF
{
  "generated_by": "scripts/bench_gpusim.sh",
  "probe": $(echo "$probe_json" | sed '2,$s/^/  /'),
  "microbench_host_medians": [
$micro
  ],
  "harness_gpu_sim_phase": {
    "cells": $cells,
    "secs": $secs,
    "cells_per_sec": $cells_per_sec,
    "baseline_pr2": {"cells": 208, "secs": 5.148, "cells_per_sec": $base_cps},
    "speedup_vs_pr2": $speedup
  }
}
EOF

echo "wrote results/BENCH_gpusim.json (gpu-sim ${secs}s, ${cells_per_sec} cells/s, ${speedup}x vs PR 2)"
