//! Always-on server statistics (DESIGN.md §7.8, §7.10).
//!
//! The chaos gate's invariants ("breaker trip/recovery observable",
//! "retries counted") must hold in *every* build, so the server keeps its
//! own plain atomics rather than relying on `crates/obs` counters (which
//! compile to nothing without the `telemetry` feature). Counters are a
//! [`ServeCounter`]-indexed array: one [`Stats::bump`] updates the
//! always-on slot *and* mirrors into the matching obs counter, so call
//! sites can't drift the two apart, and [`Stats::snapshot`] can read the
//! whole array in one coherent sweep (re-read until stable) instead of
//! per-field loads — ratios like coalesced/requests can't be torn by a
//! bump landing mid-snapshot.
//!
//! A [`RollingHist`] of the same latencies rides along so `/metrics` can
//! report live (last ~10 s) p50/p99 and SLO violation ratios next to the
//! cumulative-since-boot histogram.

use indigo_obs::hist::{bucket_floor, bucket_of, NUM_BUCKETS};
use indigo_obs::{RollingHist, RollingSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of serve-layer counters (kept in sync with [`ServeCounter::ALL`]).
pub const NUM_SERVE_COUNTERS: usize = 17;

/// Every always-on serving counter, in storage (and `/stats` JSON) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ServeCounter {
    /// Connections accepted (sheds included).
    Requests,
    /// 2xx responses (degraded included).
    Ok,
    /// 429 sheds from admission control.
    Shed,
    /// 504 deadline exhaustions (in queue or mid-retry).
    Timeouts,
    /// Cell re-executions after a transient failure.
    Retries,
    /// Degraded responses served while a breaker was open.
    Degraded,
    /// Requests fully answered from the fingerprint cache.
    CacheHits,
    /// Breaker transitions closed → open.
    BreakerTrips,
    /// Breaker half-open probes that recovered (→ closed).
    BreakerRecoveries,
    /// 5xx failures (retries exhausted, wrong answers, harness errors).
    Failed,
    /// 4xx client errors.
    BadRequests,
    /// Journal appends that failed (service continued without persistence).
    JournalErrors,
    /// Merged plans executed by the batch former.
    Batches,
    /// Claimed cells resolved through batched plan executions.
    BatchedCells,
    /// Requests that joined another request's in-flight cells instead of
    /// executing them (single-flight coalescing).
    Coalesced,
    /// Requests served over a reused keep-alive connection.
    KeepAliveReuses,
    /// Style-advisor answers: `style=auto` resolutions on `/run` plus
    /// `/advise` queries (DESIGN.md §7.11).
    Advised,
}

impl ServeCounter {
    /// Every counter, in storage order.
    pub const ALL: [ServeCounter; NUM_SERVE_COUNTERS] = [
        ServeCounter::Requests,
        ServeCounter::Ok,
        ServeCounter::Shed,
        ServeCounter::Timeouts,
        ServeCounter::Retries,
        ServeCounter::Degraded,
        ServeCounter::CacheHits,
        ServeCounter::BreakerTrips,
        ServeCounter::BreakerRecoveries,
        ServeCounter::Failed,
        ServeCounter::BadRequests,
        ServeCounter::JournalErrors,
        ServeCounter::Batches,
        ServeCounter::BatchedCells,
        ServeCounter::Coalesced,
        ServeCounter::KeepAliveReuses,
        ServeCounter::Advised,
    ];

    /// JSON key in the `/stats` body (and, prefixed, the `/metrics` name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServeCounter::Requests => "requests",
            ServeCounter::Ok => "ok",
            ServeCounter::Shed => "shed",
            ServeCounter::Timeouts => "timeouts",
            ServeCounter::Retries => "retries",
            ServeCounter::Degraded => "degraded",
            ServeCounter::CacheHits => "cache_hits",
            ServeCounter::BreakerTrips => "breaker_trips",
            ServeCounter::BreakerRecoveries => "breaker_recoveries",
            ServeCounter::Failed => "failed",
            ServeCounter::BadRequests => "bad_requests",
            ServeCounter::JournalErrors => "journal_errors",
            ServeCounter::Batches => "batches",
            ServeCounter::BatchedCells => "batched_cells",
            ServeCounter::Coalesced => "coalesced",
            ServeCounter::KeepAliveReuses => "keepalive_reuses",
            ServeCounter::Advised => "advised",
        }
    }

    /// The obs counter this one mirrors into in telemetry builds (`None`
    /// for counters the obs layer doesn't track separately).
    fn mirror(self) -> Option<indigo_obs::Counter> {
        use indigo_obs::Counter as C;
        match self {
            ServeCounter::Requests => Some(C::ServeRequests),
            ServeCounter::Shed => Some(C::ServeShed),
            ServeCounter::Timeouts => Some(C::ServeTimeouts),
            ServeCounter::Retries => Some(C::ServeRetries),
            ServeCounter::Degraded => Some(C::ServeDegraded),
            ServeCounter::CacheHits => Some(C::ServeCacheHits),
            ServeCounter::BreakerTrips => Some(C::ServeBreakerTrips),
            ServeCounter::BreakerRecoveries => Some(C::ServeBreakerRecoveries),
            ServeCounter::Batches => Some(C::ServeBatches),
            ServeCounter::BatchedCells => Some(C::ServeBatchedCells),
            ServeCounter::Coalesced => Some(C::ServeCoalesced),
            ServeCounter::KeepAliveReuses => Some(C::ServeKeepAliveReuses),
            ServeCounter::Ok
            | ServeCounter::Failed
            | ServeCounter::BadRequests
            | ServeCounter::JournalErrors
            | ServeCounter::Advised => None,
        }
    }
}

/// Monotonic request-pipeline counters plus latency histograms (cumulative
/// log₂ buckets and a 10 s rolling window).
pub struct Stats {
    counters: [AtomicU64; NUM_SERVE_COUNTERS],
    /// EWMA of request service time, microseconds (for `Retry-After`).
    pub service_micros_ewma: AtomicU64,
    latency: LatencyHist,
    rolling: RollingHist,
}

impl Default for Stats {
    fn default() -> Stats {
        Stats::new()
    }
}

/// Log₂ latency histogram, same bucketing as `indigo_obs::hist` (which is
/// compiled feature-off too, so the edges stay shared).
#[derive(Default)]
struct LatencyHist {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Stats {
    /// Fresh zeroed stats.
    pub fn new() -> Stats {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Stats {
            counters: [Z; NUM_SERVE_COUNTERS],
            service_micros_ewma: AtomicU64::new(0),
            latency: LatencyHist::default(),
            rolling: RollingHist::new(),
        }
    }

    /// Adds 1 to `c` (and its obs mirror, in telemetry builds).
    #[inline]
    pub fn bump(&self, c: ServeCounter) {
        self.add(c, 1);
    }

    /// Adds `n` to `c` (and its obs mirror, in telemetry builds).
    #[inline]
    pub fn add(&self, c: ServeCounter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        if let Some(m) = c.mirror() {
            m.add(n);
        }
    }

    /// Current value of one counter.
    #[must_use]
    pub fn get(&self, c: ServeCounter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Records one finished request's end-to-end latency.
    pub fn record_latency(&self, micros: u64) {
        self.latency.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.rolling.record(micros);
        // EWMA with α = 1/8: ewma += (sample − ewma) / 8
        let prev = self.service_micros_ewma.load(Ordering::Relaxed);
        let next = if prev == 0 {
            micros
        } else {
            prev - prev / 8 + micros / 8
        };
        self.service_micros_ewma.store(next, Ordering::Relaxed);
        indigo_obs::Hist::ServeRequestMicros.record(micros);
    }

    /// Live view of the last ~10 s of request latencies.
    #[must_use]
    pub fn rolling_snapshot(&self) -> RollingSnapshot {
        self.rolling.snapshot()
    }

    /// `Retry-After` advice in whole seconds for a shed when `depth`
    /// requests are queued ahead: expected drain time, at least 1 s.
    pub fn retry_after_secs(&self, depth: usize) -> u64 {
        let ewma = self.service_micros_ewma.load(Ordering::Relaxed).max(1_000);
        let drain_us = ewma.saturating_mul(depth as u64 + 1);
        drain_us.div_ceil(1_000_000).max(1)
    }

    /// Point-in-time copy, read in one coherent sweep: all counters are
    /// loaded as a batch and re-loaded until two consecutive sweeps agree
    /// (bounded retries), so no single bump can land between the loads of
    /// two related counters. Under a sustained write storm the last sweep
    /// wins — still a valid point-in-time-ish view, never a torn ratio
    /// from loads spread across the whole snapshot body.
    pub fn snapshot(&self) -> StatsSnapshot {
        let sweep = |vals: &mut [u64; NUM_SERVE_COUNTERS]| {
            for (i, a) in self.counters.iter().enumerate() {
                vals[i] = a.load(Ordering::Acquire);
            }
        };
        let mut vals = [0u64; NUM_SERVE_COUNTERS];
        sweep(&mut vals);
        for _ in 0..8 {
            let mut again = [0u64; NUM_SERVE_COUNTERS];
            sweep(&mut again);
            if again == vals {
                break;
            }
            vals = again;
        }
        let mut latency_buckets = [0u64; NUM_BUCKETS];
        for (i, b) in self.latency.buckets.iter().enumerate() {
            latency_buckets[i] = b.load(Ordering::Relaxed);
        }
        let g = |c: ServeCounter| vals[c as usize];
        StatsSnapshot {
            requests: g(ServeCounter::Requests),
            ok: g(ServeCounter::Ok),
            shed: g(ServeCounter::Shed),
            timeouts: g(ServeCounter::Timeouts),
            retries: g(ServeCounter::Retries),
            degraded: g(ServeCounter::Degraded),
            cache_hits: g(ServeCounter::CacheHits),
            breaker_trips: g(ServeCounter::BreakerTrips),
            breaker_recoveries: g(ServeCounter::BreakerRecoveries),
            failed: g(ServeCounter::Failed),
            bad_requests: g(ServeCounter::BadRequests),
            journal_errors: g(ServeCounter::JournalErrors),
            batches: g(ServeCounter::Batches),
            batched_cells: g(ServeCounter::BatchedCells),
            coalesced: g(ServeCounter::Coalesced),
            keepalive_reuses: g(ServeCounter::KeepAliveReuses),
            advised: g(ServeCounter::Advised),
            latency_buckets,
        }
    }
}

/// A copy of every counter plus the latency buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServeCounter::Requests`].
    pub requests: u64,
    /// See [`ServeCounter::Ok`].
    pub ok: u64,
    /// See [`ServeCounter::Shed`].
    pub shed: u64,
    /// See [`ServeCounter::Timeouts`].
    pub timeouts: u64,
    /// See [`ServeCounter::Retries`].
    pub retries: u64,
    /// See [`ServeCounter::Degraded`].
    pub degraded: u64,
    /// See [`ServeCounter::CacheHits`].
    pub cache_hits: u64,
    /// See [`ServeCounter::BreakerTrips`].
    pub breaker_trips: u64,
    /// See [`ServeCounter::BreakerRecoveries`].
    pub breaker_recoveries: u64,
    /// See [`ServeCounter::Failed`].
    pub failed: u64,
    /// See [`ServeCounter::BadRequests`].
    pub bad_requests: u64,
    /// See [`ServeCounter::JournalErrors`].
    pub journal_errors: u64,
    /// See [`ServeCounter::Batches`].
    pub batches: u64,
    /// See [`ServeCounter::BatchedCells`].
    pub batched_cells: u64,
    /// See [`ServeCounter::Coalesced`].
    pub coalesced: u64,
    /// See [`ServeCounter::KeepAliveReuses`].
    pub keepalive_reuses: u64,
    /// See [`ServeCounter::Advised`].
    pub advised: u64,
    /// Log₂ latency buckets (microseconds).
    pub latency_buckets: [u64; NUM_BUCKETS],
}

impl StatsSnapshot {
    /// Value of one counter by enum (the `/metrics` renderer iterates
    /// [`ServeCounter::ALL`] so the exposition can't skip a counter).
    #[must_use]
    pub fn get(&self, c: ServeCounter) -> u64 {
        match c {
            ServeCounter::Requests => self.requests,
            ServeCounter::Ok => self.ok,
            ServeCounter::Shed => self.shed,
            ServeCounter::Timeouts => self.timeouts,
            ServeCounter::Retries => self.retries,
            ServeCounter::Degraded => self.degraded,
            ServeCounter::CacheHits => self.cache_hits,
            ServeCounter::BreakerTrips => self.breaker_trips,
            ServeCounter::BreakerRecoveries => self.breaker_recoveries,
            ServeCounter::Failed => self.failed,
            ServeCounter::BadRequests => self.bad_requests,
            ServeCounter::JournalErrors => self.journal_errors,
            ServeCounter::Batches => self.batches,
            ServeCounter::BatchedCells => self.batched_cells,
            ServeCounter::Coalesced => self.coalesced,
            ServeCounter::KeepAliveReuses => self.keepalive_reuses,
            ServeCounter::Advised => self.advised,
        }
    }

    /// Bucket-floor latency percentile in microseconds (`0.0..=100.0`).
    pub fn latency_percentile_floor(&self, p: f64) -> u64 {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.latency_buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }

    /// Renders the counters as a flat JSON object body.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        for c in ServeCounter::ALL {
            out.push_str(&format!("\"{}\":{},", c.name(), self.get(c)));
        }
        out.push_str(&format!(
            "\"latency_p50_floor_us\":{},\"latency_p99_floor_us\":{}}}",
            self.latency_percentile_floor(50.0),
            self.latency_percentile_floor(99.0),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_counter_registration_stays_in_sync() {
        assert_eq!(ServeCounter::ALL.len(), NUM_SERVE_COUNTERS);
        let mut names: Vec<&str> = ServeCounter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SERVE_COUNTERS);
        for (i, c) in ServeCounter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "storage order mismatch for {c:?}");
        }
    }

    #[test]
    fn bump_get_and_snapshot_agree() {
        let s = Stats::new();
        s.bump(ServeCounter::Requests);
        s.bump(ServeCounter::Requests);
        s.add(ServeCounter::BatchedCells, 5);
        assert_eq!(s.get(ServeCounter::Requests), 2);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.batched_cells, 5);
        assert_eq!(snap.get(ServeCounter::BatchedCells), 5);
        assert!(snap.to_json().contains("\"batched_cells\":5"));
    }

    #[test]
    fn latency_percentiles_walk_the_buckets() {
        let s = Stats::new();
        for us in [1u64, 2, 4, 1000, 1000, 1000, 1000, 100_000] {
            s.record_latency(us);
        }
        let snap = s.snapshot();
        // 8 samples: p50 rank 4 lands in the 1000 µs bucket (floor 512)
        assert_eq!(snap.latency_percentile_floor(50.0), 512);
        // p99 rank 8 lands in the 100 ms bucket (floor 65536)
        assert_eq!(snap.latency_percentile_floor(99.0), 65_536);
        assert_eq!(snap.latency_percentile_floor(0.0), 1);
        assert!(snap.to_json().contains("\"latency_p50_floor_us\":512"));
        // the rolling window saw the same 8 samples (all just recorded)
        assert_eq!(s.rolling_snapshot().count(), 8);
    }

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let s = Stats::new();
        // no samples yet: minimum 1 s advice
        assert_eq!(s.retry_after_secs(0), 1);
        for _ in 0..50 {
            s.record_latency(2_000_000); // 2 s requests
        }
        assert!(s.retry_after_secs(3) >= 4, "4 × ~2 s should advise ≥ 4 s");
    }

    #[test]
    fn snapshot_sweep_settles_under_concurrent_bumps() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let s = Arc::new(Stats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // requests and coalesced move together: a coherent
                    // sweep can never observe coalesced > requests
                    s.bump(ServeCounter::Requests);
                    s.bump(ServeCounter::Coalesced);
                    // request-scale pacing (bumps arrive per request, not
                    // back-to-back) — gives the double sweep a window to
                    // observe two identical passes
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        for _ in 0..200 {
            let snap = s.snapshot();
            assert!(
                snap.coalesced <= snap.requests,
                "torn snapshot: coalesced {} > requests {}",
                snap.coalesced,
                snap.requests
            );
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
