//! A minimal blocking HTTP/1.1 client for tests, the chaos harness, and
//! the load generator. [`Client`] keeps its connection alive across
//! requests (PR 8); the free [`get`] stays as a one-shot convenience.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Retry-After` header value, when present.
    pub retry_after: Option<u64>,
    /// `X-Request-Id` echo, when present (DESIGN.md §7.10).
    pub request_id: Option<String>,
    /// Response body.
    pub body: String,
}

/// Upper bound on a response head; a server emitting more is broken.
const MAX_RESP_HEAD: usize = 16 * 1024;

/// A keep-alive HTTP/1.1 GET client. The connection is established lazily,
/// reused across `get` calls, and transparently re-established once when a
/// reused connection turns out to be stale (the server may close idle
/// keep-alive connections at any time — GETs are idempotent, so one retry
/// is safe).
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr`; `timeout` bounds connect, read, and write
    /// individually.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Client {
        Client {
            addr,
            timeout,
            stream: None,
        }
    }

    /// Issues `GET {target}`, reusing the kept-alive connection when one
    /// exists.
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        self.get_with_id(target, None)
    }

    /// Like [`Client::get`], optionally sending a caller-chosen
    /// `X-Request-Id` the server will echo back.
    pub fn get_with_id(
        &mut self,
        target: &str,
        request_id: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let reused = self.stream.is_some();
        match self.roundtrip(target, request_id) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                // stale keep-alive connection: reconnect and retry once
                self.stream = None;
                self.roundtrip(target, request_id).map_err(|_| e)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn roundtrip(
        &mut self,
        target: &str,
        request_id: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let mut stream = match self.stream.take() {
            Some(s) => s,
            None => {
                let s = TcpStream::connect_timeout(&self.addr, self.timeout)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(self.timeout))?;
                s.set_write_timeout(Some(self.timeout))?;
                s
            }
        };
        let id_header = match request_id {
            Some(id) => format!("X-Request-Id: {id}\r\n"),
            None => String::new(),
        };
        stream.write_all(
            format!("GET {target} HTTP/1.1\r\nHost: indigo\r\n{id_header}\r\n").as_bytes(),
        )?;
        // read until the head is complete
        let mut raw = Vec::with_capacity(512);
        let mut chunk = [0u8; 1024];
        let head_len = loop {
            if let Some(end) = find_head_end(&raw) {
                break end;
            }
            if raw.len() > MAX_RESP_HEAD {
                return Err(std::io::Error::other("response head too large"));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::other(
                    "connection closed before response head was complete",
                ));
            }
            raw.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&raw[..head_len]).into_owned();
        let parsed = parse_head(&head)?;
        let mut body = raw[head_len..].to_vec();
        match parsed.content_length {
            Some(len) => {
                while body.len() < len {
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(std::io::Error::other(
                            "connection closed before response body was complete",
                        ));
                    }
                    body.extend_from_slice(&chunk[..n]);
                }
                body.truncate(len);
                if !parsed.close {
                    self.stream = Some(stream); // keep for the next get
                }
            }
            None => {
                // no framing: the connection close delimits the body
                stream.read_to_end(&mut body)?;
            }
        }
        Ok(ClientResponse {
            status: parsed.status,
            retry_after: parsed.retry_after,
            request_id: parsed.request_id,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// Issues `GET {target}` on a fresh connection and reads the full
/// response. `timeout` bounds connect, read, and write individually.
pub fn get(addr: SocketAddr, target: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    Client::new(addr, timeout).get(target)
}

/// Byte offset just past `\r\n\r\n`, when the head is complete.
fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

struct ParsedHead {
    status: u16,
    retry_after: Option<u64>,
    request_id: Option<String>,
    content_length: Option<usize>,
    close: bool,
}

fn parse_head(head: &str) -> std::io::Result<ParsedHead> {
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| std::io::Error::other("empty response"))?;
    if !status_line.starts_with("HTTP/") {
        return Err(std::io::Error::other(format!(
            "bad status line: {status_line}"
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line: {status_line}")))?;
    let mut retry_after = None;
    let mut request_id = None;
    let mut content_length = None;
    let mut close = false;
    for (k, v) in lines.filter_map(|l| l.split_once(':')) {
        let v = v.trim();
        if k.eq_ignore_ascii_case("retry-after") {
            retry_after = v.parse().ok();
        } else if k.eq_ignore_ascii_case("x-request-id") {
            request_id = Some(v.to_string());
        } else if k.eq_ignore_ascii_case("content-length") {
            content_length = v.parse().ok();
        } else if k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    Ok(ParsedHead {
        status,
        retry_after,
        request_id,
        content_length,
        close,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_retry_after_framing_and_close() {
        let h = parse_head(
            "HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\n\
             X-Request-Id: abc-123\r\n\
             Content-Length: 2\r\nConnection: close\r\n",
        )
        .unwrap();
        assert_eq!(h.status, 429);
        assert_eq!(h.retry_after, Some(7));
        assert_eq!(h.request_id.as_deref(), Some("abc-123"));
        assert_eq!(h.content_length, Some(2));
        assert!(h.close);
        let h = parse_head("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n").unwrap();
        assert!(!h.close, "absent Connection header means keep-alive");
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_head("").is_err());
        assert!(parse_head("not http at all").is_err());
    }

    #[test]
    fn head_end_needs_the_blank_line() {
        assert_eq!(find_head_end(b"HTTP/1.1 200 OK\r\n\r\nbody"), Some(19));
        assert_eq!(find_head_end(b"HTTP/1.1 200 OK\r\n"), None);
    }
}
