//! Readiness polling for the event-driven acceptor (DESIGN.md §7.9).
//!
//! A hand-rolled epoll wrapper over direct `extern "C"` bindings — the
//! workspace stays dependency-free, so no `libc`/`mio`. Only the three
//! epoll calls (plus `close`) are bound; everything else the transport
//! needs (`set_nonblocking`, `set_nodelay`, timeouts) already exists in
//! std. On non-Linux targets [`Poller::supported`] is `false` and the
//! server falls back to the blocking accept path.
//!
//! The wrapper is level-triggered: an fd with unread bytes (or unflushed
//! write space, when write interest is armed) reports ready on every
//! `wait`, so the event loop never needs to track edge state. Tokens are
//! caller-chosen `u64`s carried in the kernel's per-fd user data.

use std::io;
use std::time::Duration;

/// What to watch an fd for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (the common case: heads and accepts).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a shed response is still being flushed).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes (or an EOF) are waiting to be read.
    pub readable: bool,
    /// The socket can accept more outgoing bytes.
    pub writable: bool,
    /// Peer hung up or the socket errored; the fd should be torn down
    /// after draining whatever [`Event::readable`] still delivers.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! The raw epoll surface. `epoll_event` is packed on x86-64 (and only
    //! there) to match the kernel ABI.

    #[allow(non_camel_case_types)]
    pub type c_int = i32;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// An epoll instance (Linux) or an always-erroring stub (elsewhere).
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
    #[cfg(target_os = "linux")]
    scratch: std::cell::RefCell<Vec<sys::EpollEvent>>,
}

// The scratch buffer makes Poller !Sync by default; the event loop owns
// the poller from a single thread, and moving it there needs Send only.
#[cfg(target_os = "linux")]
unsafe impl Send for Poller {}

impl Poller {
    /// Whether readiness polling works on this target.
    pub fn supported() -> bool {
        cfg!(target_os = "linux")
    }

    /// A fresh epoll instance.
    #[cfg(target_os = "linux")]
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            scratch: std::cell::RefCell::new(vec![sys::EpollEvent { events: 0, data: 0 }; 64]),
        })
    }

    /// Readiness polling is Linux-only; other targets use the blocking
    /// accept path.
    #[cfg(not(target_os = "linux"))]
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling needs epoll (Linux)",
        ))
    }

    #[cfg(target_os = "linux")]
    fn ctl(&self, op: sys::c_int, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: {
                let mut bits = sys::EPOLLRDHUP;
                if interest.readable {
                    bits |= sys::EPOLLIN;
                }
                if interest.writable {
                    bits |= sys::EPOLLOUT;
                }
                bits
            },
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token`.
    #[cfg(target_os = "linux")]
    pub fn add(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of a registered fd.
    #[cfg(target_os = "linux")]
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd` (ownership of the fd is handed elsewhere, e.g. to
    /// a worker thread).
    #[cfg(target_os = "linux")]
    pub fn remove(&self, fd: i32) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        let rc = unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks for readiness up to `timeout` (`None` = forever) and appends
    /// the ready set to `out`. Returns how many events fired. `EINTR`
    /// retries internally.
    #[cfg(target_os = "linux")]
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: sys::c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as sys::c_int,
        };
        let mut scratch = self.scratch.borrow_mut();
        let n = loop {
            let rc = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    scratch.as_mut_ptr(),
                    scratch.len() as sys::c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for raw in scratch.iter().take(n) {
            // copy out of the (possibly packed) kernel struct by value
            let bits = raw.events;
            let token = raw.data;
            out.push(Event {
                token,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn readable_event_fires_when_bytes_land() {
        let poller = Poller::new().unwrap();
        let (mut tx, rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(rx.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // nothing yet: a short wait times out with no events
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        tx.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].hangup);
    }

    #[test]
    fn half_close_reports_hangup_and_eof() {
        let poller = Poller::new().unwrap();
        let (tx, mut rx) = UnixStream::pair().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.add(rx.as_raw_fd(), 9, Interest::READ).unwrap();

        // peer shuts down its write side without sending anything — the
        // half-closed connection must still wake the poller (RDHUP), and
        // the read side must observe a clean EOF so the conn can be reaped
        tx.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 9);
        assert!(events[0].hangup, "half-close must flag hangup");
        let mut buf = [0u8; 8];
        assert_eq!(rx.read(&mut buf).unwrap(), 0, "EOF after half-close");
    }

    #[test]
    fn modify_arms_write_interest_and_remove_silences() {
        let poller = Poller::new().unwrap();
        let (tx, _rx) = UnixStream::pair().unwrap();
        tx.set_nonblocking(true).unwrap();
        poller.add(tx.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no read interest satisfied yet");

        poller
            .modify(tx.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        events.clear();
        poller.remove(tx.as_raw_fd()).unwrap();
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "removed fd still reported events");
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }
}
