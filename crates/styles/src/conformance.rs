//! What a style label *promises* about runtime behavior — the expectations
//! the dynamic sanitizer (DESIGN.md §7.6) checks against observation.
//!
//! A [`StyleConfig`] asserts behavioral properties by construction: a
//! `Deterministic` variant double-buffers and must not exhibit
//! value-changing races (§5.6), an `Rmw` variant updates through single
//! fused atomics while an `Rw` variant shows the load/compare/store split
//! (§5.5), and a CUDA variant's `Atomic`/`CudaAtomic` label picks which
//! class of hardware atomic its updates issue (§2.9). [`expectation`]
//! derives those promises from the label so the harness can compare them
//! with a measured `SanitizeReport` without re-encoding style semantics.

use crate::config::StyleConfig;
use crate::dims::{Algorithm, AtomicKind, Determinism, Update};

/// The behavioral contract implied by one variant's style labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StyleExpectation {
    /// `Deterministic` label: no value-changing (outcome-affecting) races
    /// may be observed. Benign same-value conflicts — the `changed`-flag
    /// and MIS `OUT`-store patterns — are still permitted (§5.6).
    pub conflict_free: bool,
    /// `ReadModifyWrite` label: relaxation updates must go through single
    /// fused RMWs, never the load/compare/store split — and vice versa.
    pub update_rmw: bool,
    /// CUDA variants only: which atomic class the cell's RMWs must use.
    /// `None` for the CPU models (their atomic flavor is fixed by model).
    pub atomic_class: Option<AtomicKind>,
    /// Whether the algorithm is a relaxation code (BFS/SSSP/CC) whose
    /// update style is exercised through `min_update`; only these emit the
    /// semantic update events the RW-vs-RMW check consumes.
    pub relaxation: bool,
}

/// Derives the [`StyleExpectation`] for a variant.
pub fn expectation(cfg: &StyleConfig) -> StyleExpectation {
    StyleExpectation {
        conflict_free: cfg.determinism == Determinism::Deterministic,
        update_rmw: cfg.update == Update::ReadModifyWrite,
        atomic_class: cfg.atomic,
        relaxation: matches!(
            cfg.algorithm,
            Algorithm::Bfs | Algorithm::Sssp | Algorithm::Cc
        ),
    }
}

impl StyleConfig {
    /// The behavioral contract this variant's labels imply (see
    /// [`expectation`]).
    pub fn expectation(&self) -> StyleExpectation {
        expectation(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Model;

    #[test]
    fn deterministic_label_expects_conflict_freedom() {
        let mut cfg = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        assert!(!cfg.expectation().conflict_free);
        cfg.determinism = Determinism::Deterministic;
        cfg.update = Update::ReadModifyWrite; // det non-MIS requires RMW
        assert!(cfg.check().is_ok());
        assert!(cfg.expectation().conflict_free);
    }

    #[test]
    fn update_label_maps_to_rmw_expectation() {
        let mut cfg = StyleConfig::baseline(Algorithm::Bfs, Model::Cpp);
        cfg.update = Update::ReadWrite;
        assert!(!cfg.expectation().update_rmw);
        cfg.update = Update::ReadModifyWrite;
        assert!(cfg.expectation().update_rmw);
    }

    #[test]
    fn atomic_class_is_gpu_only() {
        let cuda = StyleConfig::baseline(Algorithm::Sssp, Model::Cuda);
        assert!(cuda.expectation().atomic_class.is_some());
        let cpp = StyleConfig::baseline(Algorithm::Sssp, Model::Cpp);
        assert_eq!(cpp.expectation().atomic_class, None);
    }

    #[test]
    fn relaxation_covers_bfs_sssp_cc_only() {
        for (algo, relax) in [
            (Algorithm::Bfs, true),
            (Algorithm::Sssp, true),
            (Algorithm::Cc, true),
            (Algorithm::Mis, false),
            (Algorithm::Pr, false),
            (Algorithm::Tc, false),
        ] {
            let cfg = StyleConfig::baseline(algo, Model::Cuda);
            assert_eq!(cfg.expectation().relaxation, relax, "{algo:?}");
        }
    }
}
